//! Property tests: the `Optimized` kernel data path must agree with the
//! paper-faithful `Reference` path for *every* model, thread count, and —
//! critically — awkward problem sizes: n = 0 and 1, sizes not divisible by
//! the unroll width (8 lanes) or the matmul block edges (MB=32, KU=4), and
//! stencil grids whose interiors don't tile evenly.
//!
//! Axpy and the tiled stencils evaluate the exact same per-element
//! expression, so they must match bitwise. Sum/Matvec/Matmul reassociate
//! floating-point additions, so they are compared with the relative-epsilon
//! helper from `threadcmp::approx`.

use proptest::prelude::*;

use threadcmp::approx::{scalar_close, slices_close};
use threadcmp::kernels::{Axpy, Matmul, Matvec, Sum};
use threadcmp::rodinia::{HotSpot, Srad};
use threadcmp::{Executor, KernelVariant, Model};

fn model_strategy() -> impl Strategy<Value = Model> {
    prop_oneof![
        Just(Model::OmpFor),
        Just(Model::OmpTask),
        Just(Model::CilkFor),
        Just(Model::CilkSpawn),
        Just(Model::CxxThread),
        Just(Model::CxxAsync),
    ]
}

/// Sizes that stress lane/tile remainders: tiny degenerate cases plus
/// values straddling the 8-lane unroll and 32-row block boundaries.
fn awkward_n() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        2usize..18,
        30usize..40,
        62usize..70,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Axpy's unrolled body performs the identical `a*x+y` per element —
    /// bitwise equality, no tolerance.
    #[test]
    fn axpy_optimized_is_bitwise_identical(
        n in 0usize..600,
        threads in 1usize..6,
        model in model_strategy(),
    ) {
        let k = Axpy::native(n);
        let (x, y0) = k.alloc();
        let mut expected = y0.clone();
        k.seq(&x, &mut expected);
        let exec = Executor::new(threads);
        let mut y = y0.clone();
        k.run_v(&exec, model, KernelVariant::Optimized, &x, &mut y);
        prop_assert_eq!(y, expected);
    }

    /// Sum's 8-accumulator reduction reassociates; it must stay within
    /// relative epsilon of the sequential fold.
    #[test]
    fn sum_optimized_matches_reference(
        n in 0usize..3000,
        threads in 1usize..6,
        model in model_strategy(),
    ) {
        let k = Sum::native(n);
        let x = k.alloc();
        let expected = k.seq(&x);
        let exec = Executor::new(threads);
        let got = k.run_v(&exec, model, KernelVariant::Optimized, &x);
        prop_assert!(scalar_close(got, expected, 1e-10).is_ok(),
            "{}", scalar_close(got, expected, 1e-10).unwrap_err());
    }

    /// Matvec's split-accumulator dot products reassociate per row.
    #[test]
    fn matvec_optimized_matches_reference(
        n in awkward_n(),
        threads in 1usize..5,
        model in model_strategy(),
    ) {
        let k = Matvec::native(n);
        let (a, x) = k.alloc();
        let expected = k.seq(&a, &x);
        let exec = Executor::new(threads);
        let got = k.run_v(&exec, model, KernelVariant::Optimized, &a, &x);
        prop_assert!(slices_close(&got, &expected, 1e-12).is_ok(),
            "{}", slices_close(&got, &expected, 1e-12).unwrap_err());
    }

    /// Blocked matmul reorders the k-loop into KB×JB tiles with a KU-unroll;
    /// both the parallel and the sequential blocked paths must agree with
    /// the naive triple loop.
    #[test]
    fn matmul_optimized_matches_reference(
        n in awkward_n(),
        threads in 1usize..5,
        model in model_strategy(),
    ) {
        let k = Matmul::native(n);
        let (a, b) = k.alloc();
        let expected = k.seq(&a, &b);
        let exec = Executor::new(threads);
        let got = k.run_v(&exec, model, KernelVariant::Optimized, &a, &b);
        prop_assert!(slices_close(&got, &expected, 1e-12).is_ok(),
            "{}", slices_close(&got, &expected, 1e-12).unwrap_err());
        let seq_blocked = k.seq_blocked(&a, &b);
        prop_assert!(slices_close(&seq_blocked, &expected, 1e-12).is_ok(),
            "{}", slices_close(&seq_blocked, &expected, 1e-12).unwrap_err());
    }
}

proptest! {
    // Stencils run `steps` full sweeps — keep the case count lower.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tiled HotSpot sweep evaluates step_cell's exact expression on
    /// interior tiles — bitwise equality with the sequential grid.
    #[test]
    fn hotspot_tiled_is_bitwise_identical(
        n in 1usize..34,
        steps in 0usize..4,
        threads in 1usize..5,
        model in model_strategy(),
    ) {
        let h = HotSpot::native(n, steps);
        let (t, p) = h.generate();
        let expected = h.seq(&t, &p);
        let exec = Executor::new(threads);
        let got = h.run_v(&exec, model, KernelVariant::Optimized, &t, &p);
        prop_assert_eq!(got, expected);
    }

    /// The tiled SRAD sweep reuses the reference closures over sub-ranges —
    /// bitwise equality.
    #[test]
    fn srad_tiled_is_bitwise_identical(
        n in 1usize..30,
        iters in 1usize..4,
        threads in 1usize..5,
        model in model_strategy(),
    ) {
        let s = Srad::native(n, iters);
        let img = s.generate();
        let expected = s.seq(&img);
        let exec = Executor::new(threads);
        let got = s.run_v(&exec, model, KernelVariant::Optimized, &img);
        prop_assert_eq!(got, expected);
    }
}

/// Deterministic spot-check of the exact boundary sizes the strategies only
/// sample: lane width ±1 and the matmul MB/KU edges.
#[test]
fn exact_boundary_sizes_all_models() {
    let exec = Executor::new(3);
    for n in [0, 1, 7, 8, 9, 31, 32, 33, 63, 64, 65] {
        let k = Matmul::native(n);
        let (a, b) = k.alloc();
        let expected = k.seq(&a, &b);
        for model in Model::ALL {
            let got = k.run_v(&exec, model, KernelVariant::Optimized, &a, &b);
            slices_close(&got, &expected, 1e-12)
                .unwrap_or_else(|e| panic!("matmul n={n} {model}: {e}"));
        }
    }
}
