//! Stress and property tests for the scheduler hot-path optimizations:
//! batched stealing on the Chase–Lev deque, the `Auto` worksharing schedule,
//! the batched dynamic-loop claims behind it, and the adaptive `par_for`
//! grain. These run with trace capture compiled in (the workspace root's
//! dev profile), so the hot paths are exercised with their instrumentation.

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

use threadcmp::forkjoin::{Schedule, Team};
use threadcmp::sync::chase_lev;
use threadcmp::worksteal::{par_for, Grain, Runtime};

/// N thieves batch-steal from one owner that concurrently pushes and pops;
/// every pushed item must be consumed exactly once, whether it left through
/// the owner's pop or through a thief's transferred batch.
#[test]
fn steal_batch_delivers_every_item_exactly_once_under_contention() {
    const ITEMS: usize = 100_000;
    const THIEVES: usize = 4;
    let (owner, stealer) = chase_lev::deque::<usize>(8);
    let done = AtomicUsize::new(0);
    let sink: Vec<Mutex<Vec<usize>>> = (0..THIEVES).map(|_| Mutex::new(Vec::new())).collect();
    let mut kept = Vec::new();
    std::thread::scope(|s| {
        for slot in &sink {
            let stealer = stealer.clone();
            let done = &done;
            s.spawn(move || {
                // Each thief drains batches through its own deque, exactly
                // like a runtime worker, popping everything it transferred.
                let (mine, _mine_stealer) = chase_lev::deque::<usize>(8);
                let mut got = Vec::new();
                loop {
                    let n = stealer.steal_batch_into(&mine, 32);
                    if n == 0 {
                        if done.load(Ordering::Acquire) == 1 && stealer.is_empty() {
                            break;
                        }
                        std::thread::yield_now();
                    } else {
                        while let Some(v) = mine.pop() {
                            got.push(v);
                        }
                    }
                }
                *slot.lock().unwrap() = got;
            });
        }
        // The owner interleaves pushes with occasional pops (the LIFO fast
        // path the batch CAS must not double-consume against).
        for i in 0..ITEMS {
            owner.push(i);
            if i % 5 == 0 {
                if let Some(v) = owner.pop() {
                    kept.push(v);
                }
            }
        }
        while let Some(v) = owner.pop() {
            kept.push(v);
        }
        done.store(1, Ordering::Release);
    });
    let mut all = kept;
    for slot in &sink {
        all.extend(slot.lock().unwrap().iter().copied());
    }
    assert_eq!(all.len(), ITEMS, "every item consumed exactly once");
    let distinct: HashSet<usize> = all.iter().copied().collect();
    assert_eq!(distinct.len(), ITEMS, "no duplicates");
}

/// Same protocol, but the items are drop-counted: a lost race inside the
/// batch loop must neither leak nor double-drop.
#[test]
fn steal_batch_neither_leaks_nor_double_drops() {
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Tracked;
    impl Drop for Tracked {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }
    const ITEMS: usize = 20_000;
    {
        let (owner, stealer) = chase_lev::deque::<Tracked>(8);
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let stealer = stealer.clone();
                let done = &done;
                s.spawn(move || {
                    let (mine, _ms) = chase_lev::deque::<Tracked>(8);
                    loop {
                        if stealer.steal_batch_into(&mine, 16) == 0 {
                            if done.load(Ordering::Acquire) == 1 && stealer.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        } else {
                            while let Some(v) = mine.pop() {
                                drop(v);
                            }
                        }
                    }
                });
            }
            for _ in 0..ITEMS {
                owner.push(Tracked);
            }
            while let Some(v) = owner.pop() {
                drop(v);
            }
            done.store(1, Ordering::Release);
        });
    }
    assert_eq!(DROPS.load(Ordering::Relaxed), ITEMS);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Schedule::Auto` resolves per loop shape but must still tile the
    /// range exactly, on either side of its static/dynamic threshold.
    #[test]
    fn auto_schedule_covers_any_range(len in 0usize..3000, threads in 1usize..5) {
        let team = Team::new(threads);
        let flags: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        team.parallel_for(threads, Schedule::Auto, 0..len, |i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    /// The batched dynamic-claim path covers exactly for any chunk size.
    #[test]
    fn batched_dynamic_covers_any_range(
        len in 1usize..5000,
        chunk in 1usize..64,
        threads in 1usize..5,
    ) {
        let team = Team::new(threads);
        let flags: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        team.parallel_for(threads, Schedule::Dynamic { chunk }, 0..len, |i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    /// `Grain::Auto` (uncapped leaf size + splitting depth cap) still
    /// covers every iteration exactly once.
    #[test]
    fn auto_grain_covers_any_range(len in 0usize..3000, threads in 1usize..5) {
        let rt = Runtime::new(threads);
        let flags: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        rt.install(|ctx| {
            par_for(ctx, 0..len, Grain::Auto, &|chunk| {
                for i in chunk {
                    flags[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        prop_assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }
}
