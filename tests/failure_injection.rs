//! Failure injection: panics and resource exhaustion must surface as
//! errors/propagated panics, never as hangs or corruption, and every runtime
//! must remain usable afterwards.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use threadcmp::forkjoin::Team;
use threadcmp::rawthreads::{fib_thread_per_call, threads_for, ThreadBudget, ThreadExplosion};
use threadcmp::sync::CancelToken;
use threadcmp::worksteal::{join, scope, Runtime};
use threadcmp::{ExecError, Executor, Model};

#[test]
fn forkjoin_region_panic_then_reuse() {
    let team = Team::new(3);
    for round in 0..3 {
        let r = catch_unwind(AssertUnwindSafe(|| {
            team.parallel(|ctx| {
                if ctx.thread_num() == round % 3 {
                    panic!("round {round}");
                }
            });
        }));
        assert!(r.is_err(), "round {round}");
        // Full-strength region still works after each panic.
        let hits = AtomicU64::new(0);
        team.parallel(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.into_inner(), 3);
    }
}

#[test]
fn forkjoin_task_panic_propagates_once() {
    let team = Team::new(2);
    let survivors = AtomicU64::new(0);
    let r = catch_unwind(AssertUnwindSafe(|| {
        team.parallel(|ctx| {
            ctx.single(|| {
                ctx.task_scope(|s| {
                    for i in 0..10 {
                        let survivors = &survivors;
                        s.spawn(move |_| {
                            if i == 5 {
                                panic!("task 5");
                            }
                            survivors.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        });
    }));
    assert!(r.is_err());
    // All non-panicking tasks still ran (the scope drains before unwinding).
    assert_eq!(survivors.into_inner(), 9);
}

#[test]
fn worksteal_join_panics_both_sides() {
    let rt = Runtime::new(2);
    for side in 0..2 {
        let r = catch_unwind(AssertUnwindSafe(|| {
            rt.install(|ctx| {
                join(
                    ctx,
                    |_| {
                        if side == 0 {
                            panic!("left")
                        }
                    },
                    |_| {
                        if side == 1 {
                            panic!("right")
                        }
                    },
                );
            })
        }));
        assert!(r.is_err(), "side {side}");
    }
    assert_eq!(rt.install(|_| 1), 1);
}

#[test]
fn worksteal_deep_scope_panic_drains() {
    let rt = Runtime::new(4);
    let completed = AtomicU64::new(0);
    let r = catch_unwind(AssertUnwindSafe(|| {
        rt.install(|ctx| {
            scope(ctx, |s| {
                for i in 0..50 {
                    let completed = &completed;
                    s.spawn(move |_| {
                        if i == 25 {
                            panic!("mid");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        })
    }));
    assert!(r.is_err());
    assert_eq!(completed.into_inner(), 49);
}

#[test]
fn rawthreads_panic_in_worker_propagates() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        threads_for(3, 0..30, |tid, _| {
            if tid == 1 {
                panic!("worker 1");
            }
        });
    }));
    // std::thread::scope re-raises the panic of any scoped thread.
    assert!(r.is_err());
}

#[test]
fn thread_explosion_is_an_error_not_a_hang() {
    // The paper: the naive recursive C++ fib "hangs the system" at n >= 20.
    let budget = ThreadBudget::new(64);
    let start = std::time::Instant::now();
    let result = fib_thread_per_call(19, &budget);
    assert_eq!(result, Err(ThreadExplosion { max: 64 }));
    // And it fails fast (seconds, not a hang).
    assert!(start.elapsed().as_secs() < 30);
}

#[test]
fn executor_survives_panicking_bodies() {
    let exec = Executor::new(2);
    for model in Model::ALL {
        let err = exec
            .try_parallel_for(model, 0..64, &CancelToken::new(), &|chunk| {
                if chunk.contains(&13) {
                    panic!("13 in {model}");
                }
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::Panic(_)), "{model}: {err:?}");
        // The executor still works for the next model.
        let hits = AtomicU64::new(0);
        exec.try_parallel_for(model, 0..64, &CancelToken::new(), &|chunk| {
            hits.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.into_inner(), 64, "{model} reuse after panic");
    }
}
