//! Chaos matrix: seeded fault plans against all three runtimes.
//!
//! Build with `--features inject` for the real matrix; in a default build
//! every test is a no-op (the probes are compiled out, which
//! [`compiled_out_build_has_no_probes`] asserts directly).
//!
//! The invariants, per ISSUE: no deadlock under any plan (the tests
//! finishing *is* the check), injected panics surface as
//! [`ExecError::Panic`] with the injected marker, results are
//! bitwise-correct whenever no fault fired, teams/runtimes stay usable
//! after recovery, and the same seeded plan replays the same per-hit
//! decisions.

use std::panic::{catch_unwind, AssertUnwindSafe};

use threadcmp::fault::{self, FaultKind, FaultPlan, FaultSession, Site, SiteRule};
use threadcmp::forkjoin::Team;
use threadcmp::kernels::{Fib, Matvec};
use threadcmp::worksteal::Runtime;
use threadcmp::{ExecError, Executor, Model};

const SUM_N: usize = 40_000;

fn expected_sum() -> u64 {
    (0..SUM_N as u64).sum()
}

fn run_sum(exec: &Executor, model: Model) -> Result<u64, ExecError> {
    let token = threadcmp::sync::CancelToken::new();
    exec.try_parallel_reduce(
        model,
        0..SUM_N,
        &token,
        || 0u64,
        |a, b| a + b,
        |chunk, acc| {
            for i in chunk {
                *acc += i as u64;
            }
        },
    )
}

/// Asserts the outcome of one faulted run: either it completed exactly, or
/// it surfaced a contained injected failure.
fn assert_contained(model: Model, result: Result<u64, ExecError>) -> bool {
    match result {
        Ok(v) => {
            assert_eq!(v, expected_sum(), "{model}: wrong result, no error");
            false
        }
        Err(ExecError::Panic(msg)) => {
            assert!(
                fault::is_injected_message(&msg),
                "{model}: organic panic {msg:?}"
            );
            true
        }
        Err(e) => panic!("{model}: unexpected error {e}"),
    }
}

#[test]
fn compiled_out_build_has_no_probes() {
    if cfg!(feature = "inject") {
        assert!(fault::compiled_in());
    } else {
        assert!(!fault::compiled_in());
        // Installing a plan in a default build is inert: probes never fire.
        let session = FaultSession::install(&FaultPlan::single(SiteRule::prob(
            Site::ChunkClaim,
            FaultKind::Panic,
            1.0,
        )));
        let exec = Executor::new(2);
        for model in Model::ALL {
            assert_eq!(run_sum(&exec, model), Ok(expected_sum()), "{model}");
        }
        let report = session.report();
        assert!(report.fired.is_empty());
        assert_eq!(report.hits.iter().sum::<u64>(), 0);
    }
}

#[test]
fn injected_chunk_panic_surfaces_and_executor_recovers_for_every_model() {
    if !fault::compiled_in() {
        return;
    }
    let _serial = fault::session_serial();
    let exec = Executor::new(3);
    for model in Model::ALL {
        let session = FaultSession::install(&FaultPlan::single(SiteRule {
            max_fires: 1,
            ..SiteRule::nth(Site::ChunkClaim, FaultKind::Panic, 2)
        }));
        let faulted = assert_contained(model, run_sum(&exec, model));
        let report = session.report();
        assert_eq!(
            faulted,
            !report.fired.is_empty(),
            "{model}: error surfaced iff a fault fired ({report:?})"
        );
        // Recovery: the very same executor, clean plan, exact result.
        assert_eq!(run_sum(&exec, model), Ok(expected_sum()), "{model} reuse");
    }
}

#[test]
fn steal_miss_storm_and_delays_never_corrupt_or_deadlock() {
    if !fault::compiled_in() {
        return;
    }
    let _serial = fault::session_serial();
    let plan = FaultPlan {
        seed: 42,
        rules: vec![
            SiteRule::prob(Site::StealAttempt, FaultKind::StealMiss, 0.5),
            SiteRule {
                delay_us: 100,
                ..SiteRule::prob(Site::ChunkClaim, FaultKind::Delay, 0.1)
            },
        ],
    };
    let session = FaultSession::install(&plan);
    let exec = Executor::new(4);
    for model in Model::ALL {
        // Steal misses and delays perturb scheduling, never results.
        assert_eq!(run_sum(&exec, model), Ok(expected_sum()), "{model}");
    }
    session.report();
}

#[test]
fn matvec_is_bitwise_identical_when_no_fault_fires() {
    if !fault::compiled_in() {
        return;
    }
    let _serial = fault::session_serial();
    let mv = Matvec::native(96);
    let exec = Executor::new(3);
    let (a, x) = mv.alloc();
    let baseline = mv.run(&exec, Model::OmpFor, &a, &x);

    // A plan whose only rule can never fire (hit 10^9 of a small run).
    let session = FaultSession::install(&FaultPlan::single(SiteRule::nth(
        Site::ChunkClaim,
        FaultKind::Panic,
        1_000_000_000,
    )));
    for model in Model::ALL {
        let y = mv.run(&exec, model, &a, &x);
        // Same model → bitwise-identical; across models the split differs
        // but OmpFor must match its own baseline bit for bit.
        if model == Model::OmpFor {
            assert!(
                y.iter()
                    .zip(&baseline)
                    .all(|(p, q)| p.to_bits() == q.to_bits()),
                "OmpFor drifted under an inert plan"
            );
        } else {
            assert_eq!(y.len(), baseline.len());
        }
    }
    let report = session.report();
    assert!(report.fired.is_empty(), "{:?}", report.fired);
}

#[test]
fn fib_survives_injected_task_panics_and_runtimes_stay_usable() {
    if !fault::compiled_in() {
        return;
    }
    let _serial = fault::session_serial();
    let fib = Fib::native(18);
    let want = Fib::seq(18);

    // omp_task: recursive tasks on the fork-join runtime.
    let team = Team::new(3);
    {
        let session = FaultSession::install(&FaultPlan::single(SiteRule {
            max_fires: 1,
            ..SiteRule::prob(Site::TaskExec, FaultKind::Panic, 1.0)
        }));
        let r = catch_unwind(AssertUnwindSafe(|| fib.run_omp_task(&team)));
        let report = session.report();
        match r {
            Err(p) => {
                let msg = tpm_core::panic_message(p);
                assert!(fault::is_injected_message(&msg), "{msg}");
                assert_eq!(report.fired.len(), 1);
            }
            Ok(v) => {
                // Cutoff may have kept the run below the task threshold.
                assert_eq!(v, want);
            }
        }
    }
    assert_eq!(fib.run_omp_task(&team), want, "team reuse after recovery");

    // cilk_spawn: recursive join on the work-stealing runtime.
    let rt = Runtime::new(3);
    {
        let session = FaultSession::install(&FaultPlan::single(SiteRule {
            max_fires: 1,
            ..SiteRule::prob(Site::TaskExec, FaultKind::Panic, 1.0)
        }));
        let r = catch_unwind(AssertUnwindSafe(|| fib.run_cilk_spawn(&rt)));
        let report = session.report();
        match r {
            Err(p) => {
                let msg = tpm_core::panic_message(p);
                assert!(fault::is_injected_message(&msg), "{msg}");
                assert_eq!(report.fired.len(), 1);
            }
            Ok(v) => assert_eq!(v, want),
        }
    }
    assert_eq!(
        fib.run_cilk_spawn(&rt),
        want,
        "runtime reuse after recovery"
    );
}

#[test]
fn task_drops_are_observable_not_silent() {
    if !fault::compiled_in() {
        return;
    }
    let _serial = fault::session_serial();
    let exec = Executor::new(2);
    for model in Model::ALL {
        let session = FaultSession::install(&FaultPlan::single(SiteRule {
            max_fires: 1,
            ..SiteRule::nth(Site::ChunkClaim, FaultKind::TaskDrop, 1)
        }));
        // A dropped chunk MUST NOT produce a silently-short result: either
        // the drop surfaced as a contained panic, or nothing fired.
        match run_sum(&exec, model) {
            Ok(v) => {
                assert_eq!(v, expected_sum(), "{model}: silent drop!");
                assert!(session.report().fired.is_empty(), "{model}");
            }
            Err(ExecError::Panic(msg)) => {
                assert!(fault::is_injected_message(&msg), "{model}: {msg}");
                session.report();
            }
            Err(e) => panic!("{model}: {e}"),
        }
    }
}

#[test]
fn seeded_plans_replay_the_same_decisions() {
    if !fault::compiled_in() {
        return;
    }
    let _serial = fault::session_serial();
    let plan = FaultPlan {
        seed: 1234,
        rules: vec![
            SiteRule::prob(Site::ChunkClaim, FaultKind::StealMiss, 0.0), // inert
            SiteRule::prob(Site::StealAttempt, FaultKind::StealMiss, 0.25),
        ],
    };
    let run_once = || {
        let session = FaultSession::install(&plan);
        let exec = Executor::new(4);
        for model in Model::ALL {
            assert_eq!(run_sum(&exec, model), Ok(expected_sum()), "{model}");
        }
        session.report().fired_sorted()
    };
    let first = run_once();
    let second = run_once();
    // Decisions are a pure function of (seed, site, hit): every hit index
    // both runs reached must agree. Hit counts at wait-path sites vary
    // with timing, so the shorter run must be contained in the longer.
    let (longer, shorter) = if first.len() >= second.len() {
        (&first, &second)
    } else {
        (&second, &first)
    };
    for f in shorter {
        assert!(longer.contains(f), "replay diverged at {f:?}");
    }
}
