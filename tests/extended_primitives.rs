//! Integration + property tests for the extended primitives and features:
//! RwLock, Semaphore, ReentrantLock, OmpLock/OmpNestLock, task dependencies,
//! `par_map`, `sections`, cancellation, and future chaining.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

use threadcmp::forkjoin::{DepTracker, Schedule, Team};
use threadcmp::rawthreads::{async_task, Launch};
use threadcmp::sync::{ReentrantLock, RwLock, Semaphore};
use threadcmp::worksteal::{par_map, Grain, Runtime};

#[test]
fn rwlock_readers_see_consistent_pairs_under_writers() {
    let lock = RwLock::new((0u64, 0u64));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let lock = &lock;
            s.spawn(move || {
                for i in 1..=1_000u64 {
                    let mut g = lock.write();
                    g.0 = i;
                    g.1 = i * 3;
                }
            });
        }
        for _ in 0..2 {
            let lock = &lock;
            s.spawn(move || {
                for _ in 0..1_000 {
                    let g = lock.read();
                    assert_eq!(g.1, g.0 * 3);
                }
            });
        }
    });
}

#[test]
fn semaphore_bounds_rawthread_fanout() {
    // The sane version of the paper's exploding C++ recursion: a semaphore
    // capping live threads.
    let sem = Semaphore::new(4);
    let peak = AtomicU64::new(0);
    let live = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..16 {
            let (sem, peak, live) = (&sem, &peak, &live);
            s.spawn(move || {
                let _p = sem.acquire();
                let n = live.fetch_add(1, Ordering::Relaxed) + 1;
                peak.fetch_max(n, Ordering::Relaxed);
                std::thread::yield_now();
                live.fetch_sub(1, Ordering::Relaxed);
            });
        }
    });
    assert!(peak.into_inner() <= 4);
}

#[test]
fn reentrant_lock_via_public_api() {
    let lock = ReentrantLock::new(std::cell::Cell::new(0));
    let g1 = lock.lock();
    let g2 = lock.lock();
    g2.set(g2.get() + 1);
    drop(g2);
    g1.set(g1.get() + 1);
    drop(g1);
    assert_eq!(lock.lock().get(), 2);
}

#[test]
fn dependencies_order_a_diamond() {
    // top -> (left, right) -> bottom, checked via a sequence log.
    let team = Team::new(4);
    let log = std::sync::Mutex::new(Vec::new());
    team.parallel(|ctx| {
        ctx.single(|| {
            ctx.task_scope(|s| {
                let mut deps = DepTracker::new();
                let t = deps.slot();
                let l = deps.slot();
                let r = deps.slot();
                let log = &log;
                deps.spawn_dep(s, &[], &[t], move |_| log.lock().unwrap().push("top"));
                deps.spawn_dep(s, &[t], &[l], move |_| log.lock().unwrap().push("left"));
                deps.spawn_dep(s, &[t], &[r], move |_| log.lock().unwrap().push("right"));
                deps.spawn_dep(s, &[l, r], &[], move |_| log.lock().unwrap().push("bottom"));
            });
        });
    });
    let log = log.into_inner().unwrap();
    assert_eq!(log.len(), 4);
    assert_eq!(log[0], "top");
    assert_eq!(log[3], "bottom");
}

#[test]
fn sections_and_cancel_via_public_api() {
    let team = Team::new(2);
    let ran = AtomicU64::new(0);
    team.parallel(|ctx| {
        ctx.sections(&[
            &|| {
                ran.fetch_add(1, Ordering::Relaxed);
            },
            &|| {
                ran.fetch_add(10, Ordering::Relaxed);
            },
        ]);
        ctx.ws_for(Schedule::Dynamic { chunk: 1 }, 0..100, |i| {
            if i == 0 {
                ctx.cancel();
            }
        });
    });
    assert_eq!(ran.into_inner(), 11);
}

#[test]
fn future_chain_crosses_policies() {
    let v = async_task(Launch::Deferred, || 10)
        .and_then(Launch::Async, |x| x + 5)
        .and_then(Launch::Deferred, |x| x * 2)
        .get();
    assert_eq!(v, 30);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `par_map` equals the sequential map for arbitrary inputs and grains.
    #[test]
    fn par_map_matches_sequential(
        input in proptest::collection::vec(any::<u32>(), 0..500),
        grain in 1usize..64,
        workers in 1usize..5,
    ) {
        let rt = Runtime::new(workers);
        let got = rt.install(|ctx| {
            par_map(ctx, &input, Grain::Fixed(grain), |&x| x as u64 + 1)
        });
        let expected: Vec<u64> = input.iter().map(|&x| x as u64 + 1).collect();
        prop_assert_eq!(got, expected);
    }

    /// Semaphore: the live count never exceeds the permit count, for any
    /// acquisition pattern.
    #[test]
    fn semaphore_never_oversubscribes(permits in 1usize..6, tasks in 1usize..20) {
        let sem = Semaphore::new(permits);
        let live = AtomicU64::new(0);
        let peak = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..tasks {
                let (sem, live, peak) = (&sem, &live, &peak);
                s.spawn(move || {
                    let _p = sem.acquire();
                    let n = live.fetch_add(1, Ordering::Relaxed) + 1;
                    peak.fetch_max(n, Ordering::Relaxed);
                    live.fetch_sub(1, Ordering::Relaxed);
                });
            }
        });
        prop_assert!(peak.into_inner() <= permits as u64);
        prop_assert_eq!(sem.available(), permits);
    }

    /// A random chain of dependent inout tasks applies its operations in
    /// spawn order (the OpenMP `depend` guarantee).
    #[test]
    fn dependent_chain_is_ordered(ops in proptest::collection::vec(1u64..5, 1..12)) {
        let team = Team::new(3);
        let value = AtomicU64::new(1);
        let expected: u64 = ops.iter().fold(1, |acc, &k| acc * 10 + k);
        team.parallel(|ctx| {
            ctx.single(|| {
                ctx.task_scope(|s| {
                    let mut deps = DepTracker::new();
                    let x = deps.slot();
                    for &k in &ops {
                        let value = &value;
                        deps.spawn_dep(s, &[x], &[x], move |_| {
                            let v = value.load(Ordering::Acquire);
                            value.store(v * 10 + k, Ordering::Release);
                        });
                    }
                });
            });
        });
        prop_assert_eq!(value.into_inner(), expected);
    }
}
