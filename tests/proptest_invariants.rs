//! Property-based tests over the core invariants: loop distribution covers
//! each index exactly once, reductions equal their sequential folds, deques
//! conserve elements, and the simulator respects work-conservation bounds.

use proptest::prelude::*;

use threadcmp::forkjoin::{static_chunks, LoopCounter, Schedule, Team};
use threadcmp::sim::{
    CostModel, DequeKind, Imbalance, LoopPolicy, LoopWorkload, Machine, Simulator,
};
use threadcmp::sync::{chase_lev, CancelToken, Reducer};
use threadcmp::{Executor, Model};

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static { chunk: None }),
        (1usize..64).prop_map(|c| Schedule::Static { chunk: Some(c) }),
        (1usize..64).prop_map(|c| Schedule::Dynamic { chunk: c }),
        (1usize..32).prop_map(|m| Schedule::Guided { min_chunk: m }),
        Just(Schedule::Auto),
    ]
}

fn model_strategy() -> impl Strategy<Value = Model> {
    // Registry-driven: every variant of every family, present and future.
    (0..Model::ALL.len()).prop_map(|i| Model::ALL[i])
}

fn policy_strategy() -> impl Strategy<Value = LoopPolicy> {
    prop_oneof![
        Just(LoopPolicy::WorksharingStatic),
        (1u64..256).prop_map(|chunk| LoopPolicy::WorksharingDynamic { chunk }),
        (0u64..512).prop_map(|grain| LoopPolicy::WorkstealingSplit { grain }),
        Just(LoopPolicy::TaskChunks {
            kind: DequeKind::Locked
        }),
        Just(LoopPolicy::TaskChunks {
            kind: DequeKind::LockFree
        }),
        Just(LoopPolicy::ThreadPerChunk),
        Just(LoopPolicy::RecursiveSpawn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `static_chunks` tiles any range exactly, for any thread count.
    #[test]
    fn static_chunks_tile_exactly(
        len in 0usize..500,
        start in 0usize..100,
        threads in 1usize..9,
        chunk in proptest::option::of(1usize..40),
    ) {
        let range = start..start + len;
        let mut covered = vec![0u32; len];
        for tid in 0..threads {
            for c in static_chunks(range.clone(), tid, threads, chunk) {
                for i in c {
                    covered[i - start] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// The shared dynamic/guided counter hands out each index exactly once.
    #[test]
    fn loop_counter_partitions(len in 1u64..2000, chunk in 1usize..64, guided in any::<bool>()) {
        let len = len as usize;
        let counter = LoopCounter::new(0..len);
        let mut covered = vec![0u32; len];
        loop {
            let next = if guided {
                counter.next_guided(4, chunk)
            } else {
                counter.next_dynamic(chunk)
            };
            match next {
                Some(r) => for i in r { covered[i] += 1; },
                None => break,
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// Every model × any range: `parallel_for` visits each index once.
    #[test]
    fn executor_covers_any_range(
        model in model_strategy(),
        len in 0usize..300,
        threads in 1usize..5,
    ) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let exec = Executor::new(threads);
        let flags: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        exec.try_parallel_for(model, 0..len, &CancelToken::new(), &|chunk| {
            for i in chunk {
                flags[i].fetch_add(1, Ordering::Relaxed);
            }
        }).unwrap();
        prop_assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    /// Every model's reduction equals the sequential fold.
    #[test]
    fn executor_reduces_correctly(
        model in model_strategy(),
        values in proptest::collection::vec(0u64..1000, 0..300),
        threads in 1usize..5,
    ) {
        let exec = Executor::new(threads);
        let expected: u64 = values.iter().sum();
        let got = exec.try_parallel_reduce(
            model,
            0..values.len(),
            &CancelToken::new(),
            || 0u64,
            |a, b| a + b,
            |chunk, acc| for i in chunk { *acc += values[i]; },
        ).unwrap();
        prop_assert_eq!(got, expected);
    }

    /// Team worksharing covers every index under any schedule.
    #[test]
    fn team_worksharing_covers(
        schedule in schedule_strategy(),
        len in 0usize..400,
        threads in 1usize..5,
    ) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let team = Team::new(threads);
        let flags: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        team.parallel_for(threads, schedule, 0..len, |i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    /// The Chase–Lev deque in single-owner use behaves like a stack, and
    /// never loses or duplicates values.
    #[test]
    fn chase_lev_matches_vec_model(ops in proptest::collection::vec(0u8..3, 1..200)) {
        let (w, s) = chase_lev::deque::<u32>(2);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next = 0u32;
        for op in ops {
            match op {
                0 => {
                    w.push(next);
                    model.push_back(next);
                    next += 1;
                }
                1 => {
                    prop_assert_eq!(w.pop(), model.pop_back());
                }
                _ => {
                    let got = s.steal().success();
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(w.len(), model.len());
        }
    }

    /// Reducer: for any values and slot assignment, the merged result equals
    /// the plain sum.
    #[test]
    fn reducer_equals_sequential_fold(
        values in proptest::collection::vec((0usize..8, 0u64..1_000), 0..200),
    ) {
        let r = Reducer::new(8, || 0u64, |a, b| a + b);
        let expected: u64 = values.iter().map(|&(_, v)| v).sum();
        for (slot, v) in &values {
            r.with(*slot, |acc| *acc += v);
        }
        prop_assert_eq!(r.finish(), expected);
    }

    /// Simulator: work conservation. For any policy, thread count and
    /// uniform compute-only workload: busy time equals total work, and
    /// makespan is bounded below by work/p and above by work + overhead
    /// (single-worker worst case, plus slack for idle waiting).
    #[test]
    fn simulator_work_conservation(
        policy in policy_strategy(),
        iters in 1u64..50_000,
        work_ns in 1u32..64,
        threads in 1usize..37,
    ) {
        let sim = Simulator { machine: Machine::xeon_e5_2699v3(), cost: CostModel::calibrated() };
        let wl = LoopWorkload::uniform(iters, work_ns as f64);
        let r = sim.run_loop(policy, &wl, threads);
        let total = wl.total_work_ns();
        prop_assert!((r.busy_ns - total).abs() < total * 1e-9 + 1e-6,
            "busy {} vs total {}", r.busy_ns, total);
        prop_assert!(r.makespan_ns >= total / threads as f64 * (1.0 - 1e-9),
            "makespan {} below work/p {}", r.makespan_ns, total / threads as f64);
        prop_assert!(r.makespan_ns.is_finite() && r.makespan_ns > 0.0);
    }

    /// Simulator determinism for arbitrary workloads.
    #[test]
    fn simulator_is_deterministic(
        policy in policy_strategy(),
        iters in 1u64..20_000,
        bytes in 0u32..64,
        spread in 0u32..90,
        threads in 1usize..17,
    ) {
        let sim = Simulator::paper_testbed();
        let wl = LoopWorkload::uniform(iters, 4.0)
            .with_bytes(bytes as f64)
            .with_imbalance(Imbalance::Random { seed: 7, spread: spread as f64 / 100.0 });
        let a = sim.run_loop(policy, &wl, threads);
        let b = sim.run_loop(policy, &wl, threads);
        prop_assert_eq!(a, b);
    }
}
