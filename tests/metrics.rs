//! Always-on metrics invariants: counter exactness under contention,
//! histogram quantile error bounds, HLL cardinality accuracy, and the
//! Prometheus exposition validated over a live server scrape.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use threadcmp::metrics::text::{self, Scrape};
use threadcmp::metrics::{Counter, Histogram, Hll, Registry};
use threadcmp::serve::{serve, Request, Response, ServerConfig};
use threadcmp::{JobRegistry, JobSpec, KernelVariant, Model};

/// The log-linear histogram's design bound: 4 sub-buckets per octave means
/// any quantile estimate is within 25% (one sub-bucket width) of the true
/// value, usually much closer.
const HIST_REL_ERROR: f64 = 0.25;

#[test]
fn histogram_quantiles_bound_error_on_known_distributions() {
    // Uniform 1..=10_000: p50 ≈ 5000, p90 ≈ 9000, p99 ≈ 9900.
    let h = Histogram::new();
    for v in 1..=10_000u64 {
        h.record(v);
    }
    let s = h.snapshot();
    for (q, exact) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
        let got = s.quantile(q);
        let rel = (got - exact).abs() / exact;
        assert!(
            rel <= HIST_REL_ERROR,
            "q{q}: got {got}, exact {exact}, rel {rel}"
        );
    }
    assert_eq!(s.quantile(1.0), 10_000.0, "q=1 is the exact max");
    assert_eq!(s.count(), 10_000);

    // Bimodal: 90% fast (~100), 10% slow (~100_000). p99 must land in the
    // slow mode — the failure a mean would hide.
    let h = Histogram::new();
    for _ in 0..900 {
        h.record(100);
    }
    for _ in 0..100 {
        h.record(100_000);
    }
    let s = h.snapshot();
    assert!(
        s.quantile(0.5) < 150.0,
        "p50 {} is in the fast mode",
        s.quantile(0.5)
    );
    let p99 = s.quantile(0.99);
    assert!(
        (p99 - 100_000.0).abs() / 100_000.0 <= HIST_REL_ERROR,
        "p99 {p99} must be in the slow mode"
    );
}

#[test]
fn hll_is_within_5_percent_at_a_million_distinct() {
    let hll = Hll::new();
    const N: u64 = 1_000_000;
    for i in 0..N {
        hll.insert_u64(i);
    }
    let est = hll.estimate();
    let rel = (est - N as f64).abs() / N as f64;
    assert!(rel < 0.05, "estimate {est} vs {N}: rel error {rel}");
    // Re-inserting the same keys must not move the estimate.
    for i in 0..N / 10 {
        hll.insert_u64(i);
    }
    let est2 = hll.estimate();
    assert!(
        (est2 - est).abs() / est < 1e-9,
        "duplicates moved {est} -> {est2}"
    );
}

#[test]
fn registry_snapshot_delta_isolates_an_interval() {
    let reg = Registry::new();
    let c = reg.counter("jobs_total", "Jobs.", &[]);
    let h = reg.histogram("lat", "Latency.", &[]);
    c.add(10);
    h.record(50);
    let before = reg.snapshot();
    c.add(7);
    h.record(50);
    h.record(5_000);
    let after = reg.snapshot();
    let d = after.delta(&before);
    assert_eq!(d.get("jobs_total", &[]), Some(7.0));
    // The interval saw exactly 2 observations even though the cumulative
    // histogram holds 3.
    let json = d.to_json();
    assert!(json.contains("\"count\":2"), "{json}");
}

/// Drives a real server over TCP — a handful of jobs under two models plus
/// error traffic — then scrapes `{"cmd":"metrics"}` and validates the
/// exposition structurally (TYPE declarations, cumulative buckets, +Inf,
/// count == +Inf bucket) and semantically (the counters match the traffic).
#[test]
fn live_scrape_is_valid_prometheus_and_counts_the_traffic() {
    let mut reg = JobRegistry::new();
    reg.register("spin", "sums size integers in parallel", 1 << 24, |ctx| {
        let total = std::sync::atomic::AtomicU64::new(0);
        ctx.exec
            .try_parallel_for(ctx.spec.model, 0..ctx.spec.size, ctx.token, &|chunk| {
                total.fetch_add(chunk.map(|i| i as u64).sum(), Ordering::Relaxed);
            })
            .map(|()| total.load(Ordering::Relaxed) as f64)
    });
    let handle = serve(
        Arc::new(reg),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let send = |w: &mut TcpStream, s: &str| {
        w.write_all(s.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
    };

    let spec = JobSpec {
        kernel: "spin".into(),
        model: Model::CilkFor,
        variant: KernelVariant::Reference,
        size: 50_000,
        threads: 2,
    };
    for id in 0..6 {
        let client = format!("it-{}", id % 3); // 3 distinct identities
        send(
            &mut writer,
            &Request::run_line_as(id, &spec, None, Some(&client)),
        );
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            matches!(Response::parse(line.trim()), Ok(Response::Ok { .. })),
            "{line}"
        );
    }
    // One unknown-kernel error and one parse error, both counted.
    send(&mut writer, r#"{"id":9,"kernel":"nope","size":1}"#);
    line.clear();
    reader.read_line(&mut line).unwrap();
    send(&mut writer, "not json at all");
    line.clear();
    reader.read_line(&mut line).unwrap();

    send(&mut writer, r#"{"cmd":"metrics"}"#);
    line.clear();
    reader.read_line(&mut line).unwrap();
    let exposition = match Response::parse(line.trim()) {
        Ok(Response::Metrics { exposition }) => exposition,
        other => panic!("expected metrics reply, got {other:?}"),
    };
    let scrape = text::validate(&exposition).expect("live exposition must validate");

    assert_eq!(
        scrape.get("tpm_requests_total", &[("outcome", "ok")]),
        Some(6.0)
    );
    assert_eq!(
        scrape.get("tpm_requests_total", &[("outcome", "parse")]),
        Some(1.0)
    );
    assert_eq!(
        scrape.get("tpm_request_duration_seconds_count", &[("kernel", "spin")]),
        Some(6.0)
    );
    // Only executed jobs record queue wait — rejected/parse traffic doesn't.
    assert_eq!(scrape.get("tpm_queue_wait_seconds_count", &[]), Some(6.0));
    // 3 explicit identities plus the peer-identified "nope" request = 4.
    let clients = scrape.get("tpm_distinct_clients", &[]).unwrap();
    assert!((3.0..=5.0).contains(&clients), "distinct clients {clients}");
    // The jobs ran under cilk_for → the worksteal runtime executed tasks.
    let executed = scrape
        .get(
            "tpm_runtime_events_total",
            &[("runtime", "worksteal"), ("event", "executed")],
        )
        .unwrap();
    assert!(executed > 0.0, "worksteal executed {executed}");
    assert!(scrape.type_of("tpm_request_duration_seconds") == Some("histogram"));

    // Health over the wire carries the compact snapshot.
    send(&mut writer, r#"{"cmd":"health"}"#);
    line.clear();
    reader.read_line(&mut line).unwrap();
    match Response::parse(line.trim()) {
        Ok(Response::Health {
            admitted,
            completed,
            distinct_clients,
            ..
        }) => {
            assert_eq!(admitted, 6);
            assert_eq!(completed, 6);
            assert!((3..=5).contains(&distinct_clients), "{distinct_clients}");
        }
        other => panic!("expected health, got {other:?}"),
    }
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded counters lose nothing under arbitrary concurrent increment
    /// patterns: the final value equals the sum of everything added.
    #[test]
    fn concurrent_counter_increments_are_exact(
        per_thread in proptest::collection::vec(1u64..2_000, 1..8),
    ) {
        let c = Counter::new();
        std::thread::scope(|s| {
            for &n in &per_thread {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..n {
                        c.inc();
                    }
                });
            }
        });
        prop_assert_eq!(c.get(), per_thread.iter().sum::<u64>());
    }

    /// Histogram count and sum stay exact under concurrent recording (only
    /// quantiles are approximate), and every quantile stays within the
    /// sub-bucket error bound.
    #[test]
    fn concurrent_histogram_is_exact_in_count_and_sum(
        values in proptest::collection::vec(1u64..1_000_000, 8..200),
        threads in 2usize..5,
    ) {
        let h = Histogram::new();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let (h, next, values) = (&h, &next, &values);
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&v) = values.get(i) else { break };
                    h.record(v);
                });
            }
        });
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = sorted[((sorted.len() - 1) as f64 * q).round() as usize] as f64;
            let got = snap.quantile(q);
            prop_assert!(
                (got - exact).abs() <= exact * HIST_REL_ERROR + 1.0,
                "q{}: got {}, exact {}", q, got, exact
            );
        }
    }

    /// Rendered exposition always round-trips through the validator, for
    /// arbitrary label values (quotes, backslashes, newlines get escaped).
    #[test]
    fn rendered_exposition_always_validates(
        label_bytes in proptest::collection::vec(32u8..127, 0..24),
        count in 0u64..500,
        obs in proptest::collection::vec(1u64..1_000_000_000, 0..32),
    ) {
        let label: String = label_bytes.iter().map(|&b| b as char).collect();
        let reg = Registry::new();
        reg.counter("t_total", "Total.", &[("tag", &label)]).add(count);
        let h = reg.histogram_scaled("t_seconds", "Duration.", &[("tag", &label)], 1e-9);
        for &v in &obs {
            h.record(v);
        }
        let text_out = reg.render();
        let scrape = text::validate(&text_out);
        prop_assert!(scrape.is_ok(), "render must validate: {:?}\n{}", scrape.err(), text_out);
        let scrape = scrape.unwrap();
        prop_assert_eq!(
            scrape.get("t_seconds_count", &[("tag", &label)]),
            Some(obs.len() as f64)
        );
    }
}

/// `Scrape::delta` and quantile estimation compose: the dashboard's
/// interval-quantile computation is consistent with recording directly.
#[test]
fn scrape_delta_quantiles_match_interval_recording() {
    let reg = Registry::new();
    let h = reg.histogram("lat", "Latency.", &[]);
    for _ in 0..100 {
        h.record(10);
    }
    let before = Scrape::parse(&reg.render()).unwrap();
    for _ in 0..100 {
        h.record(1_000);
    }
    let after = Scrape::parse(&reg.render()).unwrap();
    let d = after.delta(&before);
    // Cumulatively, half the samples are fast; in the interval, none are.
    let p50_cum = after.histogram_quantile("lat", &[], 0.50).unwrap();
    let p50_int = d.histogram_quantile("lat", &[], 0.50).unwrap();
    assert!(p50_cum < 100.0, "cumulative p50 {p50_cum}");
    assert!(p50_int > 500.0, "interval p50 {p50_int}");
}
