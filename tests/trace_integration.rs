//! End-to-end tests for the tracing subsystem against the real runtimes:
//! events recorded concurrently by worker threads during `join`/`par_for`
//! and forkjoin worksharing must survive the drain, the Chrome-trace JSON
//! must be structurally valid, and tracing must be free when off.

use std::sync::Mutex;
use std::time::Instant;

use tpm_forkjoin::{Schedule, Team};
use tpm_trace::{EventKind, TraceSession};
use tpm_worksteal::{join, par_for, Grain, Runtime};

/// Serializes the tests in this binary. Sessions already serialize against
/// each other, but a concurrently-running test here would otherwise record
/// into another test's session (or, for the overhead test, find tracing
/// unexpectedly enabled).
static GATE: Mutex<()> = Mutex::new(());

fn fib(ctx: &tpm_worksteal::WorkerCtx<'_>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = join(ctx, |c| fib(c, n - 1), |c| fib(c, n - 2));
    a + b
}

#[test]
fn worksteal_join_and_par_for_record_from_multiple_workers() {
    let _gate = GATE.lock().unwrap();
    let rt = Runtime::new(4);
    // On a single-core host one worker can drain the whole run inside its
    // OS timeslice before any sibling wakes, so a single attempt seeing
    // only one worker proves nothing. Retry (bounded) until a second
    // worker participates; every attempt still checks full coverage.
    let mut multi = None;
    for _ in 0..25 {
        let session = TraceSession::start();
        let hits = std::sync::atomic::AtomicUsize::new(0);
        rt.install(|ctx| {
            par_for(ctx, 0..10_000, Grain::Fixed(64), &|chunk| {
                hits.fetch_add(chunk.len(), std::sync::atomic::Ordering::Relaxed);
            });
            fib(ctx, 16)
        });
        let trace = session.stop();
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 10_000);
        let ws_workers = trace
            .workers
            .iter()
            .filter(|w| w.name.starts_with("tpm-worksteal"))
            .count();
        if ws_workers >= 2 {
            multi = Some(trace);
            break;
        }
    }
    let trace = multi.expect("no attempt recorded events from >=2 workers");
    let summary = trace.summary();
    assert!(
        summary.total(EventKind::ChunkDispatch) > 0,
        "par_for chunks"
    );
    assert!(summary.total(EventKind::TaskSpawn) > 0, "join spawns");
    assert!(summary.total(EventKind::TaskExec) > 0, "executed jobs");
    // Timestamps within each worker must be monotone (drain preserves order).
    for w in &trace.workers {
        assert!(
            w.events.windows(2).all(|p| p[0].ts_ns <= p[1].ts_ns),
            "worker {} events out of order",
            w.name
        );
    }
}

#[test]
fn forkjoin_worksharing_records_chunks_and_barriers() {
    let _gate = GATE.lock().unwrap();
    let team = Team::new(4);
    let session = TraceSession::start();
    team.parallel(|ctx| {
        ctx.ws_for(Schedule::Dynamic { chunk: 16 }, 0..4_096, |i| {
            std::hint::black_box(i);
        });
        ctx.barrier();
    });
    let trace = session.stop();
    let summary = trace.summary();
    assert!(summary.total(EventKind::ChunkDispatch) > 0, "chunk events");
    assert!(
        summary.total(EventKind::BarrierRelease) > 0,
        "barrier events"
    );
    assert!(summary.total(EventKind::RegionBegin) > 0, "region span");
    assert!(trace.worker_count() >= 2, "parallel region uses the team");
}

#[test]
fn chrome_json_is_structurally_valid() {
    let _gate = GATE.lock().unwrap();
    let rt = Runtime::new(3);
    let session = TraceSession::start();
    rt.install(|ctx| fib(ctx, 14));
    let trace = session.stop();
    let json = trace.chrome_json();

    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"displayTimeUnit\":\"ns\""));
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("thread_name"), "worker name metadata");
    assert_eq!(
        json.matches("\"ph\":\"B\"").count(),
        json.matches("\"ph\":\"E\"").count(),
        "duration begin/end events must pair up"
    );
    assert_balanced(&json);
}

/// Checks brace/bracket balance and string termination — enough to catch
/// any escaping or truncation bug in the hand-rolled serializer.
fn assert_balanced(json: &str) {
    let (mut depth_obj, mut depth_arr) = (0i64, 0i64);
    let mut in_str = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        assert!(depth_obj >= 0 && depth_arr >= 0, "negative nesting depth");
    }
    assert!(!in_str, "unterminated string");
    assert_eq!(depth_obj, 0, "unbalanced braces");
    assert_eq!(depth_arr, 0, "unbalanced brackets");
}

#[test]
fn disabled_record_is_nearly_free() {
    let _gate = GATE.lock().unwrap();
    // No session is active (the gate guarantees it), so every record() call
    // short-circuits on the enabled check. One million calls should cost
    // single-digit milliseconds; the 100ms budget leaves room for a loaded CI
    // machine while still catching an accidental always-on slow path.
    let t0 = Instant::now();
    for i in 0..1_000_000u64 {
        tpm_trace::record(EventKind::TaskSpawn, i, 0);
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_millis() < 100,
        "1M disabled record() calls took {elapsed:?}"
    );
}

#[test]
fn tracing_overhead_on_fib_is_bounded() {
    let _gate = GATE.lock().unwrap();
    let rt = Runtime::new(4);
    let run = |rt: &Runtime| {
        let t0 = Instant::now();
        let v = rt.install(|ctx| fib(ctx, 20));
        (t0.elapsed(), v)
    };
    // Warm up the pool, then time with tracing off and on. The bound is
    // deliberately loose — this is a smoke test against pathological
    // regressions (e.g. taking a lock per event), not a benchmark.
    let _ = run(&rt);
    let (off, v_off) = run(&rt);
    let session = TraceSession::start();
    let (on, v_on) = run(&rt);
    let trace = session.stop();
    assert_eq!(v_off, v_on);
    assert!(trace.total_events() > 0);
    let budget = off * 25 + std::time::Duration::from_millis(250);
    assert!(
        on < budget,
        "tracing-on fib took {on:?}, tracing-off {off:?} (budget {budget:?})"
    );
}
