//! Property tests over the job registry × the model registry: every job the
//! service exposes must run under every [`Model`] — including newly added
//! families — observe pre-cancelled tokens, and honor expired deadlines,
//! uniformly and with no per-model special cases. The model set comes from
//! `Model::ALL`, so a registry extension widens these properties for free.

use std::time::Duration;

use proptest::prelude::*;

use threadcmp::harness::jobs;
use threadcmp::sync::CancelToken;
use threadcmp::{ExecError, Executor, JobSpec, KernelVariant, Model};

fn model_strategy() -> impl Strategy<Value = Model> {
    (0..Model::ALL.len()).prop_map(|i| Model::ALL[i])
}

/// A problem size each job completes quickly at (fib counts in `n`, the
/// rest in elements/rows).
fn small_size(job: &str) -> usize {
    if job == "fib" {
        10
    } else {
        96
    }
}

fn spec(job: &str, model: Model, threads: usize) -> JobSpec {
    JobSpec {
        kernel: job.to_string(),
        model,
        variant: KernelVariant::Reference,
        size: small_size(job),
        threads,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every registered job runs to completion under any registry model and
    /// returns a finite value.
    #[test]
    fn every_job_completes_under_any_model(model in model_strategy(), threads in 1usize..4) {
        let reg = jobs::registry();
        let exec = Executor::new(threads);
        for job in reg.names() {
            let r = reg.run(&exec, &spec(job, model, threads), &CancelToken::new());
            prop_assert!(r.is_ok(), "{} under {}: {:?}", job, model, r);
            let v = r.unwrap().value;
            prop_assert!(v.is_finite(), "{} under {} returned {}", job, model, v);
        }
    }

    /// Job results agree across models: whatever `omp_for` computes, any
    /// other model computes too (same kernel, same seed, same size).
    #[test]
    fn job_values_agree_across_models(model in model_strategy()) {
        let reg = jobs::registry();
        let threads = 2;
        let exec = Executor::new(threads);
        for job in reg.names() {
            let baseline = reg
                .run(&exec, &spec(job, Model::OmpFor, 2), &CancelToken::new())
                .unwrap()
                .value;
            let got = reg.run(&exec, &spec(job, model, threads), &CancelToken::new()).unwrap().value;
            let tol = 1e-9 * baseline.abs().max(1.0);
            prop_assert!(
                (got - baseline).abs() <= tol,
                "{} disagrees under {}: {} vs {}", job, model, got, baseline
            );
        }
    }

    /// A token cancelled before submission stops every job under every
    /// model with `Cancelled` — no work, no panic, no hang.
    #[test]
    fn pre_cancelled_token_stops_every_job(model in model_strategy()) {
        let reg = jobs::registry();
        let threads = 2;
        let exec = Executor::new(threads);
        let token = CancelToken::new();
        token.cancel();
        for job in reg.names() {
            let err = reg.run(&exec, &spec(job, model, threads), &token).unwrap_err();
            prop_assert_eq!(err, ExecError::Cancelled, "{} under {}", job, model);
        }
    }

    /// An already-expired deadline surfaces as `Deadline` for every job
    /// under every model, and the executor remains usable afterwards.
    #[test]
    fn expired_deadline_stops_every_job(model in model_strategy()) {
        let reg = jobs::registry();
        let threads = 2;
        let exec = Executor::new(threads);
        for job in reg.names() {
            let token = CancelToken::with_deadline(Duration::ZERO);
            let err = reg.run(&exec, &spec(job, model, threads), &token).unwrap_err();
            prop_assert_eq!(err, ExecError::Deadline, "{} under {}", job, model);
        }
        // Recovery: the same executor still completes clean runs.
        let ok = reg.run(&exec, &spec("sum", model, 2), &CancelToken::new());
        prop_assert!(ok.is_ok(), "post-deadline recovery under {}: {:?}", model, ok);
    }
}
