//! Cross-crate integration: every kernel and every Rodinia application must
//! produce the sequential reference result under every registry variant,
//! through the public `threadcmp` API.

use threadcmp::approx::{scalar_close, slices_close};
use threadcmp::kernels::{util::max_abs_diff, Axpy, Fib, Matmul, Matvec, Sum};
use threadcmp::rodinia::{Bfs, HotSpot, LavaMd, Lud, Srad};
use threadcmp::{Executor, Model};

#[test]
fn axpy_all_models_multiple_thread_counts() {
    let k = Axpy::native(4_321);
    let (x, y0) = k.alloc();
    let mut expected = y0.clone();
    k.seq(&x, &mut expected);
    for threads in [1, 2, 5] {
        let exec = Executor::new(threads);
        for model in Model::ALL {
            let mut y = y0.clone();
            k.run(&exec, model, &x, &mut y);
            assert!(max_abs_diff(&y, &expected) < 1e-12, "{model} @{threads}t");
        }
    }
}

#[test]
fn sum_all_models() {
    let k = Sum::native(12_345);
    let x = k.alloc();
    let expected = k.seq(&x);
    let exec = Executor::new(4);
    for model in Model::ALL {
        let got = k.run(&exec, model, &x);
        scalar_close(got, expected, 1e-10).unwrap_or_else(|e| panic!("{model}: {e}"));
    }
}

#[test]
fn matvec_and_matmul_all_models() {
    let exec = Executor::new(3);
    let mv = Matvec::native(64);
    let (a, x) = mv.alloc();
    let expected = mv.seq(&a, &x);
    for model in Model::ALL {
        slices_close(&mv.run(&exec, model, &a, &x), &expected, 1e-10)
            .unwrap_or_else(|e| panic!("matvec {model}: {e}"));
    }
    let mm = Matmul::native(24);
    let (a, b) = mm.alloc();
    let expected = mm.seq(&a, &b);
    for model in Model::ALL {
        slices_close(&mm.run(&exec, model, &a, &b), &expected, 1e-10)
            .unwrap_or_else(|e| panic!("matmul {model}: {e}"));
    }
}

#[test]
fn fib_task_variants() {
    let k = Fib::native(20);
    let expected = Fib::seq(20);
    let exec = Executor::new(3);
    assert_eq!(k.run_omp_task(exec.team()), expected);
    assert_eq!(k.run_cilk_spawn(exec.worksteal()), expected);
    assert_eq!(k.run_cxx_async(), expected);
    assert_eq!(k.run_actor_task(exec.actors()), expected);
}

#[test]
fn bfs_all_models() {
    let b = Bfs::native(1_500);
    let g = b.generate();
    let expected = b.seq(&g);
    let exec = Executor::new(3);
    for model in Model::ALL {
        let (got, _) = b.run(&exec, model, &g);
        assert_eq!(got, expected, "{model}");
    }
}

#[test]
fn hotspot_all_models() {
    let h = HotSpot::native(24, 3);
    let (t, p) = h.generate();
    let expected = h.seq(&t, &p);
    let exec = Executor::new(3);
    for model in Model::ALL {
        assert!(
            max_abs_diff(&h.run(&exec, model, &t, &p), &expected) < 1e-9,
            "{model}"
        );
    }
}

#[test]
fn lud_all_models_and_reconstruction() {
    let l = Lud::native(20);
    let a = l.generate();
    let expected = l.seq(&a);
    let exec = Executor::new(3);
    for model in Model::ALL {
        let lu = l.run(&exec, model, &a);
        assert!(max_abs_diff(&lu, &expected) < 1e-8, "{model}");
        assert!(max_abs_diff(&l.reconstruct(&lu), &a) < 1e-7, "{model} L*U");
    }
}

#[test]
fn lavamd_all_models() {
    let l = LavaMd::native(2, 6);
    let particles = l.generate();
    let expected = l.seq(&particles);
    let exec = Executor::new(3);
    for model in Model::ALL {
        assert!(
            max_abs_diff(&l.run(&exec, model, &particles), &expected) < 1e-10,
            "{model}"
        );
    }
}

#[test]
fn srad_all_models() {
    let s = Srad::native(20, 2);
    let img = s.generate();
    let expected = s.seq(&img);
    let exec = Executor::new(3);
    for model in Model::ALL {
        assert!(
            max_abs_diff(&s.run(&exec, model, &img), &expected) < 1e-9,
            "{model}"
        );
    }
}

#[test]
fn one_executor_runs_everything_interleaved() {
    // Reuse a single executor across kernels and apps, interleaved — the
    // runtimes must be reusable with no cross-talk.
    let exec = Executor::new(2);
    for round in 0..3 {
        let k = Sum::native(1_000 + round * 37);
        let x = k.alloc();
        let expected = k.seq(&x);
        for model in [
            Model::OmpTask,
            Model::CilkFor,
            Model::CxxAsync,
            Model::ActorFor,
        ] {
            assert!((k.run(&exec, model, &x) - expected).abs() < 1e-6);
        }
        let b = Bfs::native(300);
        let g = b.generate();
        let expected = b.seq(&g);
        assert_eq!(b.run(&exec, Model::CilkSpawn, &g).0, expected);
    }
}
