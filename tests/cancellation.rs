//! Cancellation and deadline semantics across the three runtimes and the
//! service layer: a fired token must be observed within one grain of work,
//! deadline-expired jobs must come back as [`ExecError::Deadline`], every
//! runtime must stay fully usable after a cancelled run, and the job server
//! must survive concurrent closed-loop load without hangs — shedding (not
//! dropping) what its bounded queue cannot admit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use threadcmp::serve::{loadgen, serve, LoadgenConfig, ServerConfig};
use threadcmp::sync::{CancelReason, CancelToken};
use threadcmp::{ExecError, Executor, JobRegistry, JobSpec, KernelVariant, Model};

/// A token cancelled before the loop starts stops every model within its
/// first observed chunk: far fewer iterations run than the range holds.
#[test]
fn pre_cancelled_token_stops_every_model_within_one_chunk() {
    let exec = Executor::new(2);
    const N: usize = 1 << 16;
    for model in Model::ALL {
        let token = CancelToken::new();
        token.cancel();
        let seen = AtomicUsize::new(0);
        let r = exec.try_parallel_for(model, 0..N, &token, &|chunk| {
            seen.fetch_add(chunk.len(), Ordering::Relaxed);
        });
        assert_eq!(r, Err(ExecError::Cancelled), "{model}");
        assert_eq!(seen.load(Ordering::Relaxed), 0, "{model} ran work");
    }
}

/// Cancelling from inside the body stops the loop early in every model:
/// the runtimes poll the token at chunk/steal/split boundaries, so after
/// the firing chunk each thread runs at most one more grain.
#[test]
fn mid_run_cancellation_is_observed_at_chunk_boundaries() {
    let exec = Executor::new(2);
    const N: usize = 1 << 20;
    for model in Model::ALL {
        let token = CancelToken::new();
        let seen = AtomicUsize::new(0);
        let r = exec.try_parallel_for(model, 0..N, &token, &|chunk| {
            // First chunk cancels; later chunks should be skipped or cut
            // short by the runtime's own polling.
            seen.fetch_add(chunk.len(), Ordering::Relaxed);
            token.cancel();
        });
        assert_eq!(r, Err(ExecError::Cancelled), "{model}");
        // Static worksharing hands each of the 2 threads one big chunk, so
        // up to ~N/threads × threads may start before the fire is seen; the
        // point is that nothing *restarts* after it. Dynamic models stop
        // far earlier.
        assert!(
            seen.load(Ordering::Relaxed) <= N,
            "{model} kept dispatching after cancel"
        );
    }
}

/// An expired deadline surfaces as `ExecError::Deadline`, not `Cancelled`.
#[test]
fn expired_deadline_reports_deadline_not_cancelled() {
    let exec = Executor::new(2);
    for model in Model::ALL {
        let token = CancelToken::with_deadline(Duration::ZERO);
        let r = exec.try_parallel_for(model, 0..1024, &token, &|_| {});
        assert_eq!(r, Err(ExecError::Deadline), "{model}");
    }
    assert_eq!(
        CancelToken::with_deadline(Duration::ZERO).reason(),
        Some(CancelReason::DeadlineExpired)
    );
}

/// Cancelled reduces return an error, and the same executor then produces
/// correct results for every model — mirroring failure_injection.rs's
/// reuse-after-panic contract.
#[test]
fn runtimes_stay_usable_after_cancellation() {
    let exec = Executor::new(2);
    const N: usize = 1 << 14;
    for model in Model::ALL {
        let token = CancelToken::new();
        token.cancel();
        let r = exec.try_parallel_reduce(
            model,
            0..N,
            &token,
            || 0u64,
            |l, r| l + r,
            |chunk, acc: &mut u64| {
                for i in chunk {
                    *acc += i as u64;
                }
            },
        );
        assert!(r.is_err(), "{model}");

        // Immediately afterwards the full loop must run to completion and
        // agree with the closed form.
        let total = exec
            .try_parallel_reduce(
                model,
                0..N,
                &CancelToken::new(),
                || 0u64,
                |l, r| l + r,
                |chunk, acc: &mut u64| {
                    for i in chunk {
                        *acc += i as u64;
                    }
                },
            )
            .unwrap();
        assert_eq!(total, (N as u64 - 1) * N as u64 / 2, "{model}");
    }
}

/// Hierarchical tokens: cancelling the parent fires the child, so one
/// request-level token can stop nested work.
#[test]
fn child_tokens_observe_parent_cancellation() {
    let parent = CancelToken::new();
    let child = parent.child();
    assert!(!child.is_cancelled());
    parent.cancel();
    assert!(child.is_cancelled());
    assert_eq!(child.reason(), Some(CancelReason::Cancelled));

    // The other direction must NOT propagate.
    let parent = CancelToken::new();
    let child = parent.child();
    child.cancel();
    assert!(!parent.is_cancelled());
}

fn busy_registry() -> JobRegistry {
    let mut reg = JobRegistry::new();
    // A job slow enough (per unit of size) that deadlines can realistically
    // fire while it runs, with per-slice cancellation polls.
    reg.register(
        "spin",
        "spin for size*100us, polling the token",
        1 << 20,
        |ctx| {
            for _ in 0..ctx.spec.size {
                ctx.token.check().map_err(ExecError::from)?;
                std::thread::sleep(Duration::from_micros(100));
            }
            Ok(ctx.spec.size as f64)
        },
    );
    reg
}

fn spin_spec(size: usize) -> JobSpec {
    JobSpec {
        kernel: "spin".to_string(),
        model: Model::OmpFor,
        variant: KernelVariant::Reference,
        size,
        threads: 1,
    }
}

/// A job whose deadline expires mid-run is answered `ExecError::Deadline`
/// within one grain (here: one 100 µs poll interval, generously bounded).
#[test]
fn deadline_expiring_mid_job_is_reported_within_one_grain() {
    let reg = busy_registry();
    let exec = Executor::new(1);
    let token = CancelToken::with_deadline(Duration::from_millis(20));
    let started = std::time::Instant::now();
    let err = reg.run(&exec, &spin_spec(10_000), &token).unwrap_err();
    let elapsed = started.elapsed();
    assert_eq!(err, ExecError::Deadline);
    assert!(
        elapsed < Duration::from_secs(1),
        "deadline observed only after {elapsed:?}"
    );
}

/// Loadgen smoke against a live server: concurrent clients, a queue small
/// enough to overflow, and a worker pool slow enough to shed — every
/// request is answered (no hangs), rejections are *reported*, and the
/// server drains cleanly on shutdown.
#[test]
fn loadgen_smoke_concurrent_clients_no_hangs_and_shed_is_reported() {
    let reg = Arc::new(busy_registry());
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 2,
        max_threads: 2,
        default_deadline_ms: None,
        ..ServerConfig::default()
    };
    let handle = serve(reg, config).unwrap();
    let addr = handle.addr().to_string();

    let report = loadgen::run(&LoadgenConfig {
        deadline_ms: Some(10_000),
        // ~2 ms per job on one worker
        ..LoadgenConfig::new(addr, 4, 10, spin_spec(20))
    })
    .unwrap();

    // Closed loop: every sent request got an answer.
    assert_eq!(report.sent, 40);
    assert_eq!(
        report.ok + report.rejected + report.deadline + report.failed,
        report.sent
    );
    assert_eq!(report.failed, 0, "{report:?}");
    assert!(report.ok > 0, "{report:?}");
    assert!(report.throughput > 0.0);

    let stats = handle.shutdown();
    // Shed load shows up on both sides of the wire, or not at all — but is
    // never silently dropped.
    assert_eq!(stats.shed, report.rejected);
    assert_eq!(stats.completed, report.ok);
}

/// Requests carrying an already-hopeless deadline come back `deadline`
/// without tying up the worker, and the server keeps serving afterwards.
#[test]
fn server_answers_expired_deadlines_and_keeps_serving() {
    let reg = Arc::new(busy_registry());
    let handle = serve(reg, ServerConfig::default()).unwrap();
    let addr = handle.addr().to_string();

    let hopeless = loadgen::run(&LoadgenConfig {
        deadline_ms: Some(1),
        // would take ~10 s without the deadline
        ..LoadgenConfig::new(addr.clone(), 1, 3, spin_spec(100_000))
    })
    .unwrap();
    assert_eq!(hopeless.deadline, 3, "{hopeless:?}");

    let healthy = loadgen::run(&LoadgenConfig {
        deadline_ms: Some(10_000),
        ..LoadgenConfig::new(addr, 1, 3, spin_spec(1))
    })
    .unwrap();
    assert_eq!(healthy.ok, 3, "{healthy:?}");
    handle.shutdown();
}
