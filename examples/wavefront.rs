//! Task-dependency wavefront: a 2-D dynamic-programming table computed with
//! OpenMP-style `depend(in/out)` tasks (`tpm_forkjoin::DepTracker`) — the
//! data/event-driven parallelism pattern of the paper's Table I.
//!
//! Each tile (i, j) depends on its north and west neighbors; the dependency
//! graph lets anti-diagonal tiles run in parallel without any barrier.
//!
//! ```sh
//! cargo run --release --example wavefront [tiles]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use threadcmp::forkjoin::{DepTracker, Team};

fn main() {
    let tiles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    const TILE_WORK: u64 = 50_000;

    // value[i][j] = value[i-1][j] + value[i][j-1] (+1 at the origin), each
    // computed by a dependent task after some busywork.
    let table: Vec<AtomicU64> = (0..tiles * tiles).map(|_| AtomicU64::new(0)).collect();
    let team = Team::new(4);
    let started = std::time::Instant::now();
    team.parallel(|ctx| {
        ctx.single(|| {
            ctx.task_scope(|s| {
                let mut deps = DepTracker::new();
                // One dependence slot per tile.
                let slots: Vec<_> = (0..tiles * tiles).map(|_| deps.slot()).collect();
                for i in 0..tiles {
                    for j in 0..tiles {
                        let mut reads = Vec::new();
                        if i > 0 {
                            reads.push(slots[(i - 1) * tiles + j]);
                        }
                        if j > 0 {
                            reads.push(slots[i * tiles + j - 1]);
                        }
                        let writes = [slots[i * tiles + j]];
                        let table = &table;
                        deps.spawn_dep(s, &reads, &writes, move |_| {
                            // Simulated tile work.
                            let mut acc = 0u64;
                            for k in 0..TILE_WORK {
                                acc = acc.wrapping_add(k);
                            }
                            std::hint::black_box(acc);
                            let north = if i > 0 {
                                table[(i - 1) * tiles + j].load(Ordering::Acquire)
                            } else {
                                0
                            };
                            let west = if j > 0 {
                                table[i * tiles + j - 1].load(Ordering::Acquire)
                            } else {
                                0
                            };
                            let v = if i == 0 && j == 0 { 1 } else { north + west };
                            table[i * tiles + j].store(v, Ordering::Release);
                        });
                    }
                }
            });
        });
    });
    let elapsed = started.elapsed();

    // The wavefront recurrence yields binomial coefficients:
    // value[i][j] = C(i + j, i).
    let corner = table[tiles * tiles - 1].load(Ordering::Relaxed);
    let expect = binomial(2 * (tiles as u64 - 1), tiles as u64 - 1);
    println!("{tiles}x{tiles} wavefront of dependent tasks finished in {elapsed:.2?}");
    println!("corner value = {corner} (expected C(2(n-1), n-1) = {expect})");
    assert_eq!(corner, expect, "dependency ordering must hold");
    println!("dependency ordering verified: every tile saw completed neighbors");
}

fn binomial(n: u64, k: u64) -> u64 {
    let mut r = 1u64;
    for i in 0..k {
        r = r * (n - i) / (i + 1);
    }
    r
}
