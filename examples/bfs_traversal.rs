//! Rodinia-style BFS on a synthetic random graph under all six variants —
//! the paper's Fig. 6 application at native scale.
//!
//! ```sh
//! cargo run --release --example bfs_traversal [nodes]
//! ```

use std::time::Instant;

use threadcmp::rodinia::Bfs;
use threadcmp::{Executor, Model};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let bfs = Bfs::native(nodes);
    println!("Generating a {nodes}-node random graph (degree 2..7)...");
    let graph = bfs.generate();
    println!("  {} edges", graph.num_edges());

    let t = Instant::now();
    let reference = bfs.seq(&graph);
    println!("  sequential BFS: {:.2?}", t.elapsed());
    let reached = reference.iter().filter(|&&c| c >= 0).count();
    let depth = reference.iter().max().copied().unwrap_or(0);
    println!("  reached {reached}/{nodes} nodes, depth {depth}\n");

    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().min(4));
    let exec = Executor::new(threads);
    println!(
        "{:>12} {:>12} {:>8} {:>8}",
        "variant", "time", "levels", "correct"
    );
    for model in Model::ALL {
        let t = Instant::now();
        let (cost, levels) = bfs.run(&exec, model, &graph);
        let elapsed = t.elapsed();
        println!(
            "{:>12} {:>12} {:>8} {:>8}",
            model.name(),
            format!("{:.2?}", elapsed),
            levels,
            if cost == reference { "yes" } else { "NO" },
        );
    }
    println!(
        "\nThe paper's finding for BFS (Fig. 6): the full-array phases have\n\
         irregular per-node work and poor locality; cilk_for's steal-based\n\
         chunk distribution makes it the slowest variant, and scaling tails\n\
         off beyond ~8 threads."
    );
}
