//! Quickstart: run one computation under every registry variant and print
//! the paper-style comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use threadcmp::{Executor, Model};
use tpm_sync::CancelToken;

fn main() {
    // A Sum-like reduction (the paper's Fig. 2 kernel, scaled down).
    const N: usize = 4_000_000;
    let x: Vec<f64> = (0..N).map(|i| (i % 97) as f64 * 0.25).collect();
    let expected: f64 = x.iter().sum();

    let threads = std::thread::available_parallelism().map_or(2, |p| p.get().min(4));
    println!(
        "Summing {N} elements under all {} variants ({threads} threads)\n",
        Model::ALL.len()
    );
    println!(
        "{:>12} {:>12} {:>10} {:>8}",
        "variant", "time", "result ok", "family"
    );

    let exec = Executor::new(threads);
    for model in Model::ALL {
        let start = Instant::now();
        let total = exec
            .try_parallel_reduce(
                model,
                0..N,
                &CancelToken::new(),
                || 0.0f64,
                |a, b| a + b,
                |chunk, acc| {
                    for i in chunk {
                        *acc += x[i];
                    }
                },
            )
            .expect("no cancellation or panic in the quickstart workload");
        let elapsed = start.elapsed();
        let ok = (total - expected).abs() / expected < 1e-9;
        println!(
            "{:>12} {:>12} {:>10} {:>8}",
            model.name(),
            format!("{:.2?}", elapsed),
            if ok { "yes" } else { "NO" },
            model.family().name(),
        );
    }

    println!(
        "\nEach variant uses a different runtime mechanism:\n\
         - omp_for     worksharing loop on a persistent fork-join team\n\
         - omp_task    chunk tasks on lock-based deques\n\
         - cilk_for    recursive splitting over lock-free work stealing\n\
         - cilk_spawn  chunk tasks on lock-free (Chase-Lev) deques\n\
         - cxx_thread  one freshly spawned OS thread per chunk\n\
         - cxx_async   recursive thread-per-split with BASE cutoff\n\
         - actor_for   one mailbox activation per chunk, stolen when idle\n\
         - actor_task  recursive actor parcels joined by continuations"
    );
}
