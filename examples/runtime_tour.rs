//! A tour of the three runtimes' native APIs — the constructs behind the
//! unified `Executor` interface, used directly.
//!
//! ```sh
//! cargo run --example runtime_tour
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use threadcmp::forkjoin::{Schedule, Team};
use threadcmp::rawthreads::{self, Launch};
use threadcmp::worksteal::{self, Grain, Runtime};

fn main() {
    // ---- OpenMP analogue: fork-join team, worksharing, tasks -------------
    println!("== tpm-forkjoin (OpenMP-like) ==");
    let team = Team::new(4);
    let hits = AtomicU64::new(0);
    team.parallel(|ctx| {
        // Worksharing loop with dynamic schedule + implicit barrier.
        ctx.ws_for(Schedule::Dynamic { chunk: 16 }, 0..100, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        // One thread prints; others wait at the implicit barrier.
        ctx.single(|| {
            println!(
                "  worksharing visited {} iterations",
                hits.load(Ordering::Relaxed)
            )
        });
        // Explicit tasks with a taskwait.
        ctx.single(|| {
            ctx.task_scope(|s| {
                for i in 0..4 {
                    s.spawn(move |c| {
                        println!("  task {i} executed by thread {}", c.thread_num());
                    });
                }
            });
        });
    });
    let reduced = team.parallel_for_reduce(
        4,
        Schedule::static_default(),
        0..1000,
        || 0u64,
        |a, b| a + b,
        |chunk, acc| {
            for i in chunk {
                *acc += i as u64;
            }
        },
    );
    println!("  reduction over the team: {reduced}");

    // ---- Cilk Plus analogue: join, scope, par_for, reducers --------------
    println!("== tpm-worksteal (Cilk-Plus-like) ==");
    let rt = Runtime::new(4);
    let (left, right) = rt.install(|ctx| {
        worksteal::join(
            ctx,
            |_| (0..500u64).sum::<u64>(),
            |_| (500..1000u64).sum::<u64>(),
        )
    });
    println!("  join: {left} + {right} = {}", left + right);
    let total = rt.install(|ctx| {
        worksteal::par_for_reduce(
            ctx,
            0..1000,
            Grain::Auto,
            || 0u64,
            |a, b| a + b,
            |chunk, acc| {
                for i in chunk {
                    *acc += i as u64;
                }
            },
        )
    });
    println!("  par_for_reduce (reducer hyperobject): {total}");
    println!("  steals so far: {}", rt.stats().snapshot().steals);

    // ---- C++11 analogue: raw threads and futures --------------------------
    println!("== tpm-rawthreads (C++11-like) ==");
    let sum = rawthreads::threads_for_reduce(
        4,
        0..1000,
        |_tid, chunk| chunk.map(|i| i as u64).sum::<u64>(),
        |a, b| a + b,
        0,
    );
    println!("  threads_for_reduce (4 fresh OS threads): {sum}");
    let fut = rawthreads::async_task(Launch::Async, || 21 * 2);
    let lazy = rawthreads::async_task(Launch::Deferred, || "deferred ran on get()");
    println!("  std::async analogue: {} / {}", fut.get(), lazy.get());
    // The paper's Fibonacci failure mode, contained by a thread budget:
    let budget = rawthreads::ThreadBudget::new(128);
    match rawthreads::fib_thread_per_call(20, &budget) {
        Ok(v) => println!("  naive fib(20) unexpectedly finished: {v}"),
        Err(e) => {
            println!("  naive thread-per-call fib(20): {e} (the paper: \"the system hangs\")")
        }
    }
    println!(
        "  fib(20) with BASE cutoff: {}",
        rawthreads::fib_with_cutoff(20, 12)
    );
}
