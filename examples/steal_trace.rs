//! Visualizes *why* `cilk_for` loses on data-parallel loops: an ASCII Gantt
//! chart of the simulated work-stealing execution, showing the serialized
//! steal ramp that distributes loop chunks (the paper's §IV-A explanation),
//! next to the same loop under static worksharing.
//!
//! ```sh
//! cargo run --release --example steal_trace [threads]
//! ```

use threadcmp::sim::{Activity, LoopPolicy, LoopWorkload, Simulator};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let sim = Simulator::paper_testbed();
    // A moderately fine-grained uniform loop (Axpy-like shape, scaled down
    // so the chart resolves individual chunks).
    let wl = LoopWorkload::uniform(200_000, 0.5).with_bytes(24.0);

    let (ws, trace) = sim.trace_worksteal_split(&wl, threads, 0);
    println!(
        "cilk_for on {threads} simulated threads: makespan {:.3} ms, {} steals, {} failed attempts\n",
        ws.makespan_ns / 1e6,
        ws.steals,
        ws.failed_steals
    );
    println!("{}", trace.gantt(100));

    for w in 0..threads.min(4) {
        println!(
            "  w{w}: work {:.3} ms, steal {:.3} ms, idle {:.3} ms",
            trace.worker_total(w, Activity::Work) / 1e6,
            trace.worker_total(w, Activity::Steal) / 1e6,
            trace.worker_total(w, Activity::Idle) / 1e6,
        );
    }

    let st = sim.run_loop(LoopPolicy::WorksharingStatic, &wl, threads);
    println!(
        "\nomp_for (static worksharing), same loop: makespan {:.3} ms, 0 steals",
        st.makespan_ns / 1e6
    );
    println!(
        "cilk_for / omp_for = {:.2}x — chunks reach idle workers only through\n\
         the (per-victim serialized) steal path, and stolen chunks lose\n\
         streaming locality; static worksharing computes its assignment\n\
         locally for free.",
        ws.makespan_ns / st.makespan_ns
    );
}
