//! Regenerates the paper's Tables I–III (the feature matrices for eight
//! threading APIs) and demonstrates the queryable form.
//!
//! ```sh
//! cargo run --example feature_tables
//! ```

use threadcmp::features::{memory_sync, parallelism, table1, table2, table3, Api};

fn main() {
    println!("{}", table1());
    println!("{}", table2());
    println!("{}", table3());

    // The tables are data, not prose — they can be queried:
    println!("Derived facts (paper §III-A):");
    let omp = parallelism(Api::OpenMp);
    println!(
        "- OpenMP covers all four parallelism patterns: {}",
        omp.data.supported()
            && omp.task.supported()
            && omp.event.supported()
            && omp.offload.supported()
    );
    let apis_with_barrier: Vec<&str> = Api::ALL
        .iter()
        .filter(|a| memory_sync(**a).barrier.supported())
        .map(|a| a.name())
        .collect();
    println!(
        "- APIs with a barrier construct: {}",
        apis_with_barrier.join(", ")
    );
    let task_only: Vec<&str> = Api::ALL
        .iter()
        .filter(|a| {
            let p = parallelism(**a);
            p.task.supported() && !p.data.supported()
        })
        .map(|a| a.name())
        .collect();
    println!(
        "- Task/thread-only APIs (no data-parallel construct): {}",
        task_only.join(", ")
    );
}
