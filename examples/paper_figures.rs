//! Regenerates all ten paper figures on the simulated 36-core testbed and
//! checks each against the paper's qualitative claims.
//!
//! ```sh
//! cargo run --release --example paper_figures [fig_no]
//! ```

use threadcmp::harness::experiments::{self, check_claims};

fn main() {
    let only: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let figs: [(usize, fn() -> threadcmp::Figure); 10] = [
        (1, experiments::fig1_axpy),
        (2, experiments::fig2_sum),
        (3, experiments::fig3_matvec),
        (4, experiments::fig4_matmul),
        (5, experiments::fig5_fib),
        (6, experiments::fig6_bfs),
        (7, experiments::fig7_hotspot),
        (8, experiments::fig8_lud),
        (9, experiments::fig9_lavamd),
        (10, experiments::fig10_srad),
    ];
    let mut violations_total = 0;
    for (no, f) in figs {
        if let Some(o) = only {
            if o != no {
                continue;
            }
        }
        let fig = f();
        println!("{}", fig.to_table());
        let violations = check_claims(no, &fig);
        if violations.is_empty() {
            println!("[check] Fig.{no}: all paper claims reproduced\n");
        } else {
            violations_total += violations.len();
            for v in &violations {
                println!("[check] {v}");
            }
            println!();
        }
    }
    if violations_total > 0 {
        eprintln!("{violations_total} claim violation(s)");
        std::process::exit(1);
    }
}
