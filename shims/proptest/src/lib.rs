//! A minimal, dependency-free stand-in for the `proptest` property-testing
//! crate, used because this workspace builds in offline environments with no
//! registry access.
//!
//! It implements the subset the workspace's tests use: the [`Strategy`]
//! trait with [`Strategy::prop_map`] and [`Strategy::boxed`], integer-range
//! and tuple strategies, [`Just`], [`any`], [`option::of`],
//! [`collection::vec`], and the [`proptest!`], [`prop_oneof!`],
//! [`prop_assert!`] / [`prop_assert_eq!`] macros. Values are generated from
//! a deterministic SplitMix64 stream seeded by the test name, so every run
//! explores the same cases — there is no shrinking and no failure
//! persistence. Swap back to the real crate by repointing the workspace
//! dependency when a registry is available.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 value source driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a hash), so each property
    /// test gets its own deterministic case sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(h | 1)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bound mapping; bias is irrelevant for test-case
        // generation at these range sizes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A source of values for one property-test parameter.
///
/// Mirrors `proptest::strategy::Strategy`, reduced to direct generation
/// (no value trees, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (needed by [`prop_oneof!`] arms of
    /// differing concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.new_value(rng)))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoxedStrategy").finish_non_exhaustive()
    }
}

/// Strategy yielding a clone of a fixed value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+ );)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Strategy behind [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T` (`proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice over type-erased arms; built by [`prop_oneof!`].
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let arm = rng.below(self.0.len() as u64) as usize;
        self.0[arm].new_value(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.0.len())
            .finish()
    }
}

/// `Option` strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`: `None` about one time in five.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }

    /// Wraps `inner` to also produce `None` (`proptest::option::of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Admissible length ranges for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Vectors of `element` values with lengths in `size`
    /// (`proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-test configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The common imports property tests use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Defines property-test functions: each argument is drawn from its
/// strategy for `cases` iterations (`proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let _ = case;
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

/// Uniform choice among strategy arms of a common value type
/// (`proptest::prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property assertion; plain `assert!` here (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; plain `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let s = 3usize..17;
        for _ in 0..1000 {
            let v = s.new_value(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("arms");
        let s = prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|x| x)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            match s.new_value(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10..=19 => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_and_option_and_tuple_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = collection::vec((0usize..8, 0u64..100), 1..10);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((1..10).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 8 && b < 100));
        }
        let o = option::of(1usize..4);
        let mut nones = 0;
        for _ in 0..200 {
            match o.new_value(&mut rng) {
                None => nones += 1,
                Some(x) => assert!((1..4).contains(&x)),
            }
        }
        assert!(nones > 0);
    }

    #[test]
    fn determinism_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself works end to end.
        #[test]
        fn macro_generates_cases(x in 0usize..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flag;
        }
    }
}
