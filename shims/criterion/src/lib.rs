//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, used because this workspace builds in offline environments with
//! no registry access.
//!
//! It implements exactly the API subset the `tpm-bench` targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], the group tuning knobs, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a plain
//! median-of-samples wall-clock timer. Numbers are printed per benchmark as
//! `group/function  median  (min .. max)`; there is no statistical analysis,
//! HTML report, or baseline comparison. Swap back to the real crate by
//! repointing the workspace dependency when a registry is available.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement abstraction (only wall time is provided).
pub mod measurement {
    /// Marker trait for measurement kinds; the shim measures wall time only.
    pub trait Measurement {}

    /// Wall-clock measurement (the default and only kind here).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;

    impl Measurement for WallTime {}
}

use measurement::WallTime;

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_, WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: std::marker::PhantomData,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Compatibility no-op (the real crate reads CLI filters here).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of benchmarks sharing tuning settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M: measurement::Measurement> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    _measurement: std::marker::PhantomData<M>,
}

impl<M: measurement::Measurement> BenchmarkGroup<'_, M> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to warm up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine to time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id);
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Times a user-provided routine; handed to `bench_function` closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Per-sample mean nanoseconds per iteration.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`: warms up, then takes `sample_size` samples sized so
    /// all samples together roughly fill the measurement window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9;
            self.samples.push(ns / iters_per_sample as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (bencher.iter was not called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{group}/{id}: median {} (min {} .. max {})",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a single named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
