//! # tpm-forkjoin — an OpenMP-like fork-join runtime
//!
//! One of the three threading runtimes compared by the `threadcmp` workspace
//! (after *Comparison of Threading Programming Models*, 2017). It reproduces
//! the mechanisms the paper attributes to OpenMP implementations:
//!
//! * **Fork-join execution**: a persistent [`Team`] of workers; a master
//!   thread forks parallel regions and joins them ([`Team::parallel`]).
//! * **Worksharing loops** with `static`, `dynamic` and `guided`
//!   [`Schedule`]s and the implicit trailing barrier
//!   ([`Ctx::ws_for`]).
//! * **Reductions** over per-thread views ([`Team::parallel_for_reduce`]).
//! * **Explicit tasks** on *lock-based* per-thread deques with work-first or
//!   breadth-first scheduling ([`Ctx::task_scope`], [`TaskMode`]) — the
//!   design the paper contrasts with Cilk Plus's lock-free protocol.
//! * **Synchronization and mutual exclusion**: [`Ctx::barrier`],
//!   [`Ctx::single`], [`Ctx::master`], [`Ctx::critical`].
//!
//! ```
//! use tpm_forkjoin::{Schedule, Team};
//!
//! let team = Team::new(4);
//! let total = team.parallel_for_reduce(
//!     4,
//!     Schedule::static_default(),
//!     0..1_000,
//!     || 0u64,
//!     |a, b| a + b,
//!     |chunk, acc| for i in chunk { *acc += i as u64 },
//! );
//! assert_eq!(total, 499_500);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod depend;
mod lock;
mod tasking;
mod team;
mod worksharing;

pub use depend::{DepToken, DepTracker};
pub use lock::{OmpLock, OmpNestLock};
pub use tasking::{TaskMode, TaskScope};
pub use team::{Ctx, Team, TeamBuilder, TeamConfig};
pub use worksharing::{static_chunks, LoopCounter, Schedule};
