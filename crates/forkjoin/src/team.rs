//! The fork-join thread team.
//!
//! Mirrors the execution model the paper describes for OpenMP: "a master
//! thread ... begins execution until it reaches a parallel region. Then, the
//! master thread forks a team of worker threads and all threads execute the
//! parallel region concurrently. Upon exiting parallel region, all threads
//! synchronize and join". The team is persistent — workers are created once
//! and parked between regions — so the per-region cost is a dispatch
//! handshake, not thread creation (the contrast with `tpm-rawthreads`).

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use tpm_fault::{Action as FaultAction, Site as FaultSite};
use tpm_sync::topology::NumaTopology;
use tpm_sync::{
    Barrier, CancelReason, CancelToken, Condvar, CountLatch, LockedDeque, Mutex, Reducer,
    SchedulerStats, SpinLock,
};

use crate::tasking::{TaskMode, TaskRef, TaskScope};
use crate::worksharing::{static_chunks, LoopCounter, Schedule};

/// Most chunks one dynamic-schedule claim may batch (see
/// [`LoopCounter::next_dynamic_batch`]); bounds the work a stalled thread
/// can sit on to `DYNAMIC_BATCH_CHUNKS · chunk` iterations.
const DYNAMIC_BATCH_CHUNKS: usize = 8;

/// Configuration for a [`Team`].
#[derive(Debug, Clone, Copy)]
pub struct TeamConfig {
    /// Task-scheduling discipline (the paper's work-first vs breadth-first).
    pub task_mode: TaskMode,
    /// Pin worker `tid` to core `tid % cores` (OpenMP's `OMP_PROC_BIND`
    /// analogue). The master is the caller's thread and is never pinned.
    /// Defaults to the `TPM_PIN` environment variable.
    pub pin: bool,
    /// Idle policy `(spin rounds, yield rounds)` for the team's in-region
    /// wait loops (worksharing-counter init, task-scope drains).
    pub idle: (u32, u32),
}

impl Default for TeamConfig {
    fn default() -> Self {
        Self {
            task_mode: TaskMode::WorkFirst,
            pin: tpm_sync::affinity::pin_from_env(),
            idle: (
                tpm_sync::IdleStrategy::RUNTIME_DEFAULT_SPIN,
                tpm_sync::IdleStrategy::RUNTIME_DEFAULT_YIELD,
            ),
        }
    }
}

/// A persistent fork-join thread team (the OpenMP analogue's runtime object).
///
/// # Examples
///
/// ```
/// use tpm_forkjoin::{Schedule, Team};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let team = Team::new(4);
/// let sum = AtomicU64::new(0);
/// team.parallel(|ctx| {
///     ctx.ws_for(Schedule::static_default(), 0..1000, |i| {
///         sum.fetch_add(i as u64, Ordering::Relaxed);
///     });
/// });
/// assert_eq!(sum.into_inner(), (0..1000).sum());
/// ```
pub struct Team {
    inner: Arc<TeamInner>,
    handles: Vec<JoinHandle<()>>,
}

pub(crate) struct TeamInner {
    num_threads: usize,
    state: Mutex<Dispatch>,
    cv: Condvar,
    in_region: AtomicBool,
    pub(crate) stats: SchedulerStats,
    pub(crate) task_mode: TaskMode,
    idle: (u32, u32),
}

struct Dispatch {
    generation: u64,
    job: Option<Job>,
    shutdown: bool,
}

/// An erased parallel-region job: `func(tid)` plus a completion latch.
#[derive(Clone, Copy)]
struct Job {
    func: *const (dyn Fn(usize) + Sync),
    done: *const CountLatch,
}

// SAFETY: the master keeps the referents alive until `done` completes, and
// workers only dereference between receiving the job and decrementing `done`.
unsafe impl Send for Job {}

/// Per-region shared state: barrier, worksharing slot, task deques, panic.
pub(crate) struct Region {
    active: usize,
    pub(crate) barrier: Barrier,
    /// Last worksharing construct sequence claimed for initialization.
    ws_claim: AtomicUsize,
    /// Last worksharing construct sequence whose counter is initialized.
    ws_init: AtomicUsize,
    /// The single in-flight dynamic/guided loop counter (constructs are
    /// separated by their implicit trailing barrier, so one slot suffices).
    ws_counter: UnsafeCell<Option<LoopCounter>>,
    /// Claim word for `single` constructs.
    single_claim: AtomicUsize,
    critical: Mutex<()>,
    pub(crate) deques: Box<[LockedDeque<TaskRef>]>,
    panic: SpinLock<Option<Box<dyn Any + Send>>>,
    /// Cheap flag mirroring `panic.is_some()`, checked per chunk.
    panicked: std::sync::atomic::AtomicBool,
    /// Cooperative cancellation flag (`omp cancel parallel/for`).
    cancelled: std::sync::atomic::AtomicBool,
    /// External cancellation token attached to this region (job-service
    /// path): worksharing loops poll it at every chunk boundary alongside
    /// the region-local flag, so a deadline or a client disconnect stops the
    /// region within one chunk of work.
    token: Option<CancelToken>,
}

// SAFETY: `ws_counter` is written only by the claim-CAS winner and read by
// others only after the Release store to `ws_init` (Acquire-matched).
unsafe impl Sync for Region {}

impl Region {
    fn new(active: usize, token: Option<CancelToken>) -> Self {
        Self {
            active,
            barrier: Barrier::new(active),
            ws_claim: AtomicUsize::new(0),
            ws_init: AtomicUsize::new(0),
            ws_counter: UnsafeCell::new(None),
            single_claim: AtomicUsize::new(0),
            critical: Mutex::new(()),
            deques: (0..active).map(|_| LockedDeque::new()).collect(),
            panic: SpinLock::new(None),
            panicked: std::sync::atomic::AtomicBool::new(false),
            cancelled: std::sync::atomic::AtomicBool::new(false),
            token,
        }
    }

    pub(crate) fn store_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.panicked.store(true, Ordering::Release);
    }

    /// True once any thread/task of the region has panicked.
    fn poisoned(&self) -> bool {
        self.panicked.load(Ordering::Relaxed)
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().take()
    }

    /// A thread's region body panicked past every containment layer: it
    /// will never participate in another phase of this region. Resign it
    /// from the barrier so the survivors' phases complete at reduced width
    /// instead of deadlocking, and record the death in the trace.
    fn desert(&self, tid: usize) {
        tpm_trace::record(tpm_trace::EventKind::WorkerDeath, tid as u64, 0);
        self.barrier.leave();
        tpm_trace::record(
            tpm_trace::EventKind::DegradedWidth,
            self.barrier.num_threads() as u64,
            0,
        );
    }
}

/// The per-thread view of an executing parallel region (OpenMP's implicit
/// "current team" state, made explicit).
pub struct Ctx<'a> {
    team: &'a TeamInner,
    pub(crate) region: &'a Region,
    tid: usize,
    /// Per-thread worksharing construct sequence number.
    ws_seq: Cell<usize>,
    /// Per-thread `single` construct sequence number (independent of
    /// worksharing loops, which keep their own sequence).
    single_seq: Cell<usize>,
    /// XorShift state for steal victim selection.
    rng: Cell<u64>,
    /// Same-NUMA-node steal victims (empty when node-aware stealing is
    /// inactive — single node, `TPM_NUMA=off` — or no same-node peer
    /// exists). The steal loop spends its first sweep on these before
    /// falling back to uniform victims.
    local_victims: Vec<usize>,
}

/// Same-node peers of `tid` under the worker→CPU mapping `tid % cpus`
/// (matching `affinity::pin_current_thread`). Pure so it is testable; the
/// cached policy gate lives in [`numa_local_victims`].
fn local_victims_for(topo: &NumaTopology, tid: usize, active: usize) -> Vec<usize> {
    let cpus = topo.num_cpus().max(1);
    let node = topo.node_of_cpu(tid % cpus);
    (0..active)
        .filter(|&v| v != tid && topo.node_of_cpu(v % cpus) == node)
        .collect()
}

/// [`local_victims_for`] behind the process-wide policy gate: node-aware
/// stealing needs a multi-node topology and `TPM_NUMA` not off (unset
/// defaults to "only when `TPM_PIN` is on", since without pinning the
/// worker→CPU mapping is fiction).
fn numa_local_victims(tid: usize, active: usize) -> Vec<usize> {
    static TOPO: std::sync::OnceLock<Option<NumaTopology>> = std::sync::OnceLock::new();
    match TOPO.get_or_init(|| {
        let t = NumaTopology::probe();
        (t.num_nodes() > 1 && tpm_sync::topology::numa_from_env(tpm_sync::affinity::pin_from_env()))
            .then_some(t)
    }) {
        Some(topo) => local_victims_for(topo, tid, active),
        None => Vec::new(),
    }
}

impl<'a> Ctx<'a> {
    fn new(team: &'a TeamInner, region: &'a Region, tid: usize) -> Self {
        Self {
            team,
            region,
            tid,
            ws_seq: Cell::new(0),
            single_seq: Cell::new(0),
            rng: Cell::new(0x9E37_79B9_7F4A_7C15 ^ (tid as u64 + 1)),
            local_victims: numa_local_victims(tid, region.active),
        }
    }

    /// This thread's index within the region (`omp_get_thread_num`).
    pub fn thread_num(&self) -> usize {
        self.tid
    }

    /// Number of threads executing the region (`omp_get_num_threads`).
    pub fn num_threads(&self) -> usize {
        self.region.active
    }

    /// Team-wide event counters for this thread.
    pub(crate) fn stats(&self) -> &tpm_sync::WorkerStats {
        self.team.stats.worker(self.tid)
    }

    /// The team's configured idle policy, for in-region wait loops.
    pub(crate) fn idle_strategy(&self) -> tpm_sync::IdleStrategy {
        tpm_sync::IdleStrategy::new(self.team.idle.0, self.team.idle.1)
    }

    /// Synchronizes all threads of the region (`#pragma omp barrier`).
    ///
    /// Waiting is timed: each episode bumps this worker's `barrier_waits`
    /// and `barrier_wait_ns` counters, and (when tracing is live) records a
    /// [`tpm_trace::EventKind::BarrierArrive`]/`BarrierRelease` pair.
    pub fn barrier(&self) {
        // Injected barrier-entry faults exercise the desertion path: the
        // panic unwinds out of the region body, and `Region::desert` repairs
        // the barrier so siblings are not stranded.
        match tpm_fault::probe(FaultSite::BarrierEntry) {
            FaultAction::Panic => tpm_fault::injected_panic(FaultSite::BarrierEntry),
            FaultAction::TaskDrop => tpm_fault::injected_drop(FaultSite::BarrierEntry),
            _ => {}
        }
        tpm_trace::record(tpm_trace::EventKind::BarrierArrive, 0, 0);
        let start = std::time::Instant::now();
        self.region.barrier.wait();
        let wait_ns = start.elapsed().as_nanos() as u64;
        let stats = self.stats();
        stats.barrier_waits.inc();
        stats.barrier_wait_ns.add(wait_ns);
        tpm_trace::record(tpm_trace::EventKind::BarrierRelease, wait_ns, 0);
    }

    /// Runs `body` once per chunk of `range` assigned to this thread under
    /// `schedule`, then joins the implicit trailing barrier (as OpenMP's
    /// worksharing `for` does without `nowait`).
    ///
    /// All threads of the region must call this with the same `range` and
    /// `schedule`, in the same construct order — the OpenMP worksharing
    /// rules.
    ///
    /// A panic in `body` is recorded, remaining chunks are skipped on every
    /// thread, all threads still join the barrier, and the panic is
    /// re-raised by `Team::parallel*` after the region (unwinding mid-loop
    /// would strand siblings at the barrier — the OpenMP equivalent is
    /// undefined behaviour; this is the well-defined version).
    pub fn ws_for_chunks(
        &self,
        schedule: Schedule,
        range: Range<usize>,
        body: impl Fn(Range<usize>),
    ) {
        let n = self.region.active;
        let guarded = |c: Range<usize>| -> bool {
            if self.region.poisoned() || self.is_cancelled() {
                return false;
            }
            match tpm_fault::probe(FaultSite::ChunkClaim) {
                // Unwinds out of the region body; `Region::desert` repairs
                // the barrier and the panic surfaces as ExecError::Panic.
                FaultAction::Panic => tpm_fault::injected_panic(FaultSite::ChunkClaim),
                FaultAction::TaskDrop => {
                    // Dropping a chunk silently would corrupt the result:
                    // poison the region so the drop is observable.
                    self.region.store_panic(Box::new(format!(
                        "injected task-drop at {}",
                        FaultSite::ChunkClaim
                    )));
                    return false;
                }
                _ => {}
            }
            self.stats().chunks.inc();
            tpm_trace::record(tpm_trace::EventKind::ChunkDispatch, c.len() as u64, 0);
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(c))) {
                self.region.store_panic(p);
                return false;
            }
            true
        };
        // `Auto` is resolved here, where the loop shape and team width are
        // both known; every arm below sees a concrete schedule.
        match schedule.resolve(range.len(), n) {
            Schedule::Static { chunk } => {
                for c in static_chunks(range, self.tid, n, chunk) {
                    if !guarded(c) {
                        break;
                    }
                }
            }
            Schedule::Dynamic { chunk } => {
                let counter = self.ws_counter_for(range);
                let chunk = chunk.max(1);
                // Each shared-counter transaction claims up to
                // DYNAMIC_BATCH_CHUNKS chunks at once; the batch is served
                // thread-locally so the counter is touched once per batch,
                // not once per chunk (and the exhausted probe is a plain
                // load, not an RMW).
                'claims: loop {
                    self.stats().loop_claims.inc();
                    match counter.next_dynamic_batch(chunk, n, DYNAMIC_BATCH_CHUNKS) {
                        Some(batch) => {
                            let mut start = batch.start;
                            while start < batch.end {
                                let c = start..(start + chunk).min(batch.end);
                                start = c.end;
                                if !guarded(c) {
                                    break 'claims;
                                }
                            }
                        }
                        None => break,
                    }
                }
            }
            Schedule::Guided { min_chunk } => {
                let counter = self.ws_counter_for(range);
                loop {
                    self.stats().loop_claims.inc();
                    match counter.next_guided(n, min_chunk) {
                        Some(c) => {
                            if !guarded(c) {
                                break;
                            }
                        }
                        None => break,
                    }
                }
            }
            Schedule::Auto => unreachable!("Auto resolved to a concrete schedule above"),
        }
        self.barrier();
    }

    /// Per-iteration form of [`ws_for_chunks`](Self::ws_for_chunks).
    pub fn ws_for(&self, schedule: Schedule, range: Range<usize>, body: impl Fn(usize)) {
        self.ws_for_chunks(schedule, range, |chunk| {
            for i in chunk {
                body(i);
            }
        });
    }

    /// Claims/locates the shared loop counter for this thread's next
    /// worksharing construct.
    fn ws_counter_for(&self, range: Range<usize>) -> &LoopCounter {
        let seq = self.ws_seq.get() + 1;
        self.ws_seq.set(seq);
        if self
            .region
            .ws_claim
            .compare_exchange(seq - 1, seq, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            // We initialize the counter for everyone.
            // SAFETY: claim winner has exclusive write access; readers wait
            // for ws_init below.
            unsafe { *self.region.ws_counter.get() = Some(LoopCounter::new(range)) };
            self.region.ws_init.store(seq, Ordering::Release);
        } else {
            let idle = self.idle_strategy();
            while self.region.ws_init.load(Ordering::Acquire) < seq {
                idle.snooze_no_park();
            }
        }
        // SAFETY: initialized (ws_init >= seq) and not replaced until after
        // the construct's trailing barrier.
        unsafe { (*self.region.ws_counter.get()).as_ref().unwrap() }
    }

    /// Executes `body` on exactly one thread of the region
    /// (`#pragma omp single`), with the implicit trailing barrier. Returns
    /// `Some(result)` on the executing thread, `None` elsewhere.
    pub fn single<R>(&self, body: impl FnOnce() -> R) -> Option<R> {
        let seq = self.single_seq.get() + 1;
        self.single_seq.set(seq);
        let won = self
            .region
            .single_claim
            .compare_exchange(seq - 1, seq, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        // A panicking `single` body must not skip the implicit barrier
        // (siblings would deadlock); record and defer to the region end.
        let result = if won {
            match catch_unwind(AssertUnwindSafe(body)) {
                Ok(r) => Some(r),
                Err(p) => {
                    self.region.store_panic(p);
                    None
                }
            }
        } else {
            None
        };
        self.barrier();
        result
    }

    /// Executes each of `sections` exactly once, distributed across the
    /// region's threads (`#pragma omp sections`), with the implicit trailing
    /// barrier. All threads must call this together.
    pub fn sections(&self, sections: &[&(dyn Fn() + Sync)]) {
        self.ws_for(Schedule::Dynamic { chunk: 1 }, 0..sections.len(), |i| {
            sections[i]();
        });
    }

    /// Requests cancellation of the current region (`#pragma omp cancel`):
    /// worksharing loops stop handing out chunks at their next chunk
    /// boundary on every thread; explicit tasks observe it through
    /// [`is_cancelled`](Self::is_cancelled) (cooperatively, as in OpenMP,
    /// where cancellation takes effect at cancellation points).
    pub fn cancel(&self) {
        self.region
            .cancelled
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// True once any thread has called [`cancel`](Self::cancel) in this
    /// region (`omp cancellation point`), or once the region's attached
    /// [`CancelToken`] (if any — see [`Team::parallel_with_token`]) has been
    /// cancelled or passed its deadline.
    pub fn is_cancelled(&self) -> bool {
        self.cancel_reason().is_some()
    }

    /// Why this region is cancelled, if it is: a region-local
    /// [`cancel`](Self::cancel) reports [`CancelReason::Cancelled`]; an
    /// attached token reports its own reason (distinguishing deadline
    /// expiry from explicit cancellation).
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        if self
            .region
            .cancelled
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            return Some(CancelReason::Cancelled);
        }
        self.region.token.as_ref().and_then(|t| t.reason())
    }

    /// Executes `body` on thread 0 only (`#pragma omp master`); no barrier.
    pub fn master<R>(&self, body: impl FnOnce() -> R) -> Option<R> {
        if self.tid == 0 {
            Some(body())
        } else {
            None
        }
    }

    /// Runs `body` under the region-wide mutual-exclusion lock
    /// (`#pragma omp critical`).
    pub fn critical<R>(&self, body: impl FnOnce() -> R) -> R {
        let _g = self.region.critical.lock();
        tpm_trace::record(tpm_trace::EventKind::LockAcquire, 0, 0);
        body()
    }

    /// Opens an explicit-task scope (`task` + `taskwait`): tasks spawned via
    /// [`TaskScope::spawn`] may run on any thread of the region; the scope
    /// does not return until all of them (transitively) completed.
    pub fn task_scope<'c, R>(&'c self, f: impl FnOnce(&TaskScope<'c, 'a>) -> R) -> R {
        crate::tasking::run_task_scope(self, f)
    }

    /// Queues a task on this thread's deque.
    pub(crate) fn push_task(&self, task: TaskRef) {
        tpm_trace::record(tpm_trace::EventKind::TaskSpawn, 0, 0);
        self.region.deques[self.tid].push_bottom(task);
    }

    /// Records a panic payload for the region (first panic wins).
    pub(crate) fn store_region_panic(&self, payload: Box<dyn Any + Send>) {
        self.region.store_panic(payload);
    }

    /// Advances the XorShift stream one step.
    fn rng_next(&self) -> u64 {
        let mut x = self.rng.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next steal victim (uniform over the other threads).
    pub(crate) fn next_victim(&self) -> usize {
        let r = (self.rng_next() >> 33) as usize;
        let n = self.region.active;
        if n <= 1 {
            return 0;
        }
        // Map to [0, n-1) then skip self.
        let v = r % (n - 1);
        if v >= self.tid {
            v + 1
        } else {
            v
        }
    }

    /// Pops or steals one task and executes it. Returns false if none found.
    pub(crate) fn execute_one_task(&self) -> bool {
        let own = &self.region.deques[self.tid];
        let task = match self.team.task_mode {
            TaskMode::WorkFirst => own.pop_bottom(),
            TaskMode::BreadthFirst => own.pop_top(),
        };
        let task = task.or_else(|| {
            // Randomized stealing from the FIFO end, a few rounds. With
            // node-aware stealing active, the first sweep's worth of
            // probes draws from same-node victims only (a remote steal
            // drags the task's working set across the interconnect);
            // later rounds go uniform so remote work is still found.
            let n = self.region.active;
            for round in 0..(2 * n) {
                let v = if round < n && !self.local_victims.is_empty() {
                    self.local_victims[(self.rng_next() >> 33) as usize % self.local_victims.len()]
                } else {
                    self.next_victim()
                };
                if v == self.tid {
                    continue;
                }
                // Task-steal probes may not unwind (the caller can be a
                // latch-wait loop); panics are downgraded to misses.
                if tpm_fault::probe_no_panic(FaultSite::StealAttempt) != FaultAction::None {
                    self.stats().failed_steals.inc();
                    tpm_trace::record(tpm_trace::EventKind::FailedSteal, v as u64, 0);
                    continue;
                }
                if let Some(t) = self.region.deques[v].steal_top() {
                    self.stats().steals.inc();
                    tpm_trace::record(tpm_trace::EventKind::Steal, v as u64, 0);
                    return Some(t);
                }
                self.stats().failed_steals.inc();
                tpm_trace::record(tpm_trace::EventKind::FailedSteal, v as u64, 0);
            }
            None
        });
        match task {
            Some(t) => {
                self.stats().executed.inc();
                tpm_trace::record(tpm_trace::EventKind::TaskExec, 0, 0);
                t.execute(self);
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("tid", &self.tid)
            .field("active", &self.region.active)
            .finish()
    }
}

/// Builder for [`Team`] — the one place every construction knob lives
/// (thread count, pinning, task discipline), replacing the ad-hoc mix of
/// `Team::new` + `TPM_PIN` env var + `TeamConfig` literals.
///
/// # Examples
///
/// ```
/// use tpm_forkjoin::Team;
///
/// let team = Team::builder().threads(2).pin(false).build();
/// assert_eq!(team.num_threads(), 2);
/// ```
#[derive(Debug, Clone)]
#[must_use = "call .build() to create the Team"]
pub struct TeamBuilder {
    threads: usize,
    config: TeamConfig,
}

impl TeamBuilder {
    /// Team size (default 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Pin worker `tid` to core `tid % cores`. Defaults to the `TPM_PIN`
    /// environment variable.
    pub fn pin(mut self, pin: bool) -> Self {
        self.config.pin = pin;
        self
    }

    /// Task-scheduling discipline (default [`TaskMode::WorkFirst`]).
    pub fn task_mode(mut self, mode: TaskMode) -> Self {
        self.config.task_mode = mode;
        self
    }

    /// Idle policy `(spin, yield)` rounds for in-region wait loops
    /// (defaults to [`tpm_sync::IdleStrategy`]'s runtime defaults).
    pub fn idle(mut self, spin: u32, yld: u32) -> Self {
        self.config.idle = (spin, yld);
        self
    }

    /// Applies a shared [`tpm_sync::PoolConfig`] (the family-registry path:
    /// every runtime gets the same threads/pin/idle knobs). The `numa`
    /// field is not consumed here — the team's NUMA behavior (node-local
    /// task-steal victims) keys off `TPM_NUMA` at region setup.
    pub fn config(mut self, cfg: tpm_sync::PoolConfig) -> Self {
        self.threads = cfg.threads;
        self.config.pin = cfg.pin;
        self.config.idle = cfg.idle;
        self
    }

    /// Builds the team, spawning its workers.
    #[must_use = "dropping the Team joins its workers"]
    pub fn build(self) -> Team {
        Team::with_config(self.threads, self.config)
    }
}

impl Team {
    /// The construction entry point; see [`TeamBuilder`].
    pub fn builder() -> TeamBuilder {
        TeamBuilder {
            threads: 1,
            config: TeamConfig::default(),
        }
    }

    /// Creates a team of `num_threads` (master + `num_threads - 1` workers)
    /// with the default configuration (shorthand for
    /// `Team::builder().threads(num_threads).build()`).
    pub fn new(num_threads: usize) -> Self {
        Self::builder().threads(num_threads).build()
    }

    /// Creates a team with explicit configuration.
    pub fn with_config(num_threads: usize, config: TeamConfig) -> Self {
        assert!(num_threads >= 1, "team needs at least one thread");
        let inner = Arc::new(TeamInner {
            num_threads,
            state: Mutex::new(Dispatch {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            cv: Condvar::new(),
            in_region: AtomicBool::new(false),
            stats: SchedulerStats::new(num_threads),
            task_mode: config.task_mode,
            idle: config.idle,
        });
        let pin = config.pin;
        let handles = (1..num_threads)
            .map(|tid| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tpm-forkjoin-{tid}"))
                    .spawn(move || {
                        if pin {
                            tpm_sync::affinity::pin_current_thread(tid);
                        }
                        worker_loop(&inner, tid)
                    })
                    .expect("failed to spawn team worker")
            })
            .collect();
        Self { inner, handles }
    }

    /// Team size (the maximum number of threads a region can use).
    pub fn num_threads(&self) -> usize {
        self.inner.num_threads
    }

    /// Scheduler event counters (tasks spawned/executed, steals).
    pub fn stats(&self) -> &SchedulerStats {
        &self.inner.stats
    }

    /// Forks a parallel region on all team threads; joins before returning.
    /// Panics from any thread of the region are re-raised here.
    pub fn parallel<F: Fn(&Ctx<'_>) + Sync>(&self, f: F) {
        self.parallel_with(self.inner.num_threads, f);
    }

    /// Forks a parallel region on `active ≤ num_threads` threads
    /// (`num_threads` clause).
    pub fn parallel_with<F: Fn(&Ctx<'_>) + Sync>(&self, active: usize, f: F) {
        self.parallel_region(active, None, f);
    }

    /// Forks a parallel region with `token` attached: every worksharing
    /// loop of the region polls the token at its chunk boundaries (alongside
    /// the region-local [`Ctx::cancel`] flag), and explicit tasks observe it
    /// through [`Ctx::is_cancelled`] — so cancelling the token, or its
    /// deadline passing, stops the region within one chunk of work per
    /// thread. Inspect [`Ctx::cancel_reason`] (or the token itself) after
    /// the region to learn whether and why it stopped early.
    pub fn parallel_with_token<F: Fn(&Ctx<'_>) + Sync>(
        &self,
        active: usize,
        token: &CancelToken,
        f: F,
    ) {
        self.parallel_region(active, Some(token.clone()), f);
    }

    fn parallel_region<F: Fn(&Ctx<'_>) + Sync>(
        &self,
        active: usize,
        token: Option<CancelToken>,
        f: F,
    ) {
        assert!(
            (1..=self.inner.num_threads).contains(&active),
            "active thread count {active} outside 1..={}",
            self.inner.num_threads
        );
        assert!(
            !self.inner.in_region.swap(true, Ordering::Acquire),
            "nested parallel regions are not supported"
        );
        let region = Region::new(active, token);
        let run = |tid: usize| {
            if tid < active {
                let _span = tpm_trace::span("forkjoin-region");
                // Busy time covers the whole region body on this thread;
                // barrier waits inside are counted separately and can be
                // subtracted by consumers that want pure compute time.
                let started = std::time::Instant::now();
                let ctx = Ctx::new(&self.inner, &region, tid);
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                    region.store_panic(p);
                    region.desert(tid);
                }
                self.inner
                    .stats
                    .worker(tid)
                    .busy_ns
                    .add(started.elapsed().as_nanos() as u64);
            }
        };
        if self.inner.num_threads == 1 {
            run(0);
        } else {
            let done = CountLatch::new(self.inner.num_threads - 1);
            {
                let wide: &(dyn Fn(usize) + Sync) = &run;
                // SAFETY: lifetime erasure — we block on `done` (decremented
                // by every worker after it finishes with the job) before
                // `run`, `region` or `done` go out of scope.
                let job = Job {
                    func: unsafe {
                        std::mem::transmute::<
                            *const (dyn Fn(usize) + Sync),
                            *const (dyn Fn(usize) + Sync + 'static),
                        >(wide as *const _)
                    },
                    done: &done,
                };
                let mut g = self.inner.state.lock();
                g.generation += 1;
                g.job = Some(job);
                drop(g);
                self.inner.cv.notify_all();
                run(0);
                done.wait();
                self.inner.state.lock().job = None;
            }
        }
        self.inner.in_region.store(false, Ordering::Release);
        if let Some(p) = region.take_panic() {
            resume_unwind(p);
        }
    }

    /// One-shot data-parallel loop over `range` on `active` threads.
    pub fn parallel_for(
        &self,
        active: usize,
        schedule: Schedule,
        range: Range<usize>,
        body: impl Fn(usize) + Sync,
    ) {
        self.parallel_with(active, |ctx| {
            ctx.ws_for(schedule, range.clone(), &body);
        });
    }

    /// One-shot chunk-level data-parallel loop.
    pub fn parallel_for_chunks(
        &self,
        active: usize,
        schedule: Schedule,
        range: Range<usize>,
        body: impl Fn(Range<usize>) + Sync,
    ) {
        self.parallel_with(active, |ctx| {
            ctx.ws_for_chunks(schedule, range.clone(), &body);
        });
    }

    /// Data-parallel reduction (`reduction` clause): each thread accumulates
    /// into a private view per chunk; views merge in thread order.
    pub fn parallel_for_reduce<T, Id, Op>(
        &self,
        active: usize,
        schedule: Schedule,
        range: Range<usize>,
        identity: Id,
        combine: Op,
        body: impl Fn(Range<usize>, &mut T) + Sync,
    ) -> T
    where
        T: Send,
        Id: Fn() -> T + Sync + Send,
        Op: Fn(T, T) -> T + Sync + Send,
    {
        let reducer = Reducer::new(active, identity, combine);
        self.parallel_with(active, |ctx| {
            ctx.ws_for_chunks(schedule, range.clone(), |chunk| {
                reducer.with(ctx.thread_num(), |acc| body(chunk, acc));
            });
        });
        reducer.finish()
    }
}

impl Drop for Team {
    fn drop(&mut self) {
        {
            let mut g = self.inner.state.lock();
            g.shutdown = true;
            g.generation += 1;
        }
        self.inner.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("num_threads", &self.inner.num_threads)
            .finish()
    }
}

fn worker_loop(inner: &TeamInner, tid: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut g = inner.state.lock();
            loop {
                if g.shutdown {
                    return;
                }
                if g.generation > seen {
                    break;
                }
                // Between regions workers sleep on the condvar; each wait
                // episode is a park for utilization accounting.
                inner.stats.worker(tid).parks.inc();
                g = inner.cv.wait(g);
            }
            seen = g.generation;
            g.job
        };
        if let Some(job) = job {
            // SAFETY: the master keeps `func` alive until we decrement `done`.
            let func = unsafe { &*job.func };
            // The region wrapper already catches panics from user code; this
            // outer catch only guards runtime bugs from killing the worker.
            let _ = catch_unwind(AssertUnwindSafe(|| func(tid)));
            unsafe { &*job.done }.decrement();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn local_victims_follow_the_worker_to_cpu_mapping() {
        // Two nodes of two CPUs each; workers map to CPUs as tid % cpus.
        let topo = NumaTopology::parse_spec("0-1;2-3").unwrap();
        assert_eq!(local_victims_for(&topo, 0, 4), vec![1]);
        assert_eq!(local_victims_for(&topo, 2, 4), vec![3]);
        // Oversubscription wraps: tid 4 lands on CPU 0 (node 0) alongside
        // workers 0, 1, and 5.
        assert_eq!(local_victims_for(&topo, 4, 6), vec![0, 1, 5]);
        // A worker with no same-node peer gets an empty list (the steal
        // loop then falls back to uniform selection).
        assert_eq!(local_victims_for(&topo, 2, 3), Vec::<usize>::new());
    }

    #[test]
    fn region_runs_on_all_threads() {
        let team = Team::new(4);
        let hits = AtomicU64::new(0);
        team.parallel(|ctx| {
            assert!(ctx.thread_num() < 4);
            assert_eq!(ctx.num_threads(), 4);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.into_inner(), 4);
    }

    #[test]
    fn regions_are_reusable() {
        let team = Team::new(3);
        let hits = AtomicU64::new(0);
        for _ in 0..50 {
            team.parallel(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.into_inner(), 150);
    }

    #[test]
    fn subset_regions() {
        let team = Team::new(4);
        for active in 1..=4 {
            let hits = AtomicU64::new(0);
            team.parallel_with(active, |ctx| {
                assert_eq!(ctx.num_threads(), active);
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.into_inner(), active as u64);
        }
    }

    #[test]
    fn single_thread_team_runs_inline() {
        let team = Team::new(1);
        let mut x = 0; // captured by reference: proves inline execution
        team.parallel(|_| {
            // Fn closure: use interior mutability.
        });
        x += 1;
        assert_eq!(x, 1);
    }

    #[test]
    fn ws_for_covers_all_iterations_all_schedules() {
        let team = Team::new(4);
        for schedule in [
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(3) },
            Schedule::Dynamic { chunk: 5 },
            Schedule::Guided { min_chunk: 2 },
            Schedule::Auto,
        ] {
            let flags: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
            team.parallel(|ctx| {
                ctx.ws_for(schedule, 0..257, |i| {
                    flags[i].fetch_add(1, Ordering::Relaxed);
                });
            });
            for (i, f) in flags.iter().enumerate() {
                assert_eq!(
                    f.load(Ordering::Relaxed),
                    1,
                    "iteration {i} under {schedule:?}"
                );
            }
        }
    }

    #[test]
    fn consecutive_dynamic_loops_in_one_region() {
        let team = Team::new(4);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.ws_for(Schedule::Dynamic { chunk: 3 }, 0..100, |_| {
                a.fetch_add(1, Ordering::Relaxed);
            });
            ctx.ws_for(Schedule::Dynamic { chunk: 7 }, 0..50, |_| {
                b.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(a.into_inner(), 100);
        assert_eq!(b.into_inner(), 50);
    }

    #[test]
    fn barrier_orders_phases() {
        let team = Team::new(4);
        let phase1 = AtomicU64::new(0);
        team.parallel(|ctx| {
            phase1.fetch_add(1, Ordering::Relaxed);
            ctx.barrier();
            assert_eq!(phase1.load(Ordering::Relaxed), 4);
        });
    }

    #[test]
    fn single_runs_once_with_barrier() {
        let team = Team::new(4);
        let runs = AtomicU64::new(0);
        let observers = AtomicU64::new(0);
        team.parallel(|ctx| {
            let r = ctx.single(|| {
                runs.fetch_add(1, Ordering::Relaxed);
                42
            });
            // After the implicit barrier, everyone sees the single done.
            assert_eq!(runs.load(Ordering::Relaxed), 1);
            if r == Some(42) {
                observers.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(runs.into_inner(), 1);
        assert_eq!(observers.into_inner(), 1);
    }

    #[test]
    fn single_still_elects_after_dynamic_loops() {
        // Regression: `single` must keep its own construct sequence; a
        // preceding dynamic worksharing loop advances the loop sequence and
        // previously starved every `single` claimant.
        let team = Team::new(3);
        let runs = AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.ws_for(Schedule::Dynamic { chunk: 4 }, 0..40, |_| {});
            ctx.single(|| {
                runs.fetch_add(1, Ordering::Relaxed);
            });
            ctx.ws_for(Schedule::Guided { min_chunk: 2 }, 0..40, |_| {});
            ctx.single(|| {
                runs.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(runs.into_inner(), 2);
    }

    #[test]
    fn master_runs_on_thread_zero() {
        let team = Team::new(3);
        let who = AtomicU64::new(u64::MAX);
        team.parallel(|ctx| {
            ctx.master(|| who.store(ctx.thread_num() as u64, Ordering::Relaxed));
        });
        assert_eq!(who.into_inner(), 0);
    }

    #[test]
    fn critical_is_mutually_exclusive() {
        struct Wrap(std::cell::UnsafeCell<u64>);
        unsafe impl Sync for Wrap {}
        let team = Team::new(4);
        let w = Wrap(std::cell::UnsafeCell::new(0u64));
        let w = &w; // capture the Sync wrapper, not the cell field
        team.parallel(|ctx| {
            for _ in 0..1000 {
                ctx.critical(|| unsafe { *w.0.get() += 1 });
            }
        });
        assert_eq!(unsafe { *w.0.get() }, 4000);
    }

    #[test]
    fn parallel_for_reduce_sums() {
        let team = Team::new(4);
        let total = team.parallel_for_reduce(
            4,
            Schedule::static_default(),
            0..10_000,
            || 0u64,
            |a, b| a + b,
            |chunk, acc| {
                for i in chunk {
                    *acc += i as u64;
                }
            },
        );
        assert_eq!(total, (0..10_000u64).sum());
    }

    #[test]
    fn panic_in_region_propagates() {
        let team = Team::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            team.parallel(|ctx| {
                if ctx.thread_num() == 1 {
                    panic!("boom in region");
                }
            });
        }));
        assert!(r.is_err());
        // Team still usable afterwards.
        let hits = AtomicU64::new(0);
        team.parallel(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.into_inner(), 2);
    }

    #[test]
    fn panic_before_barrier_does_not_deadlock_region() {
        // Regression: a thread panicking *before* it arrives at a barrier
        // used to strand its siblings in `Barrier::wait` forever (the panic
        // was recorded, but the barrier still expected its arrival).
        // `Region::desert` resigns the dead thread so survivors' phases
        // complete at reduced width.
        let team = Team::new(4);
        let survivors = AtomicU64::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            team.parallel(|ctx| {
                if ctx.thread_num() == 1 {
                    panic!("dies before the barrier");
                }
                ctx.barrier();
                ctx.barrier();
                survivors.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(r.is_err());
        assert_eq!(survivors.into_inner(), 3, "survivors finish the region");
        // The team is reusable at full width afterwards.
        let hits = AtomicU64::new(0);
        team.parallel(|ctx| {
            hits.fetch_add(1, Ordering::Relaxed);
            ctx.barrier();
        });
        assert_eq!(hits.into_inner(), 4);
    }

    #[test]
    fn panic_outside_loop_does_not_strand_ws_siblings() {
        // Same desertion path, but the survivors are inside a worksharing
        // loop's implicit trailing barrier when the death happens.
        let team = Team::new(3);
        let done = AtomicU64::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            team.parallel(|ctx| {
                if ctx.thread_num() == 2 {
                    panic!("dies without ever joining the loop");
                }
                ctx.ws_for(Schedule::Dynamic { chunk: 8 }, 0..100, |_| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(r.is_err());
        // Fail-fast semantics: once the region is poisoned, survivors skip
        // remaining chunks — the point is that they *return* (no deadlock),
        // not that they finish the loop.
        assert!(done.into_inner() <= 100);
    }

    #[test]
    #[should_panic(expected = "nested parallel regions")]
    fn nested_parallel_panics() {
        let team = Team::new(2);
        team.parallel(|_| {
            team.parallel(|_| {});
        });
    }

    #[test]
    fn parallel_for_helper() {
        let team = Team::new(3);
        let flags: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        team.parallel_for(3, Schedule::static_default(), 0..100, |i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }
}

#[cfg(test)]
mod cancel_tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sections_each_run_once() {
        let team = Team::new(3);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let c = AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.sections(&[
                &|| {
                    a.fetch_add(1, Ordering::Relaxed);
                },
                &|| {
                    b.fetch_add(1, Ordering::Relaxed);
                },
                &|| {
                    c.fetch_add(1, Ordering::Relaxed);
                },
            ]);
        });
        assert_eq!(a.into_inner(), 1);
        assert_eq!(b.into_inner(), 1);
        assert_eq!(c.into_inner(), 1);
    }

    #[test]
    fn cancel_stops_worksharing_early() {
        // A dynamic loop where the first chunk cancels: far fewer than all
        // iterations run, and the region exits cleanly.
        let team = Team::new(2);
        let executed = AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.ws_for_chunks(Schedule::Dynamic { chunk: 1 }, 0..1_000_000, |chunk| {
                executed.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                ctx.cancel();
            });
            assert!(ctx.is_cancelled());
        });
        // Each thread runs at most one chunk past the flag.
        assert!(executed.into_inner() <= 4);
    }

    #[test]
    fn token_cancel_stops_worksharing_and_reports_reason() {
        let team = Team::new(2);
        let token = CancelToken::new();
        let executed = AtomicU64::new(0);
        team.parallel_with_token(2, &token, |ctx| {
            ctx.ws_for_chunks(Schedule::Dynamic { chunk: 1 }, 0..1_000_000, |chunk| {
                executed.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                token.cancel();
            });
            assert_eq!(ctx.cancel_reason(), Some(CancelReason::Cancelled));
        });
        assert!(executed.into_inner() <= 4);
        // The team is fully reusable afterwards; a fresh region sees a fresh
        // (absent) token.
        let done = AtomicU64::new(0);
        team.parallel(|ctx| {
            assert!(!ctx.is_cancelled());
            ctx.ws_for(Schedule::static_default(), 0..10, |_| {
                done.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(done.into_inner(), 10);
    }

    #[test]
    fn expired_deadline_token_skips_the_loop() {
        let team = Team::new(2);
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let executed = AtomicU64::new(0);
        team.parallel_with_token(2, &token, |ctx| {
            ctx.ws_for(Schedule::static_default(), 0..1000, |_| {
                executed.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(
                ctx.cancel_reason(),
                Some(CancelReason::DeadlineExpired),
                "deadline expiry must be distinguishable from explicit cancel"
            );
        });
        assert_eq!(
            executed.into_inner(),
            0,
            "no chunk may start past the deadline"
        );
    }

    #[test]
    fn cancellation_is_per_region() {
        let team = Team::new(2);
        team.parallel(|ctx| {
            ctx.cancel();
        });
        let done = AtomicU64::new(0);
        team.parallel(|ctx| {
            assert!(!ctx.is_cancelled(), "fresh region must not be cancelled");
            ctx.ws_for(Schedule::static_default(), 0..10, |_| {
                done.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(done.into_inner(), 10);
    }
}
