//! OpenMP-style lock API (`omp_lock_t` / `omp_nest_lock_t`) — Table III's
//! "locks, critical, atomic, single, master" row.
//!
//! OpenMP locks are *unstructured* (`set`/`unset` pairs rather than RAII
//! guards), so these are implemented directly on atomics. As in OpenMP,
//! `unset` must be called by the thread that holds the lock; the nest lock
//! enforces this and panics on misuse (where OpenMP would be undefined).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use tpm_sync::Backoff;

/// `omp_lock_t`: a plain (non-reentrant) lock.
///
/// # Examples
///
/// ```
/// use tpm_forkjoin::OmpLock;
///
/// let lock = OmpLock::new();
/// lock.set(); // omp_set_lock
/// assert!(!lock.test()); // omp_test_lock fails while held
/// lock.unset(); // omp_unset_lock
/// assert!(lock.test());
/// lock.unset();
/// ```
#[derive(Debug, Default)]
pub struct OmpLock {
    locked: AtomicBool,
}

impl OmpLock {
    /// `omp_init_lock`.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }

    /// `omp_set_lock`: blocks until acquired.
    pub fn set(&self) {
        let backoff = Backoff::new();
        let mut contended = false;
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                if contended {
                    tpm_trace::record(tpm_trace::EventKind::LockContended, 0, 0);
                }
                tpm_trace::record(tpm_trace::EventKind::LockAcquire, 0, 0);
                return;
            }
            contended = true;
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
        }
    }

    /// `omp_unset_lock`: releases. Panics if not held.
    pub fn unset(&self) {
        assert!(
            self.locked.swap(false, Ordering::Release),
            "omp_unset_lock on an unheld lock"
        );
    }

    /// `omp_test_lock`: acquires and returns true if it was free.
    pub fn test(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Structured alternative: run `f` while holding the lock.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.set();
        // Release even if `f` panics.
        struct Unset<'a>(&'a OmpLock);
        impl Drop for Unset<'_> {
            fn drop(&mut self) {
                self.0.unset();
            }
        }
        let _u = Unset(self);
        f()
    }
}

fn nest_thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// `omp_nest_lock_t`: a reentrant lock — the holding thread may `set` it
/// repeatedly; it releases when `unset` calls balance.
#[derive(Debug, Default)]
pub struct OmpNestLock {
    /// 0 = free, otherwise the holder's thread id.
    owner: AtomicU64,
    /// Nesting depth; written only by the holder.
    depth: AtomicUsize,
}

impl OmpNestLock {
    /// `omp_init_nest_lock`.
    pub const fn new() -> Self {
        Self {
            owner: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
        }
    }

    /// `omp_set_nest_lock`: blocks until acquired (re-entering if this
    /// thread already holds it). Returns the new nesting depth.
    pub fn set(&self) -> usize {
        let me = nest_thread_id();
        if self.owner.load(Ordering::Relaxed) == me {
            return self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        }
        let backoff = Backoff::new();
        while self
            .owner
            .compare_exchange_weak(0, me, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff.snooze();
        }
        self.depth.store(1, Ordering::Relaxed);
        1
    }

    /// `omp_test_nest_lock`: non-blocking `set`; returns the new depth, or
    /// 0 if another thread holds the lock.
    pub fn test(&self) -> usize {
        let me = nest_thread_id();
        if self.owner.load(Ordering::Relaxed) == me {
            return self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        }
        if self
            .owner
            .compare_exchange(0, me, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.depth.store(1, Ordering::Relaxed);
            1
        } else {
            0
        }
    }

    /// `omp_unset_nest_lock`. Panics if the caller does not hold the lock.
    pub fn unset(&self) {
        let me = nest_thread_id();
        assert_eq!(
            self.owner.load(Ordering::Relaxed),
            me,
            "omp_unset_nest_lock by a non-holder"
        );
        let prev = self.depth.fetch_sub(1, Ordering::Relaxed);
        assert!(prev >= 1, "omp_unset_nest_lock underflow");
        if prev == 1 {
            self.owner.store(0, Ordering::Release);
        }
    }

    /// Current nesting depth as seen by the caller (0 = not held by caller).
    pub fn depth(&self) -> usize {
        if self.owner.load(Ordering::Relaxed) == nest_thread_id() {
            self.depth.load(Ordering::Relaxed)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omp_lock_excludes() {
        let lock = OmpLock::new();
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = &lock;
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..2_000 {
                        lock.set();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.unset();
                    }
                });
            }
        });
        assert_eq!(counter.into_inner(), 8_000);
    }

    #[test]
    #[should_panic(expected = "unheld")]
    fn unset_without_set_panics() {
        OmpLock::new().unset();
    }

    #[test]
    fn with_releases_on_panic() {
        let lock = OmpLock::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lock.with(|| panic!("inside"));
        }));
        assert!(r.is_err());
        assert!(lock.test(), "lock must be free after the panic");
        lock.unset();
    }

    #[test]
    fn nest_lock_reenters_and_balances() {
        let lock = OmpNestLock::new();
        assert_eq!(lock.set(), 1);
        assert_eq!(lock.set(), 2);
        assert_eq!(lock.test(), 3);
        assert_eq!(lock.depth(), 3);
        lock.unset();
        lock.unset();
        assert_eq!(lock.depth(), 1);
        lock.unset();
        assert_eq!(lock.depth(), 0);
    }

    #[test]
    fn nest_lock_excludes_other_threads() {
        let lock = OmpNestLock::new();
        lock.set();
        std::thread::scope(|s| {
            let lock = &lock;
            s.spawn(move || {
                assert_eq!(lock.test(), 0, "held by another thread");
            });
        });
        lock.unset();
    }

    #[test]
    fn nest_unset_by_non_holder_panics() {
        let lock = OmpNestLock::new();
        lock.set();
        std::thread::scope(|s| {
            let lock = &lock;
            let h = s.spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| lock.unset())).is_err()
            });
            assert!(h.join().unwrap(), "non-holder unset must panic");
        });
        assert_eq!(lock.depth(), 1, "lock must still be held by this thread");
        lock.unset();
    }

    #[test]
    fn nest_lock_contended_counting() {
        let lock = OmpNestLock::new();
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = &lock;
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        lock.set();
                        lock.set(); // nested
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        lock.unset();
                        lock.unset();
                    }
                });
            }
        });
        assert_eq!(counter.into_inner(), 4_000);
    }
}
