//! Task dependencies — OpenMP's `depend(in/out/inout)` clause, the
//! data/event-driven cell of the paper's Table I for OpenMP (and the subject
//! of the authors' own prior work, cited as [12] in the paper).
//!
//! Dependencies are expressed against *slots* (standing in for the clause's
//! list items, i.e. variables). The ordering rules are OpenMP's:
//!
//! * a task reading a slot (`in`) waits for the previous writer;
//! * a task writing a slot (`out`/`inout`) waits for the previous writer
//!   *and* all readers since that writer;
//! * ordering is with respect to *spawn order*, as in OpenMP, where
//!   dependences relate sibling tasks in their creation order.
//!
//! Waiting is cooperative: a task blocked on a dependence executes other
//! queued tasks (the scheduler never idles a thread on an unmet dependence),
//! so progress is guaranteed — the depended-on sibling is either queued
//! (executable by the waiter) or running on another thread.

use std::sync::Arc;

use tpm_sync::{Backoff, CountLatch};

use crate::tasking::TaskScope;
use crate::team::Ctx;

/// A dependence object (one `depend` list item). Create one per logical
/// variable with [`DepTracker::slot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepToken(usize);

/// Per-slot synchronization state.
#[derive(Debug)]
struct Slot {
    /// Completion latch of the last spawned writer (count 1 while running).
    last_writer: Arc<CountLatch>,
    /// Outstanding readers spawned since the last writer.
    readers: Arc<CountLatch>,
}

impl Default for Slot {
    fn default() -> Self {
        Self {
            last_writer: Arc::new(CountLatch::new(0)),
            readers: Arc::new(CountLatch::new(0)),
        }
    }
}

/// Tracks dependence slots for one spawning task (OpenMP: the generating
/// task's scope). Not `Sync`: all `spawn_dep` calls come from the spawning
/// thread, as OpenMP sibling dependences do.
#[derive(Debug, Default)]
pub struct DepTracker {
    slots: Vec<Slot>,
}

impl DepTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new dependence object (a `depend` list item).
    pub fn slot(&mut self) -> DepToken {
        self.slots.push(Slot::default());
        DepToken(self.slots.len() - 1)
    }

    /// Spawns a task with dependences on `scope`: it runs only after the
    /// tasks its `reads`/`writes` relate it to (per OpenMP's rules) have
    /// completed.
    pub fn spawn_dep<'c, 'a, F>(
        &mut self,
        scope: &TaskScope<'c, 'a>,
        reads: &[DepToken],
        writes: &[DepToken],
        f: F,
    ) where
        F: for<'b> FnOnce(&Ctx<'b>) + Send + 'c,
    {
        // Gather what this task must wait for (clone the Arcs: the slots may
        // be re-armed for later siblings).
        let mut wait_writers: Vec<Arc<CountLatch>> = Vec::new();
        let mut wait_readers: Vec<Arc<CountLatch>> = Vec::new();
        for &DepToken(i) in reads {
            wait_writers.push(Arc::clone(&self.slots[i].last_writer));
        }
        for &DepToken(i) in writes {
            wait_writers.push(Arc::clone(&self.slots[i].last_writer));
            wait_readers.push(Arc::clone(&self.slots[i].readers));
        }
        // Register what this task provides. A token in both lists (inout)
        // registers as a writer only: its write opens a new epoch, and
        // registering the read against the *previous* epoch would make the
        // task wait on itself.
        let mut my_completions: Vec<Arc<CountLatch>> = Vec::new();
        for t @ &DepToken(i) in reads {
            if writes.contains(t) {
                continue;
            }
            self.slots[i].readers.increment(1);
            my_completions.push(Arc::clone(&self.slots[i].readers));
        }
        for &DepToken(i) in writes {
            // New writer epoch: fresh writer latch, fresh reader set.
            let w = Arc::new(CountLatch::new(1));
            self.slots[i].last_writer = Arc::clone(&w);
            self.slots[i].readers = Arc::new(CountLatch::new(0));
            my_completions.push(w);
        }
        scope.spawn(move |ctx| {
            // Wait for dependences, helping with other tasks meanwhile.
            let backoff = Backoff::new();
            let ready = |ls: &[Arc<CountLatch>]| ls.iter().all(|l| l.probe());
            while !(ready(&wait_writers) && ready(&wait_readers)) {
                if ctx.execute_one_task() {
                    backoff.reset();
                } else {
                    backoff.snooze();
                }
            }
            f(ctx);
            for c in &my_completions {
                c.decrement();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// out → in → in → out chain: the classic flow dependence.
    #[test]
    fn writer_before_readers_before_next_writer() {
        let team = Team::new(4);
        let log = Mutex::new(Vec::new());
        team.parallel(|ctx| {
            ctx.single(|| {
                ctx.task_scope(|s| {
                    let mut deps = DepTracker::new();
                    let x = deps.slot();
                    let log = &log;
                    deps.spawn_dep(s, &[], &[x], move |_| log.lock().unwrap().push("w1"));
                    deps.spawn_dep(s, &[x], &[], move |_| log.lock().unwrap().push("r"));
                    deps.spawn_dep(s, &[x], &[], move |_| log.lock().unwrap().push("r"));
                    deps.spawn_dep(s, &[], &[x], move |_| log.lock().unwrap().push("w2"));
                });
            });
        });
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), 4);
        assert_eq!(log[0], "w1", "{log:?}");
        assert_eq!(log[3], "w2", "{log:?}");
        assert_eq!(&log[1..3], &["r", "r"], "{log:?}");
    }

    /// Independent slots run unordered; a task depending on both joins them.
    #[test]
    fn join_dependence() {
        let team = Team::new(4);
        let a_done = AtomicU64::new(0);
        let b_done = AtomicU64::new(0);
        let joined = AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.single(|| {
                ctx.task_scope(|s| {
                    let mut deps = DepTracker::new();
                    let a = deps.slot();
                    let b = deps.slot();
                    let (a_done, b_done, joined) = (&a_done, &b_done, &joined);
                    deps.spawn_dep(s, &[], &[a], move |_| {
                        a_done.store(1, Ordering::Release);
                    });
                    deps.spawn_dep(s, &[], &[b], move |_| {
                        b_done.store(1, Ordering::Release);
                    });
                    deps.spawn_dep(s, &[a, b], &[], move |_| {
                        assert_eq!(a_done.load(Ordering::Acquire), 1);
                        assert_eq!(b_done.load(Ordering::Acquire), 1);
                        joined.store(1, Ordering::Release);
                    });
                });
            });
        });
        assert_eq!(joined.into_inner(), 1);
    }

    /// A dependent pipeline computes the right value through a chain of
    /// inout tasks.
    #[test]
    fn inout_chain_accumulates_in_order() {
        let team = Team::new(3);
        let value = AtomicU64::new(1);
        team.parallel(|ctx| {
            ctx.single(|| {
                ctx.task_scope(|s| {
                    let mut deps = DepTracker::new();
                    let x = deps.slot();
                    let value = &value;
                    for k in 2..=6u64 {
                        // inout: reads and writes the slot.
                        deps.spawn_dep(s, &[x], &[x], move |_| {
                            // value = value * k, dependent on the previous step.
                            let v = value.load(Ordering::Acquire);
                            value.store(v * k, Ordering::Release);
                        });
                    }
                });
            });
        });
        assert_eq!(value.into_inner(), 720, "1*2*3*4*5*6 in spawn order");
    }

    /// Single-threaded team: cooperative waiting must still make progress
    /// (the blocked task executes its dependence inline).
    #[test]
    fn no_deadlock_on_one_thread() {
        let team = Team::new(1);
        let log = Mutex::new(Vec::new());
        team.parallel(|ctx| {
            ctx.task_scope(|s| {
                let mut deps = DepTracker::new();
                let x = deps.slot();
                let log = &log;
                deps.spawn_dep(s, &[], &[x], move |_| log.lock().unwrap().push(1));
                deps.spawn_dep(s, &[x], &[], move |_| log.lock().unwrap().push(2));
            });
        });
        assert_eq!(log.into_inner().unwrap(), vec![1, 2]);
    }
}
