//! Worksharing loop schedules: how a `parallel for` distributes iterations.
//!
//! The paper's data-parallel OpenMP versions use worksharing with the
//! *static* schedule ("OpenMP static schedule is applied to all the three
//! models for data parallelism"); *dynamic* and *guided* are provided for the
//! `ablation_schedule` bench. Static assignment is computed locally by each
//! thread with zero coordination — the reason the paper finds worksharing
//! cheaper than work stealing for uniform data parallelism.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A loop schedule, mirroring OpenMP's `schedule(...)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Iterations divided into contiguous blocks, one per thread
    /// (`schedule(static)`), or round-robin blocks of `chunk` when given
    /// (`schedule(static, chunk)`).
    Static {
        /// Optional fixed chunk size; `None` means one block per thread.
        chunk: Option<usize>,
    },
    /// Threads grab `chunk`-sized blocks from a shared counter
    /// (`schedule(dynamic, chunk)`).
    Dynamic {
        /// Block size grabbed per fetch; must be ≥ 1.
        chunk: usize,
    },
    /// Exponentially decreasing blocks, at least `min_chunk`
    /// (`schedule(guided, min_chunk)`).
    Guided {
        /// Lower bound on the block size.
        min_chunk: usize,
    },
    /// Picked per loop from the range size and team width
    /// (`schedule(auto)`) — see [`Schedule::resolve`].
    Auto,
}

impl Schedule {
    /// The paper's default for all data-parallel comparisons.
    pub const fn static_default() -> Self {
        Schedule::Static { chunk: None }
    }

    /// Resolves [`Auto`](Schedule::Auto) to a concrete schedule for a loop
    /// of `len` iterations on `num_threads` threads; concrete schedules pass
    /// through unchanged.
    ///
    /// Heuristic: ranges with at least 64 iterations per thread take the
    /// static schedule — the per-thread blocks are large enough that
    /// uniform-cost imbalance is negligible, and static costs zero
    /// coordination. Shorter ranges, where per-iteration cost is more
    /// likely to dominate and imbalance bites, take the dynamic schedule
    /// with a chunk sized for about four grabs per thread.
    pub fn resolve(self, len: usize, num_threads: usize) -> Schedule {
        let Schedule::Auto = self else {
            return self;
        };
        let n = num_threads.max(1);
        if len >= n * 64 {
            Schedule::Static { chunk: None }
        } else {
            Schedule::Dynamic {
                chunk: len.div_ceil(n * 4).max(1),
            }
        }
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Self::static_default()
    }
}

/// Yields the chunks thread `tid` of `num_threads` executes under
/// `schedule(static)` semantics for the iteration space `range`.
///
/// With `chunk = None`, iterations are split into `num_threads` contiguous
/// blocks whose sizes differ by at most one (the first `len % num_threads`
/// blocks get the extra iteration — OpenMP's usual static partition).
/// With `chunk = Some(c)`, blocks of `c` are dealt round-robin.
pub fn static_chunks(
    range: Range<usize>,
    tid: usize,
    num_threads: usize,
    chunk: Option<usize>,
) -> Vec<Range<usize>> {
    debug_assert!(tid < num_threads);
    let len = range.len();
    match chunk {
        None => {
            let base = len / num_threads;
            let extra = len % num_threads;
            let (start, size) = if tid < extra {
                (tid * (base + 1), base + 1)
            } else {
                (extra * (base + 1) + (tid - extra) * base, base)
            };
            if size == 0 {
                Vec::new()
            } else {
                let s = range.start + start;
                // One contiguous block per thread (a Vec for signature
                // uniformity with the chunked schedule).
                std::iter::once(s..s + size).collect()
            }
        }
        Some(c) => {
            let c = c.max(1);
            let mut out = Vec::new();
            let mut start = range.start + tid * c;
            while start < range.end {
                out.push(start..(start + c).min(range.end));
                start += num_threads * c;
            }
            out
        }
    }
}

/// Shared state for one dynamic/guided worksharing loop.
///
/// One instance is active per team at a time (worksharing constructs end with
/// an implicit barrier), so a single slot in the region state suffices.
#[derive(Debug)]
pub struct LoopCounter {
    next: AtomicUsize,
    end: usize,
}

impl LoopCounter {
    /// Creates a counter over `range`.
    pub fn new(range: Range<usize>) -> Self {
        Self {
            next: AtomicUsize::new(range.start),
            end: range.end,
        }
    }

    /// Claims the next `chunk` iterations (dynamic schedule); `None` when the
    /// loop is exhausted.
    pub fn next_dynamic(&self, chunk: usize) -> Option<Range<usize>> {
        let chunk = chunk.max(1);
        let start = self.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= self.end {
            return None;
        }
        Some(start..(start + chunk).min(self.end))
    }

    /// Claims up to `max_batch` consecutive `chunk`-sized blocks in *one*
    /// shared-counter transaction (dynamic schedule with batching). The
    /// caller serves the returned range thread-locally in `chunk`-sized
    /// pieces, so `max_batch` blocks cost one RMW instead of `max_batch`.
    ///
    /// The batch decays toward a single chunk near the end of the range: at
    /// most a `1/(2·num_threads)` share of the remaining blocks is claimed,
    /// so even if every other thread stalls right after this claim, tail
    /// imbalance stays bounded the way plain `schedule(dynamic)` bounds it.
    /// An exhausted counter is detected with a plain load — the terminal
    /// probe does not pay for an RMW.
    pub fn next_dynamic_batch(
        &self,
        chunk: usize,
        num_threads: usize,
        max_batch: usize,
    ) -> Option<Range<usize>> {
        let chunk = chunk.max(1);
        let seen = self.next.load(Ordering::Relaxed);
        if seen >= self.end {
            return None;
        }
        let blocks_left = (self.end - seen).div_ceil(chunk);
        let batch = (blocks_left / (2 * num_threads.max(1))).clamp(1, max_batch.max(1));
        let start = self.next.fetch_add(batch * chunk, Ordering::Relaxed);
        if start >= self.end {
            return None;
        }
        Some(start..(start + batch * chunk).min(self.end))
    }

    /// Claims the next guided block: `remaining / num_threads`, clamped below
    /// by `min_chunk` (OpenMP's guided schedule).
    ///
    /// `min_chunk` is honored for *every* block: when claiming the clamped
    /// size would strand a tail smaller than `min_chunk`, the block absorbs
    /// the tail instead (so the final block may reach `2·min_chunk − 1`).
    /// Without the absorption the floor silently failed on the last trip —
    /// e.g. 13 remaining with `min_chunk = 8` used to split 8 + 5.
    pub fn next_guided(&self, num_threads: usize, min_chunk: usize) -> Option<Range<usize>> {
        let min_chunk = min_chunk.max(1);
        loop {
            let start = self.next.load(Ordering::Relaxed);
            if start >= self.end {
                return None;
            }
            let remaining = self.end - start;
            let base = (remaining / num_threads.max(1)).max(min_chunk);
            let size = if remaining - base.min(remaining) < min_chunk {
                remaining
            } else {
                base
            };
            if self
                .next
                .compare_exchange_weak(start, start + size, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Some(start..start + size);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_exact_cover(chunks: &[Range<usize>], range: Range<usize>) {
        let mut seen = HashSet::new();
        for c in chunks {
            for i in c.clone() {
                assert!(seen.insert(i), "iteration {i} covered twice");
            }
        }
        assert_eq!(seen.len(), range.len());
        for i in range {
            assert!(seen.contains(&i), "iteration {i} not covered");
        }
    }

    #[test]
    fn static_block_partition_covers_exactly() {
        for n in [1, 2, 3, 7, 16] {
            for len in [0usize, 1, 5, 16, 100, 101] {
                let all: Vec<_> = (0..n)
                    .flat_map(|tid| static_chunks(10..10 + len, tid, n, None))
                    .collect();
                assert_exact_cover(&all, 10..10 + len);
            }
        }
    }

    #[test]
    fn static_block_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..7)
            .map(|tid| {
                static_chunks(0..100, tid, 7, None)
                    .iter()
                    .map(|c| c.len())
                    .sum()
            })
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn static_chunked_is_round_robin() {
        let c0 = static_chunks(0..10, 0, 2, Some(2));
        let c1 = static_chunks(0..10, 1, 2, Some(2));
        assert_eq!(c0, vec![0..2, 4..6, 8..10]);
        assert_eq!(c1, vec![2..4, 6..8]);
    }

    #[test]
    fn static_chunked_covers_exactly() {
        for n in [1, 2, 5] {
            for chunk in [1, 3, 64] {
                let all: Vec<_> = (0..n)
                    .flat_map(|tid| static_chunks(0..97, tid, n, Some(chunk)))
                    .collect();
                assert_exact_cover(&all, 0..97);
            }
        }
    }

    #[test]
    fn dynamic_counter_covers_exactly() {
        let c = LoopCounter::new(0..100);
        let mut chunks = Vec::new();
        while let Some(r) = c.next_dynamic(7) {
            chunks.push(r);
        }
        assert_exact_cover(&chunks, 0..100);
    }

    #[test]
    fn dynamic_counter_concurrent_cover() {
        let c = LoopCounter::new(0..10_000);
        let collected = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(r) = c.next_dynamic(13) {
                        local.push(r);
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        assert_exact_cover(&collected.into_inner().unwrap(), 0..10_000);
    }

    #[test]
    fn guided_chunks_shrink() {
        let c = LoopCounter::new(0..1000);
        let mut sizes = Vec::new();
        while let Some(r) = c.next_guided(4, 8) {
            sizes.push(r.len());
        }
        // Non-increasing (single-threaded claim order), except that the
        // final block may absorb a sub-min_chunk tail and grow by up to
        // min_chunk − 1.
        for w in sizes[..sizes.len() - 1].windows(2) {
            assert!(w[0] >= w[1], "{sizes:?}");
        }
        // The min_chunk floor holds for *every* block, tail included.
        for &s in &sizes {
            assert!(s >= 8, "{sizes:?}");
        }
        assert!(*sizes.last().unwrap() < 16, "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn guided_final_chunk_honors_min_chunk() {
        // Regression: 13 remaining with min_chunk 8 used to split 8 + 5,
        // handing out a 5-iteration block below the requested floor.
        let c = LoopCounter::new(0..13);
        assert_eq!(c.next_guided(4, 8), Some(0..13));
        assert_eq!(c.next_guided(4, 8), None);
        // A range below min_chunk is one (short) block — nothing to honor.
        let c = LoopCounter::new(0..5);
        assert_eq!(c.next_guided(4, 8), Some(0..5));
    }

    #[test]
    fn dynamic_batch_covers_exactly_with_fewer_claims() {
        let c = LoopCounter::new(0..10_000);
        let mut chunks = Vec::new();
        let mut claims = 0usize;
        while let Some(batch) = c.next_dynamic_batch(13, 4, 8) {
            claims += 1;
            let mut start = batch.start;
            while start < batch.end {
                let piece = start..(start + 13).min(batch.end);
                start = piece.end;
                chunks.push(piece);
            }
        }
        assert_exact_cover(&chunks, 0..10_000);
        // 770 chunks of 13; batching must claim far fewer transactions.
        assert!(claims < 300, "claims = {claims}");
    }

    #[test]
    fn dynamic_batch_concurrent_cover() {
        let c = LoopCounter::new(0..9_973);
        let collected = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(r) = c.next_dynamic_batch(7, 4, 8) {
                        local.push(r);
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        assert_exact_cover(&collected.into_inner().unwrap(), 0..9_973);
    }

    #[test]
    fn auto_schedule_resolution() {
        // Wide range: static. Short range: dynamic with a ~len/4n chunk.
        assert_eq!(
            Schedule::Auto.resolve(10_000, 4),
            Schedule::Static { chunk: None }
        );
        assert_eq!(
            Schedule::Auto.resolve(100, 4),
            Schedule::Dynamic { chunk: 7 }
        );
        assert_eq!(Schedule::Auto.resolve(0, 4), Schedule::Dynamic { chunk: 1 });
        // Concrete schedules pass through untouched.
        assert_eq!(
            Schedule::Guided { min_chunk: 3 }.resolve(10, 2),
            Schedule::Guided { min_chunk: 3 }
        );
    }

    #[test]
    fn guided_concurrent_cover() {
        let c = LoopCounter::new(0..5000);
        let collected = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(r) = c.next_guided(4, 4) {
                        local.push(r);
                    }
                    collected.lock().unwrap().extend(local);
                });
            }
        });
        assert_exact_cover(&collected.into_inner().unwrap(), 0..5000);
    }

    #[test]
    fn empty_range_yields_nothing() {
        assert!(static_chunks(5..5, 0, 4, None).is_empty());
        let c = LoopCounter::new(5..5);
        assert!(c.next_dynamic(4).is_none());
        assert!(c.next_dynamic_batch(4, 2, 8).is_none());
        assert!(c.next_guided(4, 1).is_none());
    }
}
