//! Explicit tasks over lock-based deques — the `omp task` / `taskwait`
//! analogue.
//!
//! The paper singles out this design point: "the workstealing for omp task in
//! Intel compiler uses lock-based deque for pushing, popping and stealing
//! tasks in the deque, which increases more contention and overhead than the
//! workstealing protocol in Cilk Plus". Accordingly, every deque operation
//! here goes through [`tpm_sync::LockedDeque`]'s lock; the lock-free
//! counterpart lives in `tpm-worksteal`. The `ablation_deque` bench compares
//! the two directly.
//!
//! Two scheduling disciplines, after the paper's §III-B: *work-first* (tasks
//! execute in depth-first LIFO order at scheduling points) and
//! *breadth-first* (tasks are created eagerly and drained in FIFO order).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use tpm_sync::CountLatch;

use crate::team::Ctx;

/// Task-scheduling discipline for a team (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskMode {
    /// Depth-first: at scheduling points a thread pops its own newest task
    /// (LIFO), approximating work-first execution ("tasks are executed once
    /// they are created").
    WorkFirst,
    /// Breadth-first: tasks drain in creation (FIFO) order, approximating
    /// "all tasks are first created" before execution.
    BreadthFirst,
}

/// A raw pointer made `Send` for captured completion latches. Validity is
/// guaranteed by the scope protocol (the referent outlives every task).
struct SendPtr<T>(*const T);
// SAFETY: see above; the pointee is a sync latch.
unsafe impl<T: Sync> Send for SendPtr<T> {}

/// An erased, queued task. The closure receives the *executing* thread's
/// region context, so tasks can spawn nested tasks from whichever thread
/// steals them.
pub(crate) struct TaskRef {
    func: Box<dyn for<'b> FnOnce(&Ctx<'b>) + Send>,
}

impl TaskRef {
    pub(crate) fn execute(self, ctx: &Ctx<'_>) {
        (self.func)(ctx);
    }
}

/// A structured task scope: spawned tasks are guaranteed complete when the
/// scope returns (the `taskwait` at scope end is implicit).
pub struct TaskScope<'c, 'a> {
    ctx: &'c Ctx<'a>,
    latch: CountLatch,
}

impl<'c, 'a> TaskScope<'c, 'a> {
    /// Spawns a task (`#pragma omp task`). It may execute on any thread of
    /// the region, and may borrow anything that outlives the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'b> FnOnce(&Ctx<'b>) + Send + 'c,
    {
        self.latch.increment(1);
        let latch = SendPtr::<CountLatch>(&self.latch);
        let wrapper = move |ctx: &Ctx<'_>| {
            // Capture the whole SendPtr, not the raw pointer field (2021
            // disjoint capture would otherwise defeat the Send wrapper).
            let latch = latch;
            // Injected task faults run inside this containment layer, so the
            // latch below always completes: a dropped task surfaces as a
            // contained panic (observable, never silent), not a hang.
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
                match tpm_fault::probe(tpm_fault::Site::TaskExec) {
                    tpm_fault::Action::Panic => {
                        tpm_fault::injected_panic(tpm_fault::Site::TaskExec)
                    }
                    tpm_fault::Action::TaskDrop => {
                        tpm_fault::injected_drop(tpm_fault::Site::TaskExec)
                    }
                    _ => {}
                }
                f(ctx)
            })) {
                ctx.store_region_panic(p);
            }
            // SAFETY: the scope (and its latch) cannot be dropped until this
            // decrement: `run_task_scope` blocks on the latch.
            unsafe { &*latch.0 }.decrement();
        };
        let boxed: Box<dyn for<'b> FnOnce(&Ctx<'b>) + Send + 'c> = Box::new(wrapper);
        // SAFETY: lifetime erasure, justified by the latch protocol above —
        // no task outlives the scope that borrowed its environment.
        let boxed: Box<dyn for<'b> FnOnce(&Ctx<'b>) + Send + 'static> =
            unsafe { std::mem::transmute(boxed) };
        self.ctx.stats().spawned.inc();
        self.ctx.push_task(TaskRef { func: boxed });
    }

    /// Explicit `taskwait`: blocks until every task spawned so far in this
    /// scope has completed, executing queued tasks while waiting.
    pub fn wait_all(&self) {
        drain(self.ctx, &self.latch);
    }

    /// The context of the thread that opened the scope.
    pub fn ctx(&self) -> &'c Ctx<'a> {
        self.ctx
    }
}

fn drain(ctx: &Ctx<'_>, latch: &CountLatch) {
    // Latch completion has no unpark path, so the shared idle policy runs in
    // its no-park mode.
    let idle = ctx.idle_strategy();
    while !latch.probe() {
        if ctx.execute_one_task() {
            idle.reset();
        } else {
            idle.snooze_no_park();
        }
    }
}

pub(crate) fn run_task_scope<'c, 'a, R>(
    ctx: &'c Ctx<'a>,
    f: impl FnOnce(&TaskScope<'c, 'a>) -> R,
) -> R {
    let scope = TaskScope {
        ctx,
        latch: CountLatch::new(0),
    };
    // Even if `f` panics, spawned tasks still borrow the enclosing stack and
    // must finish before we unwind through it.
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    drain(ctx, &scope.latch);
    // A panic from a *task* stays parked in the region and is re-raised by
    // `Team::parallel*` after the join — unwinding it here, mid-region, would
    // strand sibling threads at the region's barriers (the OpenMP equivalent
    // is undefined behaviour; deferring is the well-defined version).
    match result {
        Ok(r) => r,
        Err(p) => resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Team;
    use crate::TeamConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn tasks_all_execute() {
        let team = Team::new(4);
        let hits = AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.single(|| {
                ctx.task_scope(|s| {
                    for _ in 0..100 {
                        s.spawn(|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        });
        assert_eq!(hits.into_inner(), 100);
    }

    #[test]
    fn tasks_execute_in_breadth_first_mode_too() {
        let team = Team::with_config(
            4,
            TeamConfig {
                task_mode: TaskMode::BreadthFirst,
                ..TeamConfig::default()
            },
        );
        let hits = AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.single(|| {
                ctx.task_scope(|s| {
                    for _ in 0..100 {
                        s.spawn(|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        });
        assert_eq!(hits.into_inner(), 100);
    }

    #[test]
    fn tasks_can_borrow_and_mutate_disjoint_stack_data() {
        let team = Team::new(4);
        let mut results = vec![0u64; 16];
        {
            // Hand the &mut slots into the region through a take-once cell
            // (the region closure itself is `Fn`, so it cannot hold `&mut`).
            let slots = std::sync::Mutex::new(Some(results.iter_mut().collect::<Vec<_>>()));
            team.parallel_with(4, |ctx| {
                ctx.single(|| {
                    let slots = slots.lock().unwrap().take().unwrap();
                    ctx.task_scope(|s| {
                        for (i, slot) in slots.into_iter().enumerate() {
                            s.spawn(move |_| *slot = i as u64 * 2);
                        }
                    });
                });
            });
        }
        assert_eq!(results, (0..16).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_task_spawning() {
        // fib(12) via recursive tasks spawned from whichever thread executes.
        fn fib(ctx: &Ctx<'_>, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let mut a = 0;
            let mut b = 0;
            ctx.task_scope(|s| {
                s.spawn(|c| a = fib(c, n - 1));
                b = fib(ctx, n - 2);
            });
            a + b
        }
        let team = Team::new(4);
        let out = AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.single(|| {
                out.store(fib(ctx, 12), Ordering::Relaxed);
            });
        });
        assert_eq!(out.into_inner(), 144);
    }

    #[test]
    fn wait_all_is_a_scheduling_point() {
        let team = Team::new(2);
        let stage1 = AtomicU64::new(0);
        let stage2 = AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.single(|| {
                ctx.task_scope(|s| {
                    for _ in 0..10 {
                        s.spawn(|_| {
                            stage1.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    s.wait_all();
                    assert_eq!(stage1.load(Ordering::Relaxed), 10);
                    for _ in 0..5 {
                        s.spawn(|_| {
                            stage2.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        });
        assert_eq!(stage1.into_inner(), 10);
        assert_eq!(stage2.into_inner(), 5);
    }

    #[test]
    fn task_panic_propagates_out_of_region() {
        let team = Team::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            team.parallel(|ctx| {
                ctx.single(|| {
                    ctx.task_scope(|s| {
                        s.spawn(|_| panic!("task boom"));
                    });
                });
            });
        }));
        assert!(r.is_err());
    }

    #[test]
    fn tasks_are_stolen_by_idle_threads() {
        // All tasks spawned by thread 0; with 4 threads and slow tasks, the
        // stats must show at least one steal.
        let team = Team::new(4);
        team.parallel(|ctx| {
            ctx.single(|| {
                ctx.task_scope(|s| {
                    for _ in 0..64 {
                        s.spawn(|_| {
                            std::hint::black_box((0..5_000).sum::<u64>());
                        });
                    }
                });
            });
        });
        let snap = team.stats().snapshot();
        assert_eq!(snap.spawned, 64);
        assert_eq!(snap.executed, 64);
    }

    #[test]
    fn work_first_runs_own_tasks_lifo() {
        // Single-threaded team: spawn a, b, c; they must run c, b, a.
        let team = Team::new(1);
        let order = std::sync::Mutex::new(Vec::new());
        team.parallel(|ctx| {
            ctx.task_scope(|s| {
                for i in 0..3 {
                    let order = &order;
                    s.spawn(move |_| order.lock().unwrap().push(i));
                }
            });
        });
        assert_eq!(order.into_inner().unwrap(), vec![2, 1, 0]);
    }

    #[test]
    fn breadth_first_runs_own_tasks_fifo() {
        let team = Team::with_config(
            1,
            TeamConfig {
                task_mode: TaskMode::BreadthFirst,
                ..TeamConfig::default()
            },
        );
        let order = std::sync::Mutex::new(Vec::new());
        team.parallel(|ctx| {
            ctx.task_scope(|s| {
                for i in 0..3 {
                    let order = &order;
                    s.spawn(move |_| order.lock().unwrap().push(i));
                }
            });
        });
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2]);
    }
}
