//! `par_for` — the `cilk_for` analogue: a data-parallel loop executed by
//! recursive binary splitting over the work-stealing scheduler.
//!
//! This is the construct whose behaviour drives the paper's headline finding
//! (Figs. 1–4, 6): "workstealing operations in Cilk Plus serialize the
//! distributions of loop chunks among threads, thus incurring more overhead
//! than worksharing". The mechanism: a `cilk_for` loop body reaches other
//! workers only by being *stolen*, one split at a time, so distributing `p`
//! chunks costs a chain of `O(log p)` (and under contention effectively
//! serialized) steal transactions — where OpenMP static worksharing costs
//! zero coordination. The recursive splitting below reproduces exactly that
//! distribution path.

use std::ops::Range;

use tpm_sync::{CancelReason, CancelToken};

use crate::join::join;
use crate::runtime::WorkerCtx;

/// Grain-size policy for [`par_for`] (cilk_for's grainsize pragma).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grain {
    /// Adaptive: `max(1, ceil(N / 8P))` — about eight leaves per worker, so
    /// there is enough parallel slack for stealing but the leaf count (and
    /// with it spawn/steal traffic) stays proportional to `P`, not `N`.
    Auto,
    /// Fixed iterations per leaf (a *minimum*: the depth cap below can make
    /// leaves coarser on huge ranges).
    Fixed(usize),
}

impl Grain {
    /// Resolves to a concrete leaf size for a loop of `len` on `workers`.
    pub fn resolve(self, len: usize, workers: usize) -> usize {
        match self {
            Grain::Auto => len.div_ceil(8 * workers.max(1)).max(1),
            Grain::Fixed(g) => g.max(1),
        }
    }
}

/// Recursion budget for splitting: allows ~256·P leaves before splitting
/// stops regardless of grain, so a tiny `Fixed` grain on a huge range cannot
/// explode into millions of tasks (or exhaust the stack).
fn depth_cap(workers: usize) -> u32 {
    (usize::BITS - workers.max(1).leading_zeros()) + 8
}

/// Data-parallel loop over `range`: recursively splits until chunks reach the
/// grain size, running `body` on each chunk.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use tpm_worksteal::{par_for, Grain, Runtime};
///
/// let rt = Runtime::new(4);
/// let sum = AtomicU64::new(0);
/// rt.install(|ctx| {
///     par_for(ctx, 0..1000, Grain::Auto, &|chunk| {
///         sum.fetch_add(chunk.map(|i| i as u64).sum(), Ordering::Relaxed);
///     });
/// });
/// assert_eq!(sum.into_inner(), (0..1000).sum());
/// ```
pub fn par_for<F>(ctx: &WorkerCtx<'_>, range: Range<usize>, grain: Grain, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    let g = grain.resolve(range.len(), ctx.num_workers());
    split_run(ctx, range, g, depth_cap(ctx.num_workers()), None, body);
}

/// [`par_for`] with cooperative cancellation: `token` is polled before every
/// split and every leaf, on whichever worker picked the piece up — so once
/// the token fires (explicit cancel or deadline), no further leaf starts and
/// the loop returns within one grain of work per worker. Leaves that already
/// ran are not undone; the error reports why the loop stopped.
///
/// # Examples
///
/// ```
/// use tpm_sync::{CancelReason, CancelToken};
/// use tpm_worksteal::{par_for_cancel, Grain, Runtime};
///
/// let rt = Runtime::new(2);
/// let token = CancelToken::new();
/// let r = rt.install(|ctx| {
///     par_for_cancel(ctx, 0..1_000_000, Grain::Fixed(1), &token, &|_chunk| {
///         token.cancel(); // first leaf gives up
///     })
/// });
/// assert_eq!(r, Err(CancelReason::Cancelled));
/// assert_eq!(rt.install(|_| 1), 1); // runtime fully usable afterwards
/// ```
pub fn par_for_cancel<F>(
    ctx: &WorkerCtx<'_>,
    range: Range<usize>,
    grain: Grain,
    token: &CancelToken,
    body: &F,
) -> Result<(), CancelReason>
where
    F: Fn(Range<usize>) + Sync,
{
    let g = grain.resolve(range.len(), ctx.num_workers());
    split_run(
        ctx,
        range,
        g,
        depth_cap(ctx.num_workers()),
        Some(token),
        body,
    );
    token.check()
}

fn split_run<F>(
    ctx: &WorkerCtx<'_>,
    range: Range<usize>,
    grain: usize,
    depth: u32,
    cancel: Option<&CancelToken>,
    body: &F,
) where
    F: Fn(Range<usize>) + Sync,
{
    // Polled on the executing worker at every node of the splitting tree:
    // leaves stop within one grain, and interior nodes stop spawning — the
    // whole remaining subtree is abandoned in O(depth) checks.
    if cancel.is_some_and(CancelToken::is_cancelled) {
        return;
    }
    if range.len() <= grain || depth == 0 {
        // An injected panic here unwinds into the enclosing join's
        // containment (StackJob stores the payload and completes its latch),
        // so faults surface as the scope's re-raised panic, never a hang.
        match tpm_fault::probe(tpm_fault::Site::ChunkClaim) {
            tpm_fault::Action::Panic => tpm_fault::injected_panic(tpm_fault::Site::ChunkClaim),
            tpm_fault::Action::TaskDrop => tpm_fault::injected_drop(tpm_fault::Site::ChunkClaim),
            _ => {}
        }
        ctx.stats().chunks.inc();
        tpm_trace::record(tpm_trace::EventKind::ChunkDispatch, range.len() as u64, 0);
        body(range);
        return;
    }
    let mid = range.start + range.len() / 2;
    let (left, right) = (range.start..mid, mid..range.end);
    join(
        ctx,
        move |c| split_run(c, left, grain, depth - 1, cancel, body),
        move |c| split_run(c, right, grain, depth - 1, cancel, body),
    );
}

/// Chunk-level loop where the body also receives the executing worker's
/// context (needed for reductions and nested parallelism).
pub fn par_for_ctx<F>(ctx: &WorkerCtx<'_>, range: Range<usize>, grain: Grain, body: &F)
where
    F: for<'c> Fn(&WorkerCtx<'c>, Range<usize>) + Sync,
{
    let g = grain.resolve(range.len(), ctx.num_workers());
    split_run_ctx(ctx, range, g, depth_cap(ctx.num_workers()), None, body);
}

/// [`par_for_ctx`] with cooperative cancellation — the ctx-passing analogue
/// of [`par_for_cancel`], used by cancellable reductions.
pub fn par_for_ctx_cancel<F>(
    ctx: &WorkerCtx<'_>,
    range: Range<usize>,
    grain: Grain,
    token: &CancelToken,
    body: &F,
) -> Result<(), CancelReason>
where
    F: for<'c> Fn(&WorkerCtx<'c>, Range<usize>) + Sync,
{
    let g = grain.resolve(range.len(), ctx.num_workers());
    split_run_ctx(
        ctx,
        range,
        g,
        depth_cap(ctx.num_workers()),
        Some(token),
        body,
    );
    token.check()
}

fn split_run_ctx<F>(
    ctx: &WorkerCtx<'_>,
    range: Range<usize>,
    grain: usize,
    depth: u32,
    cancel: Option<&CancelToken>,
    body: &F,
) where
    F: for<'c> Fn(&WorkerCtx<'c>, Range<usize>) + Sync,
{
    if cancel.is_some_and(CancelToken::is_cancelled) {
        return;
    }
    if range.len() <= grain || depth == 0 {
        match tpm_fault::probe(tpm_fault::Site::ChunkClaim) {
            tpm_fault::Action::Panic => tpm_fault::injected_panic(tpm_fault::Site::ChunkClaim),
            tpm_fault::Action::TaskDrop => tpm_fault::injected_drop(tpm_fault::Site::ChunkClaim),
            _ => {}
        }
        ctx.stats().chunks.inc();
        tpm_trace::record(tpm_trace::EventKind::ChunkDispatch, range.len() as u64, 0);
        body(ctx, range);
        return;
    }
    let mid = range.start + range.len() / 2;
    let (left, right) = (range.start..mid, mid..range.end);
    join(
        ctx,
        move |c| split_run_ctx(c, left, grain, depth - 1, cancel, body),
        move |c| split_run_ctx(c, right, grain, depth - 1, cancel, body),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn grain_resolution() {
        assert_eq!(Grain::Fixed(10).resolve(1000, 4), 10);
        assert_eq!(Grain::Fixed(0).resolve(1000, 4), 1);
        assert_eq!(Grain::Auto.resolve(64, 4), 2);
        // Uncapped: leaf size scales with N so the leaf *count* stays ~8P.
        assert_eq!(Grain::Auto.resolve(10_000_000, 4), 312_500);
        assert_eq!(Grain::Auto.resolve(0, 4), 1);
    }

    #[test]
    fn depth_cap_bounds_leaf_count() {
        let rt = Runtime::new(2);
        rt.stats().reset();
        let total = AtomicU64::new(0);
        rt.install(|ctx| {
            // Grain 1 over 100k iterations would be 100k leaves without the
            // depth cap; the cap bounds it to 2^depth_cap(2) = 1024.
            par_for(ctx, 0..100_000, Grain::Fixed(1), &|chunk| {
                total.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.into_inner(), 100_000, "still covers every iteration");
        let chunks = rt.stats().snapshot().chunks;
        assert!(chunks <= 1 << depth_cap(2), "chunks = {chunks}");
        assert!(chunks >= 512, "cap should not over-coarsen: {chunks}");
    }

    #[test]
    fn covers_every_iteration_exactly_once() {
        let rt = Runtime::new(4);
        let flags: Vec<AtomicU64> = (0..1003).map(|_| AtomicU64::new(0)).collect();
        rt.install(|ctx| {
            par_for(ctx, 0..1003, Grain::Fixed(16), &|chunk| {
                for i in chunk {
                    flags[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        for (i, f) in flags.iter().enumerate() {
            assert_eq!(f.load(Ordering::Relaxed), 1, "iteration {i}");
        }
    }

    #[test]
    fn empty_and_tiny_ranges() {
        let rt = Runtime::new(2);
        let hits = AtomicU64::new(0);
        rt.install(|ctx| {
            par_for(ctx, 5..5, Grain::Auto, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            par_for(ctx, 7..8, Grain::Auto, &|chunk| {
                assert_eq!(chunk, 7..8);
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        // The empty range still invokes the body once with an empty chunk.
        assert!(hits.into_inner() >= 1);
    }
}
