//! Structured task scopes — the general `cilk_spawn`…`cilk_sync` form for an
//! arbitrary number of children.

use std::any::Any;
use std::panic::resume_unwind;

use tpm_sync::{CountLatch, SpinLock};

use crate::job::HeapJob;
use crate::runtime::{harness_panic, WorkerCtx};

/// A spawn scope: every task spawned through it completes before
/// [`scope`] returns (the implicit `cilk_sync`).
pub struct Scope<'s, 'w> {
    ctx: &'s WorkerCtx<'w>,
    latch: CountLatch,
    panic: SpinLock<Option<Box<dyn Any + Send>>>,
}

/// A raw pointer made `Send`; validity guaranteed by the scope protocol.
struct SendPtr<T>(*const T);
// SAFETY: the referent is Sync and outlives all users (latch protocol).
unsafe impl<T: Sync> Send for SendPtr<T> {}

impl<'s, 'w> Scope<'s, 'w> {
    /// Spawns a task. It may run on any worker and borrow anything that
    /// outlives the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'c> FnOnce(&WorkerCtx<'c>) + Send + 's,
    {
        self.latch.increment(1);
        let latch = SendPtr::<CountLatch>(&self.latch);
        let panic = SendPtr::<SpinLock<Option<Box<dyn Any + Send>>>>(&self.panic);
        let wrapper = move |ctx: &WorkerCtx<'_>| {
            let latch = latch;
            let panic = panic;
            // SAFETY: scope waits on the latch before dropping, so both
            // referents are alive here.
            harness_panic(unsafe { &*panic.0 }, || {
                // Injected task faults run inside the harness: the latch
                // below always decrements, so a dropped task is a contained,
                // observable panic — never a hang or silent omission.
                match tpm_fault::probe(tpm_fault::Site::TaskExec) {
                    tpm_fault::Action::Panic => {
                        tpm_fault::injected_panic(tpm_fault::Site::TaskExec)
                    }
                    tpm_fault::Action::TaskDrop => {
                        tpm_fault::injected_drop(tpm_fault::Site::TaskExec)
                    }
                    _ => {}
                }
                f(ctx)
            });
            unsafe { &*latch.0 }.decrement();
        };
        let boxed: Box<dyn for<'c> FnOnce(&WorkerCtx<'c>) + Send + 's> = Box::new(wrapper);
        // SAFETY: lifetime erasure backed by the latch protocol — the scope
        // cannot end (and the borrowed environment cannot drop) before every
        // spawned task decremented the latch.
        let boxed: Box<dyn for<'c> FnOnce(&WorkerCtx<'c>) + Send + 'static> =
            unsafe { std::mem::transmute(boxed) };
        self.ctx
            .push(HeapJob::into_job_ref(move |ctx: &WorkerCtx<'_>| boxed(ctx)));
    }

    /// The spawning worker's context.
    pub fn ctx(&self) -> &'s WorkerCtx<'w> {
        self.ctx
    }

    /// Explicit mid-scope sync: waits for all tasks spawned so far,
    /// executing queued work while waiting.
    pub fn wait_all(&self) {
        self.ctx.wait_until(|| self.latch.probe());
    }
}

/// Opens a scope on the current worker: `f` may spawn tasks through it; all
/// of them (including transitively spawned ones) complete before `scope`
/// returns. The first panic from any task is re-raised here.
///
/// # Examples
///
/// ```
/// use tpm_worksteal::{scope, Runtime};
/// use std::sync::atomic::{AtomicU32, Ordering};
///
/// let rt = Runtime::new(4);
/// let hits = AtomicU32::new(0);
/// rt.install(|ctx| {
///     scope(ctx, |s| {
///         for _ in 0..16 {
///             s.spawn(|_| { hits.fetch_add(1, Ordering::Relaxed); });
///         }
///     });
/// });
/// assert_eq!(hits.into_inner(), 16);
/// ```
pub fn scope<'w, R>(ctx: &WorkerCtx<'w>, f: impl FnOnce(&Scope<'_, 'w>) -> R) -> R {
    let s = Scope {
        ctx,
        latch: CountLatch::new(0),
        panic: SpinLock::new(None),
    };
    // If `f` itself panics, spawned tasks still borrow this frame: drain
    // before unwinding.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&s)));
    ctx.wait_until(|| s.latch.probe());
    if let Some(p) = s.panic.lock().take() {
        resume_unwind(p);
    }
    match result {
        Ok(r) => r,
        Err(p) => resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spawned_tasks_all_run() {
        let rt = Runtime::new(4);
        let hits = AtomicU64::new(0);
        rt.install(|ctx| {
            scope(ctx, |s| {
                for _ in 0..200 {
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(hits.into_inner(), 200);
    }

    #[test]
    fn tasks_mutate_disjoint_borrowed_slots() {
        let rt = Runtime::new(4);
        let mut data = vec![0u64; 64];
        rt.install(|ctx| {
            let slots: Vec<&mut u64> = data.iter_mut().collect();
            scope(ctx, |s| {
                for (i, slot) in slots.into_iter().enumerate() {
                    s.spawn(move |_| *slot = i as u64 + 1);
                }
            });
        });
        assert_eq!(data, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_scopes() {
        let rt = Runtime::new(4);
        let hits = AtomicU64::new(0);
        rt.install(|ctx| {
            scope(ctx, |s| {
                for _ in 0..4 {
                    s.spawn(|ctx2| {
                        scope(ctx2, |s2| {
                            for _ in 0..8 {
                                s2.spawn(|_| {
                                    hits.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
        });
        assert_eq!(hits.into_inner(), 32);
    }

    #[test]
    fn wait_all_synchronizes_mid_scope() {
        let rt = Runtime::new(2);
        let stage = AtomicU64::new(0);
        rt.install(|ctx| {
            scope(ctx, |s| {
                for _ in 0..10 {
                    s.spawn(|_| {
                        stage.fetch_add(1, Ordering::Relaxed);
                    });
                }
                s.wait_all();
                assert_eq!(stage.load(Ordering::Relaxed), 10);
            });
        });
    }

    #[test]
    fn task_panic_propagates_from_scope() {
        let rt = Runtime::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            rt.install(|ctx| {
                scope(ctx, |s| {
                    s.spawn(|_| panic!("scope task boom"));
                });
            })
        }));
        assert!(r.is_err());
        assert_eq!(rt.install(|_| 9), 9);
    }

    #[test]
    fn scope_body_panic_still_drains_tasks() {
        let rt = Runtime::new(2);
        let ran = AtomicU64::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            rt.install(|ctx| {
                scope(ctx, |s| {
                    for _ in 0..8 {
                        s.spawn(|_| {
                            ran.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    panic!("body boom");
                });
            })
        }));
        assert!(r.is_err());
        assert_eq!(ran.into_inner(), 8);
    }
}
