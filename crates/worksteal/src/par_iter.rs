//! Slice-level data-parallel conveniences over the work-stealing scheduler.

use std::mem::MaybeUninit;

use crate::join::join;
use crate::par_for::{par_for, Grain};
use crate::runtime::WorkerCtx;

/// Three-way fork-join (nested [`join`]s).
pub fn join3<RA, RB, RC, A, B, C>(ctx: &WorkerCtx<'_>, a: A, b: B, c: C) -> (RA, RB, RC)
where
    RA: Send,
    RB: Send,
    RC: Send,
    A: FnOnce(&WorkerCtx<'_>) -> RA + Send,
    B: FnOnce(&WorkerCtx<'_>) -> RB + Send,
    C: FnOnce(&WorkerCtx<'_>) -> RC + Send,
{
    let (ra, (rb, rc)) = join(ctx, a, move |ctx| join(ctx, b, c));
    (ra, rb, rc)
}

/// Parallel map: applies `f` to every element of `items`, returning the
/// results in order. Work is distributed by recursive splitting (`cilk_for`
/// style).
///
/// If `f` panics, the panic propagates and already-computed results are
/// leaked (not dropped) — prefer panic-free `f`.
///
/// # Examples
///
/// ```
/// use tpm_worksteal::{par_map, Grain, Runtime};
///
/// let rt = Runtime::new(4);
/// let squares = rt.install(|ctx| par_map(ctx, &[1, 2, 3, 4], Grain::Auto, |&x| x * x));
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(ctx: &WorkerCtx<'_>, items: &[T], grain: Grain, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit needs no initialization; length set before writes
    // so indexes are in-bounds. Every slot is written exactly once below.
    unsafe { out.set_len(n) };
    {
        let out_ptr = SendSlice(out.as_mut_ptr());
        par_for(ctx, 0..n, grain, &move |chunk: std::ops::Range<usize>| {
            let out_ptr = out_ptr;
            for i in chunk {
                // SAFETY: disjoint chunks ⇒ each slot written once, no reads.
                unsafe { out_ptr.0.add(i).write(MaybeUninit::new(f(&items[i]))) };
            }
        });
    }
    // SAFETY: par_for returned without panicking ⇒ all n slots initialized.
    unsafe {
        let mut out = std::mem::ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr() as *mut R, n, out.capacity())
    }
}

/// Raw pointer wrapper so the chunk closure is `Send`/`Sync`; disjointness
/// is guaranteed by the chunking.
struct SendSlice<R>(*mut MaybeUninit<R>);
impl<R> Clone for SendSlice<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SendSlice<R> {}
// SAFETY: see type docs.
unsafe impl<R: Send> Send for SendSlice<R> {}
unsafe impl<R: Send> Sync for SendSlice<R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn join3_returns_all() {
        let rt = Runtime::new(3);
        let (a, b, c) = rt.install(|ctx| join3(ctx, |_| 1, |_| "two", |_| 3.0));
        assert_eq!((a, b, c), (1, "two", 3.0));
    }

    #[test]
    fn par_map_preserves_order() {
        let rt = Runtime::new(4);
        let input: Vec<u64> = (0..5_000).collect();
        let out = rt.install(|ctx| par_map(ctx, &input, Grain::Fixed(64), |&x| x * 2 + 1));
        assert_eq!(out, input.iter().map(|&x| x * 2 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        let rt = Runtime::new(2);
        let empty: Vec<u32> = rt.install(|ctx| par_map(ctx, &[], Grain::Auto, |x: &u32| *x));
        assert!(empty.is_empty());
        let one = rt.install(|ctx| par_map(ctx, &[7], Grain::Auto, |x| x + 1));
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn par_map_non_copy_results() {
        let rt = Runtime::new(2);
        let out = rt.install(|ctx| par_map(ctx, &[1, 2, 3], Grain::Fixed(1), |&x| format!("v{x}")));
        assert_eq!(out, vec!["v1", "v2", "v3"]);
    }

    #[test]
    fn par_map_drops_results_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D(#[allow(dead_code)] usize);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let rt = Runtime::new(2);
        let input: Vec<usize> = (0..100).collect();
        let out = rt.install(|ctx| par_map(ctx, &input, Grain::Fixed(8), |&x| D(x)));
        assert_eq!(out.len(), 100);
        drop(out);
        assert_eq!(DROPS.load(Ordering::Relaxed), 100);
    }
}
