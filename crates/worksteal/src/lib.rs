//! # tpm-worksteal — a Cilk-Plus-like randomized work-stealing runtime
//!
//! One of the three threading runtimes compared by the `threadcmp` workspace
//! (after *Comparison of Threading Programming Models*, 2017). It reproduces
//! the mechanisms the paper attributes to Cilk Plus:
//!
//! * **Per-worker lock-free deques** (Chase–Lev, from `tpm-sync`) with
//!   randomized victim selection — the protocol the paper credits for
//!   `cilk_spawn` beating `omp task` by ~20% (Fig. 5).
//! * **`spawn`/`sync`** as [`join`] (two-way) and [`scope`] (n-way).
//! * **`cilk_for`** as [`par_for`]: recursive lazy splitting, so loop chunks
//!   reach other workers only through steals — the serialization effect
//!   behind `cilk_for`'s poor data-parallel showing (Figs. 1–4, 6).
//! * **Reducer hyperobjects** for parallel reductions ([`par_for_reduce`]).
//!
//! Child stealing is used in place of Cilk's continuation stealing (not
//! expressible in safe Rust); DESIGN.md §2 argues why the measured phenomena
//! are preserved.
//!
//! ```
//! use tpm_worksteal::{join, Runtime};
//!
//! let rt = Runtime::new(4);
//! let (a, b) = rt.install(|ctx| join(ctx, |_| 6 * 7, |_| "hi"));
//! assert_eq!((a, b), (42, "hi"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod job;
mod join;
mod par_for;
mod par_iter;
mod runtime;
mod scope;

pub use join::join;
pub use par_for::{par_for, par_for_cancel, par_for_ctx, par_for_ctx_cancel, Grain};
pub use par_iter::{join3, par_map};
pub use runtime::{Runtime, RuntimeBuilder, WorkerCtx};
pub use scope::{scope, Scope};

use std::ops::Range;
use tpm_sync::Reducer;

/// Data-parallel reduction over the work-stealing scheduler using a reducer
/// hyperobject: each worker accumulates into a private view (keyed by the
/// executing worker), and views merge in worker order.
///
/// # Examples
///
/// ```
/// use tpm_worksteal::{par_for_reduce, Grain, Runtime};
///
/// let rt = Runtime::new(4);
/// let total = rt.install(|ctx| {
///     par_for_reduce(ctx, 0..1000, Grain::Auto, || 0u64, |a, b| a + b, |chunk, acc| {
///         for i in chunk { *acc += i as u64 }
///     })
/// });
/// assert_eq!(total, (0..1000).sum());
/// ```
pub fn par_for_reduce<T, Id, Op, F>(
    ctx: &WorkerCtx<'_>,
    range: Range<usize>,
    grain: Grain,
    identity: Id,
    combine: Op,
    body: F,
) -> T
where
    T: Send,
    Id: Fn() -> T + Send + Sync,
    Op: Fn(T, T) -> T + Send + Sync,
    F: Fn(Range<usize>, &mut T) + Sync,
{
    let reducer = Reducer::new(ctx.num_workers(), identity, combine);
    par_for_ctx(
        ctx,
        range,
        grain,
        &|c: &WorkerCtx<'_>, chunk: Range<usize>| {
            reducer.with(c.index(), |acc| body(chunk.clone(), acc));
        },
    );
    reducer.finish()
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn par_for_reduce_matches_sequential() {
        let rt = Runtime::new(4);
        let total = rt.install(|ctx| {
            par_for_reduce(
                ctx,
                0..10_000,
                Grain::Fixed(64),
                || 0u64,
                |a, b| a + b,
                |chunk, acc| {
                    for i in chunk {
                        *acc += (i as u64) * 3;
                    }
                },
            )
        });
        assert_eq!(total, (0..10_000u64).map(|i| i * 3).sum());
    }

    #[test]
    fn par_for_reduce_non_copy_accumulator() {
        let rt = Runtime::new(2);
        let mut all = rt.install(|ctx| {
            par_for_reduce(
                ctx,
                0..100,
                Grain::Fixed(10),
                Vec::new,
                |mut a, b| {
                    a.extend(b);
                    a
                },
                |chunk, acc: &mut Vec<usize>| acc.extend(chunk),
            )
        });
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
