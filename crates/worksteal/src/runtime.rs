//! The randomized work-stealing runtime (the Cilk Plus analogue).
//!
//! Per the paper (§III-B): "each worker thread has a double-ended queue
//! (deque) to keep list of the tasks. The work-stealing scheduler of a worker
//! pushes and pops tasks from one end of the queue and a thief worker steals
//! tasks from the other end". Here the deque is the lock-free Chase–Lev
//! implementation from `tpm-sync` (contrast with `tpm-forkjoin`'s lock-based
//! task deques), and idle workers back off to timed parking so an idle
//! runtime consumes no CPU.
//!
//! Two hot-path choices keep steal traffic low:
//!
//! * Thieves steal in *batches* (up to half the victim's visible work via
//!   [`Stealer::steal_batch_into`]), so one successful probe feeds several
//!   task executions from the thief's own deque.
//! * Victims are scanned round-robin from a per-worker offset that rotates
//!   every episode, so simultaneous thieves fan out across victims instead
//!   of herding onto the same one (which shows up as `failed` steals in the
//!   profile tables).

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

use tpm_fault::{Action as FaultAction, Site as FaultSite};
use tpm_sync::chase_lev::{self, Stealer, Worker};
use tpm_sync::topology::NumaTopology;
use tpm_sync::{CachePadded, IdleStrategy, LockedDeque, SchedulerStats};

use crate::job::{JobRef, StackJob};

/// Initial deque capacity per worker.
const DEQUE_CAPACITY: usize = 256;
/// Most jobs one steal episode may transfer (the half-of-victim rule caps it
/// further); bounds how much work a single thief can hoard.
const STEAL_BATCH_LIMIT: usize = 32;
/// Timed-park duration while idle (bounds wakeup latency without requiring a
/// loss-free wakeup protocol). The escalation *to* parking is the shared
/// [`IdleStrategy`] policy.
const PARK_INTERVAL: Duration = Duration::from_micros(200);

/// A work-stealing runtime with a fixed set of worker threads.
///
/// External threads submit work with [`install`](Runtime::install); inside,
/// code composes with [`join`](crate::join), [`scope`](crate::scope) and
/// [`par_for`](crate::par_for).
///
/// # Examples
///
/// ```
/// use tpm_worksteal::Runtime;
///
/// let rt = Runtime::new(4);
/// let sum = rt.install(|ctx| {
///     let (a, b) = tpm_worksteal::join(
///         ctx,
///         |_| (0..500u64).sum::<u64>(),
///         |_| (500..1000u64).sum::<u64>(),
///     );
///     a + b
/// });
/// assert_eq!(sum, (0..1000).sum());
/// ```
pub struct Runtime {
    inner: Arc<RuntimeInner>,
    handles: Vec<JoinHandle<()>>,
}

pub(crate) struct RuntimeInner {
    pub(crate) stealers: Vec<Stealer<JobRef>>,
    pub(crate) injector: LockedDeque<JobRef>,
    /// Idle policy (spin rounds, yield rounds) for worker and waiter loops.
    idle: (u32, u32),
    shutdown: AtomicBool,
    /// Number of workers currently in timed park (hint for pushers).
    sleepers: AtomicUsize,
    asleep: Vec<CachePadded<AtomicBool>>,
    /// Worker thread handles for targeted unparking (filled at construction,
    /// slots overwritten when a replacement worker takes an index over).
    threads: tpm_sync::SpinLock<Vec<Thread>>,
    pub(crate) stats: SchedulerStats,
    /// Per-worker victim scan order: same-NUMA-node victims first, remote
    /// nodes after (both segments empty-safe). With NUMA disabled — or one
    /// node — every victim lands in the local segment and the scan is the
    /// classic neighbour-first round-robin.
    victim_plans: Vec<VictimPlan>,
    /// Whether node-aware victim ordering is active (for introspection).
    numa: bool,
    /// Whether workers pin to cores (needed again when respawning).
    pin: bool,
    /// Workers currently alive (shrinks on a death, restored on respawn).
    live: AtomicUsize,
    /// Total workers lost to escaped panics over the runtime's lifetime.
    deaths: AtomicUsize,
    /// Join handles of respawned replacement workers (drained on drop).
    replacements: tpm_sync::SpinLock<Vec<JoinHandle<()>>>,
}

/// Builder for [`Runtime`] — the one place every construction knob lives
/// (worker count, pinning, idle policy), replacing the ad-hoc
/// `Runtime::new` + `TPM_PIN` env-var combination.
///
/// # Examples
///
/// ```
/// use tpm_worksteal::Runtime;
///
/// let rt = Runtime::builder().threads(2).pin(false).build();
/// assert_eq!(rt.num_workers(), 2);
/// ```
#[derive(Debug, Clone)]
#[must_use = "call .build() to create the Runtime"]
pub struct RuntimeBuilder {
    threads: usize,
    pin: bool,
    numa: Option<bool>,
    idle: (u32, u32),
}

impl RuntimeBuilder {
    /// Number of worker threads (default 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Pin worker `i` to core `i % cores` (a no-op on platforms without
    /// `sched_setaffinity`). Defaults to the `TPM_PIN` environment variable.
    pub fn pin(mut self, pin: bool) -> Self {
        self.pin = pin;
        self
    }

    /// Node-aware victim ordering: thieves scan same-NUMA-node victims
    /// before crossing the interconnect (steal intra-socket first — a
    /// remote steal drags the task's working set across sockets). Defaults
    /// to the `TPM_NUMA` environment variable, and with that unset to
    /// "only when pinning is on and the probed topology has multiple
    /// nodes". Workers map to CPUs as `index % cpus`, matching
    /// [`pin`](Self::pin)'s placement.
    pub fn numa(mut self, numa: bool) -> Self {
        self.numa = Some(numa);
        self
    }

    /// Idle escalation policy for worker loops: `spin_rounds` of spinning,
    /// then `yield_rounds` of yielding, then timed parking (see
    /// [`IdleStrategy::new`]). Defaults to the shared
    /// [`IdleStrategy::runtime_default`] budget.
    pub fn idle(mut self, spin_rounds: u32, yield_rounds: u32) -> Self {
        self.idle = (spin_rounds, yield_rounds);
        self
    }

    /// Applies a shared [`tpm_sync::PoolConfig`] wholesale (the family-
    /// registry path: every runtime gets the same knobs).
    pub fn config(mut self, cfg: tpm_sync::PoolConfig) -> Self {
        self.threads = cfg.threads;
        self.pin = cfg.pin;
        self.numa = cfg.numa;
        self.idle = cfg.idle;
        self
    }

    /// Builds the runtime, spawning its workers.
    #[must_use = "dropping the Runtime joins its workers"]
    pub fn build(self) -> Runtime {
        Runtime::with_options(self.threads, self.pin, self.numa, self.idle)
    }
}

impl Runtime {
    /// The construction entry point; see [`RuntimeBuilder`].
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder {
            threads: 1,
            pin: tpm_sync::affinity::pin_from_env(),
            numa: None,
            idle: (
                IdleStrategy::RUNTIME_DEFAULT_SPIN,
                IdleStrategy::RUNTIME_DEFAULT_YIELD,
            ),
        }
    }

    /// Creates a runtime with `num_workers` worker threads (shorthand for
    /// `Runtime::builder().threads(num_workers).build()`). Workers are
    /// pinned to cores when the `TPM_PIN` environment variable is set
    /// (`1`/`true`/`on`); use the builder to decide explicitly.
    pub fn new(num_workers: usize) -> Self {
        Self::builder().threads(num_workers).build()
    }

    /// Creates a runtime, pinning worker `i` to core `i % cores` when `pin`
    /// is true (shorthand for the builder's `pin` knob).
    pub fn with_pinning(num_workers: usize, pin: bool) -> Self {
        Self::builder().threads(num_workers).pin(pin).build()
    }

    fn with_options(num_workers: usize, pin: bool, numa: Option<bool>, idle: (u32, u32)) -> Self {
        assert!(num_workers >= 1, "runtime needs at least one worker");
        let mut workers = Vec::with_capacity(num_workers);
        let mut stealers = Vec::with_capacity(num_workers);
        for _ in 0..num_workers {
            let (w, s) = chase_lev::deque(DEQUE_CAPACITY);
            workers.push(w);
            stealers.push(s);
        }
        let topo = NumaTopology::probe();
        let numa =
            numa.unwrap_or_else(|| tpm_sync::topology::numa_from_env(pin && topo.num_nodes() > 1));
        let inner = Arc::new(RuntimeInner {
            stealers,
            injector: LockedDeque::new(),
            idle,
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            asleep: (0..num_workers)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            threads: tpm_sync::SpinLock::new(Vec::new()),
            stats: SchedulerStats::new(num_workers),
            victim_plans: build_victim_plans(&topo, num_workers, numa),
            numa,
            pin,
            live: AtomicUsize::new(num_workers),
            deaths: AtomicUsize::new(0),
            replacements: tpm_sync::SpinLock::new(Vec::new()),
        });
        let handles: Vec<JoinHandle<()>> = workers
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tpm-worksteal-{index}"))
                    .spawn(move || worker_entry(inner, index, deque))
                    .expect("failed to spawn worker")
            })
            .collect();
        *inner.threads.lock() = handles.iter().map(|h| h.thread().clone()).collect();
        Self { inner, handles }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.inner.stealers.len()
    }

    /// Workers currently alive. Briefly below [`num_workers`] while a dead
    /// worker's replacement is starting; equal again once self-healing
    /// completes.
    ///
    /// [`num_workers`]: Runtime::num_workers
    pub fn live_workers(&self) -> usize {
        self.inner.live.load(Ordering::Acquire)
    }

    /// Total workers lost to escaped panics since construction (each one is
    /// replaced by a respawned thread on the same index).
    pub fn worker_deaths(&self) -> usize {
        self.inner.deaths.load(Ordering::Acquire)
    }

    /// Scheduler event counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.inner.stats
    }

    /// Whether node-aware victim ordering is active (see
    /// [`RuntimeBuilder::numa`]).
    pub fn numa_enabled(&self) -> bool {
        self.inner.numa
    }

    /// Runs `f` on a worker thread, blocking the calling (external) thread
    /// until it — and everything it joined/spawned-and-waited — completes.
    /// Panics inside are re-raised here.
    pub fn install<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&WorkerCtx<'_>) -> R + Send,
    {
        let job = StackJob::new(f);
        // SAFETY: we block on the latch below, so the stack frame outlives
        // the job; the JobRef is queued exactly once.
        unsafe {
            self.inner.inject(job.as_job_ref());
        }
        job.latch.wait();
        job.take_result()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for t in self.inner.threads.lock().iter() {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            // A worker that died and was replaced exited cleanly (its panic
            // was caught in `worker_entry`), so this cannot hang on a dead
            // worker's arrival.
            let _ = h.join();
        }
        // Replacement workers spawned by the self-healing path. A
        // replacement can itself die and push a further replacement, so
        // drain until empty rather than iterating once.
        loop {
            let handle = self.inner.replacements.lock().pop();
            match handle {
                Some(h) => {
                    h.thread().unpark();
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("num_workers", &self.num_workers())
            .finish()
    }
}

/// One worker's precomputed steal-scan order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct VictimPlan {
    /// Victims on this worker's NUMA node, neighbour-first.
    local: Vec<usize>,
    /// Victims on remote nodes, neighbour-first (empty when NUMA-unaware
    /// or single-node: then *every* victim is "local").
    remote: Vec<usize>,
}

/// Precomputes each worker's victim order. Worker `w` notionally occupies
/// CPU `w % cpus` (the same mapping `affinity::pin_current_thread` uses),
/// and scans victims starting from its right neighbour — so `p`
/// simultaneous thieves start at `p` distinct victims — visiting same-node
/// victims before crossing the interconnect.
fn build_victim_plans(topo: &NumaTopology, workers: usize, numa: bool) -> Vec<VictimPlan> {
    let cpus = topo.num_cpus().max(1);
    (0..workers)
        .map(|w| {
            let my_node = topo.node_of_cpu(w % cpus);
            let mut local = Vec::new();
            let mut remote = Vec::new();
            for v in (w + 1..workers).chain(0..w) {
                if numa && topo.node_of_cpu(v % cpus) != my_node {
                    remote.push(v);
                } else {
                    local.push(v);
                }
            }
            VictimPlan { local, remote }
        })
        .collect()
}

impl RuntimeInner {
    /// Queues an external job and wakes a sleeping worker if any.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.push_bottom(job);
        self.wake_one();
    }

    /// Wakes one timed-parked worker (cheap no-op when none sleep).
    pub(crate) fn wake_one(&self) {
        if self.sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        for (i, flag) in self.asleep.iter().enumerate() {
            if flag.swap(false, Ordering::AcqRel) {
                self.sleepers.fetch_sub(1, Ordering::Relaxed);
                if let Some(t) = self.threads.lock().get(i) {
                    t.unpark();
                }
                return;
            }
        }
    }
}

/// The per-worker execution context, passed to every job. All scheduling
/// operations ([`crate::join`], [`crate::scope`], [`crate::par_for`]) take it
/// as their first argument — it identifies the deque to push to.
pub struct WorkerCtx<'w> {
    rt: &'w RuntimeInner,
    index: usize,
    deque: &'w Worker<JobRef>,
    /// First victim of the next steal episode; advances every episode so
    /// concurrent thieves starting from different indices stay fanned out.
    victim_offset: Cell<usize>,
}

impl<'w> WorkerCtx<'w> {
    /// This worker's index in `0..num_workers`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of workers in the runtime.
    pub fn num_workers(&self) -> usize {
        self.rt.stealers.len()
    }

    pub(crate) fn stats(&self) -> &tpm_sync::WorkerStats {
        self.rt.stats.worker(self.index)
    }

    /// Pushes a job onto this worker's deque (it becomes stealable).
    pub(crate) fn push(&self, job: JobRef) {
        self.deque.push(job);
        self.stats().spawned.inc();
        tpm_trace::record(tpm_trace::EventKind::TaskSpawn, 0, 0);
        self.rt.wake_one();
    }

    /// Pops this worker's newest job, if any.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        self.deque.pop()
    }

    /// One steal episode: scan every other worker once — same-NUMA-node
    /// victims first, then remote nodes, each segment round-robin from this
    /// worker's rotating offset — then the injector. `None` if nothing
    /// was found (callers loop, with escalating idle backoff between
    /// episodes — re-sweeping immediately here would only re-probe deques
    /// observed empty microseconds ago).
    ///
    /// A hit transfers a *batch* — up to half the victim's visible jobs, at
    /// most [`STEAL_BATCH_LIMIT`] — into our own deque and returns one of
    /// them; the rest are served by local pops (or stolen onward by others),
    /// so one episode can feed many executions.
    pub(crate) fn steal_work(&self) -> Option<JobRef> {
        // Steal probes can run inside `wait_until` while an unfinished stack
        // job is still queued: unwinding here would free a job a thief may
        // yet execute, so panic rules are inert at this probe (they fire at
        // the worker-loop top level instead, where no such frame exists).
        if tpm_fault::probe_no_panic(FaultSite::StealAttempt) != FaultAction::None {
            self.stats().failed_steals.inc();
            tpm_trace::record(tpm_trace::EventKind::FailedSteal, self.index as u64, 0);
            return None;
        }
        let plan = &self.rt.victim_plans[self.index];
        let start = self.victim_offset.get();
        self.victim_offset.set(start.wrapping_add(1));
        for segment in [&plan.local, &plan.remote] {
            let m = segment.len();
            for k in 0..m {
                let v = segment[(start + k) % m];
                let got = self.rt.stealers[v].steal_batch_into(self.deque, STEAL_BATCH_LIMIT);
                if got > 0 {
                    self.stats().steals.inc();
                    tpm_trace::record(tpm_trace::EventKind::Steal, v as u64, got as u64);
                    // The batch went through our own deque, so the job cannot
                    // be `None` unless another thief raced it away — then the
                    // episode still counts as a hit and the caller retries.
                    if let Some(job) = self.pop() {
                        return Some(job);
                    }
                } else {
                    self.stats().failed_steals.inc();
                    tpm_trace::record(tpm_trace::EventKind::FailedSteal, v as u64, 0);
                }
            }
        }
        self.rt.injector.steal_top()
    }

    /// Executes `job`, counting it.
    pub(crate) fn execute(&self, job: JobRef) {
        self.stats().executed.inc();
        tpm_trace::record(tpm_trace::EventKind::TaskExec, 0, 0);
        job.execute(self);
    }

    /// Works (pop own, then steal) until `probe()` turns true — the heart of
    /// every blocking point (`join`, scope wait).
    pub(crate) fn wait_until(&self, probe: impl Fn() -> bool) {
        // No one unparks a joiner, so the shared idle policy runs in its
        // no-park mode (the park phase degrades to yielding).
        let idle = IdleStrategy::new(self.rt.idle.0, self.rt.idle.1);
        while !probe() {
            if let Some(job) = self.pop().or_else(|| self.steal_work()) {
                self.execute(job);
                idle.reset();
            } else {
                idle.snooze_no_park();
            }
        }
    }
}

impl std::fmt::Debug for WorkerCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("index", &self.index)
            .finish()
    }
}

/// Worker thread entry: pins, then runs [`worker_loop`] under a top-level
/// `catch_unwind`. An escaped panic (nothing in normal operation reaches
/// here — job execution has its own containment — but an injected
/// worker-loop fault does) marks the worker dead and respawns a replacement
/// thread on the same index with the same deque, so queued jobs survive the
/// death and the runtime heals back to full width.
fn worker_entry(inner: Arc<RuntimeInner>, index: usize, deque: Worker<JobRef>) {
    if inner.pin {
        tpm_sync::affinity::pin_current_thread(index);
    }
    let result = catch_unwind(AssertUnwindSafe(|| worker_loop(&inner, index, &deque)));
    if result.is_ok() || inner.shutdown.load(Ordering::Acquire) {
        return;
    }
    // Died mid-panic: clear our sleep flag if set (wake_one must not burn a
    // wakeup on a corpse), account the death, and respawn.
    if inner.asleep[index].swap(false, Ordering::AcqRel) {
        inner.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
    inner.live.fetch_sub(1, Ordering::AcqRel);
    inner.deaths.fetch_add(1, Ordering::AcqRel);
    tpm_trace::record(tpm_trace::EventKind::WorkerDeath, index as u64, 0);
    tpm_trace::record(
        tpm_trace::EventKind::DegradedWidth,
        inner.live.load(Ordering::Relaxed) as u64,
        0,
    );
    let respawned = Arc::clone(&inner);
    match std::thread::Builder::new()
        .name(format!("tpm-worksteal-{index}"))
        .spawn(move || {
            tpm_trace::record(tpm_trace::EventKind::WorkerRespawn, index as u64, 0);
            worker_entry(respawned, index, deque)
        }) {
        Ok(h) => {
            // Point wake_one's slot at the replacement before counting it
            // live, so a waker never unparks the dead thread.
            if let Some(slot) = inner.threads.lock().get_mut(index) {
                *slot = h.thread().clone();
            }
            inner.live.fetch_add(1, Ordering::AcqRel);
            inner.replacements.lock().push(h);
        }
        Err(_) => {
            // Could not spawn a replacement: the runtime stays degraded but
            // alive (remaining workers still drain every queue).
        }
    }
}

fn worker_loop(inner: &RuntimeInner, index: usize, deque: &Worker<JobRef>) {
    let ctx = WorkerCtx {
        rt: inner,
        index,
        deque,
        // The victim plan is already neighbour-first per worker; the offset
        // rotates the scan start within each (local/remote) segment across
        // episodes so repeat thieves fan out.
        victim_offset: Cell::new(0),
    };
    let idle = IdleStrategy::new(inner.idle.0, inner.idle.1);
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        // The one panic-safe steal-site probe: no job-owning frame is on the
        // stack here, so an injected panic exercises the full worker-death +
        // respawn path (caught in `worker_entry`).
        if tpm_fault::probe(FaultSite::StealAttempt) == FaultAction::Panic {
            tpm_fault::injected_panic(FaultSite::StealAttempt);
        }
        if let Some(job) = ctx.pop().or_else(|| ctx.steal_work()) {
            // Busy time is measured around top-level jobs only: nested jobs
            // run inside this span (via join/wait), so timing them again
            // would double-count — and per-task clocks would be too hot.
            let started = std::time::Instant::now();
            ctx.execute(job);
            inner
                .stats
                .worker(index)
                .busy_ns
                .add(started.elapsed().as_nanos() as u64);
            idle.reset();
            continue;
        }
        if idle.snooze() {
            // Timed park: flag ourselves asleep so pushers can unpark us;
            // the timeout bounds the cost of any lost wakeup.
            inner.stats.worker(index).parks.inc();
            inner.asleep[index].store(true, Ordering::Release);
            inner.sleepers.fetch_add(1, Ordering::Relaxed);
            std::thread::park_timeout(PARK_INTERVAL);
            if inner.asleep[index].swap(false, Ordering::AcqRel) {
                inner.sleepers.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Runs `f` with panic containment, recording any payload into `slot` (first
/// panic wins). Shared by the scope machinery.
pub(crate) fn harness_panic(
    slot: &tpm_sync::SpinLock<Option<Box<dyn std::any::Any + Send>>>,
    f: impl FnOnce(),
) {
    if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
        let mut guard = slot.lock();
        if guard.is_none() {
            *guard = Some(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_runs_on_a_worker_and_returns() {
        let rt = Runtime::new(2);
        let r = rt.install(|ctx| {
            assert!(ctx.index() < 2);
            assert_eq!(ctx.num_workers(), 2);
            21 * 2
        });
        assert_eq!(r, 42);
    }

    #[test]
    fn install_is_reusable() {
        let rt = Runtime::new(3);
        for i in 0..100u64 {
            assert_eq!(rt.install(move |_| i + 1), i + 1);
        }
    }

    #[test]
    fn install_propagates_panics() {
        let rt = Runtime::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.install(|_| panic!("install boom"));
        }));
        assert!(r.is_err());
        // Runtime still alive.
        assert_eq!(rt.install(|_| 5), 5);
    }

    #[test]
    fn single_worker_runtime_works() {
        let rt = Runtime::new(1);
        assert_eq!(rt.install(|_| "ok"), "ok");
    }

    #[test]
    fn drop_terminates_workers() {
        let rt = Runtime::new(4);
        rt.install(|_| ());
        drop(rt); // must not hang
    }

    #[test]
    fn victim_plans_prefer_same_node_then_remote() {
        let topo = NumaTopology::parse_spec("0-1;2-3").unwrap();
        let plans = build_victim_plans(&topo, 4, true);
        assert_eq!(plans[0].local, vec![1]);
        assert_eq!(plans[0].remote, vec![2, 3]);
        assert_eq!(plans[1].local, vec![0]);
        assert_eq!(plans[1].remote, vec![2, 3]);
        // Neighbour-first within each segment: worker 2 scans 3, then 0, 1.
        assert_eq!(plans[2].local, vec![3]);
        assert_eq!(plans[2].remote, vec![0, 1]);
        assert_eq!(plans[3].local, vec![2]);
        assert_eq!(plans[3].remote, vec![0, 1]);
    }

    #[test]
    fn victim_plans_wrap_oversubscribed_workers_onto_cpus() {
        let topo = NumaTopology::parse_spec("0-1;2-3").unwrap();
        let plans = build_victim_plans(&topo, 6, true);
        // Worker 4 wraps to CPU 0 (node 0): workers 0, 1, 5 are local.
        assert_eq!(plans[4].local, vec![5, 0, 1]);
        assert_eq!(plans[4].remote, vec![2, 3]);
    }

    #[test]
    fn numa_unaware_plans_scan_every_victim_neighbour_first() {
        let topo = NumaTopology::parse_spec("0-1;2-3").unwrap();
        let plans = build_victim_plans(&topo, 4, false);
        for (w, plan) in plans.iter().enumerate() {
            assert!(plan.remote.is_empty());
            let expected: Vec<usize> = (w + 1..4).chain(0..w).collect();
            assert_eq!(plan.local, expected);
        }
    }

    #[test]
    fn numa_enabled_runtime_still_schedules_and_steals() {
        let rt = Runtime::builder().threads(4).pin(false).numa(true).build();
        assert!(rt.numa_enabled());
        let total = rt.install(|ctx| {
            let mut sum = 0u64;
            crate::par_for(
                ctx,
                0..10_000usize,
                crate::par_for::Grain::Fixed(16),
                &|i| {
                    std::hint::black_box(i);
                },
            );
            crate::join(ctx, |_| sum += 1, |_| ());
            sum
        });
        assert_eq!(total, 1);
    }

    #[test]
    fn stats_count_installed_jobs() {
        let rt = Runtime::new(2);
        rt.stats().reset();
        for _ in 0..10 {
            rt.install(|_| ());
        }
        assert_eq!(rt.stats().snapshot().executed, 10);
    }

    #[cfg(feature = "inject")]
    mod inject {
        use super::*;
        use std::time::{Duration, Instant};
        use tpm_fault::{FaultKind, FaultPlan, FaultSession, Site, SiteRule};

        /// A plan that kills exactly one worker: panic rules are inert at the
        /// wait-path steal probes, so the single fire lands at a worker-loop
        /// top-level probe where death + respawn containment exists.
        fn one_death_plan() -> FaultPlan {
            FaultPlan::single(SiteRule {
                max_fires: 1,
                ..SiteRule::prob(Site::StealAttempt, FaultKind::Panic, 1.0)
            })
        }

        fn wait_for(deadline: Duration, cond: impl Fn() -> bool) -> bool {
            let end = Instant::now() + deadline;
            while Instant::now() < end {
                if cond() {
                    return true;
                }
                std::thread::yield_now();
            }
            cond()
        }

        #[test]
        fn injected_worker_death_respawns_and_runtime_stays_usable() {
            let _serial = tpm_fault::session_serial();
            let rt = Runtime::new(3);
            rt.install(|_| ());
            assert_eq!(rt.live_workers(), 3);
            let session = FaultSession::install(&one_death_plan());
            assert!(
                wait_for(Duration::from_secs(10), || rt.worker_deaths() == 1
                    && rt.live_workers() == 3),
                "worker should die exactly once and be replaced (deaths={}, live={})",
                rt.worker_deaths(),
                rt.live_workers()
            );
            let report = session.report();
            assert_eq!(report.fired.len(), 1);
            assert_eq!(report.fired[0].site, Site::StealAttempt);
            assert_eq!(report.fired[0].kind, FaultKind::Panic);
            // The healed pool runs new work at full width.
            assert_eq!(rt.install(|ctx| ctx.num_workers()), 3);
            drop(rt); // must join the replacement thread without hanging
        }

        #[test]
        fn drop_immediately_after_worker_death_does_not_hang() {
            let _serial = tpm_fault::session_serial();
            let rt = Runtime::new(2);
            let session = FaultSession::install(&one_death_plan());
            assert!(
                wait_for(Duration::from_secs(10), || rt.worker_deaths() == 1),
                "injected death should land"
            );
            // Drop races the respawn: whether or not the replacement got
            // spawned before shutdown, neither path may hang.
            drop(rt);
            drop(session);
        }

        #[test]
        fn runtime_survives_repeated_deaths() {
            let _serial = tpm_fault::session_serial();
            let rt = Runtime::new(2);
            let session = FaultSession::install(&FaultPlan::single(SiteRule {
                max_fires: 3,
                ..SiteRule::prob(Site::StealAttempt, FaultKind::Panic, 1.0)
            }));
            assert!(
                wait_for(Duration::from_secs(10), || rt.worker_deaths() == 3
                    && rt.live_workers() == 2),
                "three deaths, each healed (deaths={}, live={})",
                rt.worker_deaths(),
                rt.live_workers()
            );
            drop(session);
            assert_eq!(rt.install(|ctx| ctx.num_workers()), 2);
        }
    }
}
