//! Erased job representations for the work-stealing scheduler.
//!
//! A [`JobRef`] is a fat-pointer-free `(data, exec)` pair so it can live in
//! the Chase–Lev deque as a small POD. Two concrete job kinds:
//!
//! * [`StackJob`] — lives on the spawning thread's stack (used by `join` and
//!   `Runtime::install`, whose protocols guarantee the frame outlives the
//!   job), carrying a result slot and a completion latch.
//! * [`HeapJob`] — boxed, fire-and-forget (used by `Scope::spawn`, which
//!   tracks completion with the scope's own counting latch).

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use tpm_sync::SpinLatch;

use crate::runtime::WorkerCtx;

/// A type-erased, queueable job.
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const (), &WorkerCtx<'_>),
}

// SAFETY: jobs are either heap-owned or stack frames kept alive by a latch
// protocol; the pointer is valid until executed exactly once.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// `data` must stay valid until the job executes, and must be executed
    /// at most once.
    pub(crate) unsafe fn new<J: Job>(data: *const J) -> Self {
        Self {
            data: data as *const (),
            exec: J::execute_erased,
        }
    }

    /// Runs the job on the calling worker.
    pub(crate) fn execute(self, ctx: &WorkerCtx<'_>) {
        // SAFETY: contract upheld at creation.
        unsafe { (self.exec)(self.data, ctx) }
    }

    /// Identity for "did I pop my own job back" checks.
    pub(crate) fn data_ptr(&self) -> *const () {
        self.data
    }
}

/// A job kind that can be erased into a [`JobRef`].
pub(crate) trait Job {
    /// # Safety
    /// `this` must be the pointer a [`JobRef::new`] was created with.
    unsafe fn execute_erased(this: *const (), ctx: &WorkerCtx<'_>);
}

/// A job whose storage is a stack frame of the spawning thread.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    /// Set after the result is written.
    pub(crate) latch: SpinLatch,
}

// SAFETY: access is phased — the spawner writes `func` before publishing the
// JobRef; exactly one executor takes `func` and writes `result`; the spawner
// reads `result` only after `latch` is set.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce(&WorkerCtx<'_>) -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: SpinLatch::new(),
        }
    }

    /// # Safety
    /// The caller must keep `self` alive until `latch` is set, and must not
    /// create more than one outstanding `JobRef`.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self as *const Self)
    }

    /// True if `job` refers to this stack job.
    pub(crate) fn is(&self, job: &JobRef) -> bool {
        std::ptr::eq(job.data_ptr() as *const Self, self)
    }

    /// Takes the result after completion, re-raising the job's panic on the
    /// joining thread.
    ///
    /// # Panics
    /// Re-raises the executed closure's panic, if any.
    pub(crate) fn take_result(&self) -> R {
        debug_assert!(self.latch.probe(), "take_result before completion");
        // SAFETY: latch set ⇒ executor finished writing and will not touch
        // the slot again.
        let res = unsafe { (*self.result.get()).take() }.expect("result taken twice");
        match res {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }
}

impl<F, R> Job for StackJob<F, R>
where
    F: FnOnce(&WorkerCtx<'_>) -> R + Send,
    R: Send,
{
    unsafe fn execute_erased(this: *const (), ctx: &WorkerCtx<'_>) {
        let this = &*(this as *const Self);
        let func = (*this.func.get()).take().expect("StackJob executed twice");
        let result = catch_unwind(AssertUnwindSafe(|| func(ctx)));
        *this.result.get() = Some(result);
        this.latch.set();
    }
}

/// A boxed job; completion/panic bookkeeping is the wrapper closure's
/// responsibility.
pub(crate) struct HeapJob<F> {
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce(&WorkerCtx<'_>) + Send,
{
    /// Boxes `func` and returns an owning [`JobRef`].
    pub(crate) fn into_job_ref(func: F) -> JobRef {
        let boxed = Box::new(HeapJob { func });
        // SAFETY: the raw box is reconstituted exactly once in
        // `execute_erased`.
        unsafe { JobRef::new(Box::into_raw(boxed)) }
    }
}

impl<F> Job for HeapJob<F>
where
    F: FnOnce(&WorkerCtx<'_>) + Send,
{
    unsafe fn execute_erased(this: *const (), ctx: &WorkerCtx<'_>) {
        let boxed = Box::from_raw(this as *mut Self);
        (boxed.func)(ctx);
    }
}
