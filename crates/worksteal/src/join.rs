//! `join` — the `cilk_spawn` / `cilk_sync` pair, fused.
//!
//! `join(ctx, a, b)` makes `b` stealable, runs `a` inline, then either pops
//! `b` back (the common, steal-free case: two function calls and two deque
//! operations) or — if a thief took `b` — helps by working while waiting.
//!
//! This is child stealing: the spawned child is queued and the parent
//! continues. Real Cilk uses continuation stealing (the *parent's
//! continuation* is queued), which cannot be expressed in safe Rust; the
//! scheduling-order difference does not affect the overhead phenomena the
//! paper measures (deque protocol cost, steal serialization), which is what
//! this workspace reproduces. See DESIGN.md §2.

use crate::job::StackJob;
use crate::runtime::WorkerCtx;

/// Runs `a` and `b` potentially in parallel, returning both results.
///
/// Must be called from inside the runtime (i.e. with a [`WorkerCtx`]).
/// If either closure panics, the panic is re-raised after both finished or
/// the other was reclaimed (no task is leaked).
///
/// # Examples
///
/// ```
/// use tpm_worksteal::{join, Runtime};
///
/// let rt = Runtime::new(2);
/// let (a, b) = rt.install(|ctx| join(ctx, |_| 1 + 1, |_| 2 + 2));
/// assert_eq!((a, b), (2, 4));
/// ```
pub fn join<RA, RB, A, B>(ctx: &WorkerCtx<'_>, a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce(&WorkerCtx<'_>) -> RA + Send,
    B: FnOnce(&WorkerCtx<'_>) -> RB + Send,
{
    // The spawned side is a task-exec fault site: an injected panic unwinds
    // out of the job (contained by the StackJob's panic capture) and an
    // injected drop surfaces the same way — observable, never silent.
    let job_b = StackJob::new(move |ctx: &WorkerCtx<'_>| {
        match tpm_fault::probe(tpm_fault::Site::TaskExec) {
            tpm_fault::Action::Panic => tpm_fault::injected_panic(tpm_fault::Site::TaskExec),
            tpm_fault::Action::TaskDrop => tpm_fault::injected_drop(tpm_fault::Site::TaskExec),
            _ => {}
        }
        b(ctx)
    });
    // SAFETY: this frame blocks (below) until job_b's latch is set, so the
    // stack storage outlives the queued reference.
    unsafe {
        ctx.push(job_b.as_job_ref());
    }

    // Run `a` inline. If it panics we must still reclaim or wait out `b`
    // before unwinding through the frame that owns it.
    let ra = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a(ctx))) {
        Ok(ra) => ra,
        Err(p) => {
            reclaim_or_wait(ctx, &job_b);
            std::panic::resume_unwind(p);
        }
    };

    reclaim_or_wait(ctx, &job_b);
    let rb = job_b.take_result();
    (ra, rb)
}

/// Pops `job_b` back and runs it inline if it was not stolen; otherwise
/// works until the thief completes it.
fn reclaim_or_wait<RB: Send, B: FnOnce(&WorkerCtx<'_>) -> RB + Send>(
    ctx: &WorkerCtx<'_>,
    job_b: &StackJob<B, RB>,
) {
    if job_b.latch.probe() {
        return;
    }
    if let Some(job) = ctx.pop() {
        if job_b.is(&job) {
            // Not stolen: execute inline on our own stack.
            ctx.execute(job);
            return;
        }
        // A job pushed during `a` that nobody consumed yet (possible when a
        // scope inside `a` left work we help with here). Execute it, then
        // fall through to the waiting loop.
        ctx.execute(job);
    }
    ctx.wait_until(|| job_b.latch.probe());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn both_sides_run() {
        let rt = Runtime::new(2);
        let (a, b) = rt.install(|ctx| join(ctx, |_| "left", |_| "right"));
        assert_eq!((a, b), ("left", "right"));
    }

    #[test]
    fn recursive_joins_compute_fib() {
        fn fib(ctx: &WorkerCtx<'_>, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(ctx, |c| fib(c, n - 1), |c| fib(c, n - 2));
            a + b
        }
        let rt = Runtime::new(4);
        assert_eq!(rt.install(|ctx| fib(ctx, 20)), 6765);
    }

    #[test]
    fn join_returns_borrowed_computation() {
        let rt = Runtime::new(2);
        let data: Vec<u64> = (0..1000).collect();
        let (lo, hi) = rt.install(|ctx| {
            let (l, r) = data.split_at(500);
            join(ctx, |_| l.iter().sum::<u64>(), |_| r.iter().sum::<u64>())
        });
        assert_eq!(lo + hi, (0..1000).sum());
    }

    #[test]
    fn panic_in_a_propagates_without_leaking_b() {
        let rt = Runtime::new(2);
        let ran_b = std::sync::atomic::AtomicBool::new(false);
        let r = catch_unwind(AssertUnwindSafe(|| {
            rt.install(|ctx| {
                join(
                    ctx,
                    |_| panic!("a boom"),
                    |_| ran_b.store(true, std::sync::atomic::Ordering::Relaxed),
                );
            })
        }));
        assert!(r.is_err());
        assert!(ran_b.load(std::sync::atomic::Ordering::Relaxed));
    }

    #[test]
    fn panic_in_b_propagates() {
        let rt = Runtime::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            rt.install(|ctx| {
                join(ctx, |_| 1, |_| -> u32 { panic!("b boom") });
            })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn deep_join_tree_on_one_worker() {
        // Everything must run inline without stealing.
        fn depth(ctx: &WorkerCtx<'_>, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            let (a, b) = join(ctx, |c| depth(c, n - 1), |_| 1);
            a + b
        }
        let rt = Runtime::new(1);
        assert_eq!(rt.install(|ctx| depth(ctx, 200)), 200);
    }
}
