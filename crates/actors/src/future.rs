//! Futures and continuations for task dependencies.
//!
//! The many-tasking dependency primitive (HPX futures, Charm++ callbacks):
//! a [`Promise`] is the write-once producer half, a [`Future`] the consumer
//! half. Consumers either block ([`Future::wait`] — for external threads at
//! the edge of the runtime) or attach a *continuation*
//! ([`Future::on_ready`]) that the completing worker runs inline — the
//! non-blocking composition style the actor kernels use, so no worker ever
//! parks on a dependency.

use std::sync::Arc;

use tpm_sync::{SpinLatch, SpinLock};

enum State<T> {
    /// Neither value nor continuation yet.
    Empty,
    /// Completed; value parked for `wait`/late `on_ready`.
    Value(T),
    /// Continuation registered before completion.
    Waiting(Box<dyn FnOnce(T) + Send>),
    /// Value already handed to a continuation or waiter.
    Done,
}

struct Shared<T> {
    state: SpinLock<State<T>>,
    ready: SpinLatch,
}

/// Creates a linked future/promise pair.
///
/// # Examples
///
/// ```
/// let (f, p) = tpm_actors::future::<u32>();
/// p.set(42);
/// assert_eq!(f.wait(), 42);
/// ```
pub fn future<T: Send + 'static>() -> (Future<T>, Promise<T>) {
    let shared = Arc::new(Shared {
        state: SpinLock::new(State::Empty),
        ready: SpinLatch::new(),
    });
    (
        Future {
            shared: Arc::clone(&shared),
        },
        Promise { shared },
    )
}

/// The write-once producer half of a future (see [`future`]).
pub struct Promise<T: Send + 'static> {
    shared: Arc<Shared<T>>,
}

impl<T: Send + 'static> Promise<T> {
    /// Creates a promise whose completion runs `cont` directly on the
    /// completing thread — a bare continuation, no [`Future`] handle. This
    /// is the join-tree building block: the last child to complete combines
    /// and propagates upward without any thread blocking.
    pub fn on_complete(cont: impl FnOnce(T) + Send + 'static) -> Promise<T> {
        Promise {
            shared: Arc::new(Shared {
                state: SpinLock::new(State::Waiting(Box::new(cont))),
                ready: SpinLatch::new(),
            }),
        }
    }

    /// Completes the future. If a continuation is attached it runs here, on
    /// the completing thread, before `set` returns.
    pub fn set(self, value: T) {
        let run = {
            let mut state = self.shared.state.lock();
            match std::mem::replace(&mut *state, State::Done) {
                State::Empty => {
                    *state = State::Value(value);
                    None
                }
                State::Waiting(cont) => Some((cont, value)),
                // Write-once: a second completion is a logic error.
                State::Value(_) | State::Done => unreachable!("promise completed twice"),
            }
        };
        self.shared.ready.set();
        if let Some((cont, value)) = run {
            cont(value);
        }
    }
}

impl<T: Send + 'static> std::fmt::Debug for Promise<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Promise")
    }
}

/// The consumer half of a future (see [`future`]).
pub struct Future<T: Send + 'static> {
    shared: Arc<Shared<T>>,
}

impl<T: Send + 'static> Future<T> {
    /// Whether the value has been produced.
    pub fn is_ready(&self) -> bool {
        self.shared.ready.probe()
    }

    /// Blocks (spin → yield) until the value arrives, then returns it.
    /// Meant for external threads at the runtime edge; workers compose with
    /// [`on_ready`](Future::on_ready) instead.
    pub fn wait(self) -> T {
        self.shared.ready.wait();
        let mut state = self.shared.state.lock();
        match std::mem::replace(&mut *state, State::Done) {
            State::Value(v) => v,
            _ => panic!("future value already consumed"),
        }
    }

    /// Attaches a continuation: runs immediately (on this thread) if the
    /// value is already there, otherwise on whichever thread completes the
    /// promise.
    pub fn on_ready(self, cont: impl FnOnce(T) + Send + 'static) {
        let mut cont = Some(cont);
        let run = {
            let mut state = self.shared.state.lock();
            match std::mem::replace(&mut *state, State::Done) {
                State::Empty => {
                    *state = State::Waiting(Box::new(cont.take().expect("unconsumed")));
                    None
                }
                State::Value(v) => Some(v),
                State::Waiting(_) => panic!("future already has a continuation"),
                State::Done => panic!("future value already consumed"),
            }
        };
        if let Some(v) = run {
            (cont.take().expect("continuation not stored"))(v);
        }
    }
}

impl<T: Send + 'static> std::fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Future")
            .field("ready", &self.is_ready())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn set_then_wait() {
        let (f, p) = future::<u32>();
        assert!(!f.is_ready());
        p.set(7);
        assert!(f.is_ready());
        assert_eq!(f.wait(), 7);
    }

    #[test]
    fn wait_blocks_until_set() {
        let (f, p) = future::<String>();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                p.set("done".to_string());
            });
            assert_eq!(f.wait(), "done");
        });
    }

    #[test]
    fn continuation_runs_on_completion() {
        let (f, p) = future::<u64>();
        let got = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&got);
        f.on_ready(move |v| g.store(v, Ordering::Relaxed));
        p.set(99);
        assert_eq!(got.load(Ordering::Relaxed), 99);
    }

    #[test]
    fn late_continuation_runs_immediately() {
        let (f, p) = future::<u64>();
        p.set(5);
        let got = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&got);
        f.on_ready(move |v| g.store(v, Ordering::Relaxed));
        assert_eq!(got.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn bare_continuation_promise() {
        let got = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&got);
        let p = Promise::on_complete(move |v: u64| g.store(v, Ordering::Relaxed));
        p.set(1234);
        assert_eq!(got.load(Ordering::Relaxed), 1234);
    }
}
