//! The activation scheduler: work stealing of actor activations.
//!
//! Charm++ and HPX schedule *activations* — "run this actor against its
//! mailbox", "run this one-shot task" — rather than loop chunks, but the
//! load-balancing substrate is the same randomized work stealing the Cilk
//! runtime uses (Kulkarni–Lumsdaine §4): each worker owns a Chase–Lev deque
//! of activations, thieves steal in batches from rotating victims (NUMA
//! local segment first), and idle workers escalate spin → yield → timed
//! park. External threads inject through a shared locked deque.
//!
//! The worker loop is deliberately the same shape as `tpm-worksteal`'s —
//! same fault-probe sites, same self-healing death/respawn path, same
//! trace events — so every chaos plan and profile recipe that runs against
//! the Cilk analogue runs unmodified against the actor runtime and the
//! figures compare schedulers, not harness plumbing.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

use tpm_fault::{Action as FaultAction, Site as FaultSite};
use tpm_sync::chase_lev::{self, Stealer, Worker};
use tpm_sync::topology::NumaTopology;
use tpm_sync::{CachePadded, IdleStrategy, LockedDeque, PoolConfig, SchedulerStats};

use crate::mailbox::{ActorCell, Runnable};

/// Initial deque capacity per worker.
const DEQUE_CAPACITY: usize = 256;
/// Most activations one steal episode may transfer.
const STEAL_BATCH_LIMIT: usize = 32;
/// Timed-park duration while idle.
const PARK_INTERVAL: Duration = Duration::from_micros(200);

/// One unit of schedulable work: a one-shot task (the many-tasking
/// "parcel") or a scheduled actor draining its mailbox.
pub(crate) enum Activation {
    /// Run-once closure. The `'static` bound is real for public spawns and
    /// erased (latch-protected) for the parallel-loop entry points.
    Task(Box<dyn FnOnce(&WorkerCtx<'_>) + Send + 'static>),
    /// An actor with a non-empty mailbox (at most one outstanding
    /// activation per actor — the mailbox state machine enforces that).
    Cell(Arc<dyn Runnable>),
}

/// The message-driven runtime: a fixed pool of workers executing
/// activations.
///
/// # Examples
///
/// ```
/// use tpm_actors::ActorRuntime;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let rt = ActorRuntime::new(2);
/// let hits = Arc::new(AtomicU64::new(0));
/// let h = Arc::clone(&hits);
/// rt.spawn(move |_| {
///     h.fetch_add(1, Ordering::Relaxed);
/// });
/// while hits.load(Ordering::Relaxed) == 0 {
///     std::thread::yield_now();
/// }
/// ```
pub struct ActorRuntime {
    inner: Arc<RuntimeInner>,
    handles: Vec<JoinHandle<()>>,
}

pub(crate) struct RuntimeInner {
    pub(crate) stealers: Vec<Stealer<Activation>>,
    pub(crate) injector: LockedDeque<Activation>,
    /// Self-reference so worker contexts can mint `Weak` handles for actor
    /// cells without holding the pool alive.
    pub(crate) self_weak: Weak<RuntimeInner>,
    idle: (u32, u32),
    shutdown: AtomicBool,
    sleepers: AtomicUsize,
    asleep: Vec<CachePadded<AtomicBool>>,
    threads: tpm_sync::SpinLock<Vec<Thread>>,
    pub(crate) stats: SchedulerStats,
    victim_plans: Vec<VictimPlan>,
    numa: bool,
    pin: bool,
    live: AtomicUsize,
    deaths: AtomicUsize,
    /// Panics that escaped a *fire-and-forget* activation (contained here —
    /// the worker survives; structured entry points carry their own panic
    /// slots instead and never hit this).
    task_panics: AtomicUsize,
    replacements: tpm_sync::SpinLock<Vec<JoinHandle<()>>>,
}

/// Builder for [`ActorRuntime`] over the shared [`PoolConfig`] knobs
/// (threads, pinning, NUMA victim ordering, idle policy).
///
/// # Examples
///
/// ```
/// use tpm_actors::ActorRuntime;
///
/// let rt = ActorRuntime::builder().threads(2).pin(false).build();
/// assert_eq!(rt.num_workers(), 2);
/// ```
#[derive(Debug, Clone)]
#[must_use = "call .build() to create the ActorRuntime"]
pub struct ActorRuntimeBuilder {
    cfg: PoolConfig,
}

impl ActorRuntimeBuilder {
    /// Number of worker threads (default 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg = self.cfg.threads(n);
        self
    }

    /// Pin worker `i` to core `i % cores`. Defaults to `TPM_PIN`.
    pub fn pin(mut self, pin: bool) -> Self {
        self.cfg = self.cfg.pin(pin);
        self
    }

    /// Node-aware victim ordering (see `tpm-worksteal`'s builder for the
    /// full semantics). Defaults to `TPM_NUMA`, then to the topology probe.
    pub fn numa(mut self, numa: bool) -> Self {
        self.cfg = self.cfg.numa(numa);
        self
    }

    /// Idle escalation policy (spin rounds, yield rounds) before parking.
    pub fn idle(mut self, spin_rounds: u32, yield_rounds: u32) -> Self {
        self.cfg = self.cfg.idle(spin_rounds, yield_rounds);
        self
    }

    /// Replaces the whole configuration at once (the family-registry path:
    /// `Family::build_runtime` hands every runtime the same [`PoolConfig`]).
    pub fn config(mut self, cfg: PoolConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Builds the runtime, spawning its workers.
    #[must_use = "dropping the ActorRuntime joins its workers"]
    pub fn build(self) -> ActorRuntime {
        ActorRuntime::with_config(self.cfg)
    }
}

impl ActorRuntime {
    /// The construction entry point; see [`ActorRuntimeBuilder`].
    pub fn builder() -> ActorRuntimeBuilder {
        ActorRuntimeBuilder {
            cfg: PoolConfig::from_env(),
        }
    }

    /// Creates a runtime with `num_workers` workers (shorthand for
    /// `ActorRuntime::builder().threads(num_workers).build()`).
    pub fn new(num_workers: usize) -> Self {
        Self::builder().threads(num_workers).build()
    }

    fn with_config(cfg: PoolConfig) -> Self {
        let num_workers = cfg.threads;
        assert!(num_workers >= 1, "runtime needs at least one worker");
        let mut workers = Vec::with_capacity(num_workers);
        let mut stealers = Vec::with_capacity(num_workers);
        for _ in 0..num_workers {
            let (w, s) = chase_lev::deque(DEQUE_CAPACITY);
            workers.push(w);
            stealers.push(s);
        }
        let topo = NumaTopology::probe();
        let numa = cfg
            .numa
            .unwrap_or_else(|| tpm_sync::topology::numa_from_env(cfg.pin && topo.num_nodes() > 1));
        let inner = Arc::new_cyclic(|self_weak| RuntimeInner {
            stealers,
            injector: LockedDeque::new(),
            self_weak: self_weak.clone(),
            idle: cfg.idle,
            shutdown: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            asleep: (0..num_workers)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            threads: tpm_sync::SpinLock::new(Vec::new()),
            stats: SchedulerStats::new(num_workers),
            victim_plans: build_victim_plans(&topo, num_workers, numa),
            numa,
            pin: cfg.pin,
            live: AtomicUsize::new(num_workers),
            deaths: AtomicUsize::new(0),
            task_panics: AtomicUsize::new(0),
            replacements: tpm_sync::SpinLock::new(Vec::new()),
        });
        let handles: Vec<JoinHandle<()>> = workers
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tpm-actors-{index}"))
                    .spawn(move || worker_entry(inner, index, deque))
                    .expect("failed to spawn worker")
            })
            .collect();
        *inner.threads.lock() = handles.iter().map(|h| h.thread().clone()).collect();
        Self { inner, handles }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.inner.stealers.len()
    }

    /// Workers currently alive (briefly below [`num_workers`] while a
    /// replacement for a dead worker is starting).
    ///
    /// [`num_workers`]: ActorRuntime::num_workers
    pub fn live_workers(&self) -> usize {
        self.inner.live.load(Ordering::Acquire)
    }

    /// Total workers lost to escaped panics since construction.
    pub fn worker_deaths(&self) -> usize {
        self.inner.deaths.load(Ordering::Acquire)
    }

    /// Panics contained from fire-and-forget activations (spawned tasks or
    /// actor message handlers; the worker survives each one).
    pub fn task_panics(&self) -> usize {
        self.inner.task_panics.load(Ordering::Acquire)
    }

    /// Scheduler event counters.
    pub fn stats(&self) -> &SchedulerStats {
        &self.inner.stats
    }

    /// Whether node-aware victim ordering is active.
    pub fn numa_enabled(&self) -> bool {
        self.inner.numa
    }

    /// Spawns a fire-and-forget task activation. A panic in `f` is
    /// contained (counted in [`task_panics`](ActorRuntime::task_panics));
    /// use [`crate::future`] to observe completion or failure.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&WorkerCtx<'_>) + Send + 'static,
    {
        self.inner.inject(Activation::Task(Box::new(f)));
    }

    /// Spawns an actor, returning its address. The actor runs on the pool's
    /// workers, one activation at a time, whenever its mailbox is non-empty.
    pub fn spawn_actor<A: crate::Actor>(&self, actor: A) -> crate::Addr<A> {
        ActorCell::spawn(actor, Arc::downgrade(&self.inner))
    }

    pub(crate) fn inner(&self) -> &Arc<RuntimeInner> {
        &self.inner
    }
}

impl Drop for ActorRuntime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for t in self.inner.threads.lock().iter() {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Self-healing replacements can themselves die and push further
        // replacements, so drain until empty.
        loop {
            let handle = self.inner.replacements.lock().pop();
            match handle {
                Some(h) => {
                    h.thread().unpark();
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

impl std::fmt::Debug for ActorRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorRuntime")
            .field("num_workers", &self.num_workers())
            .finish()
    }
}

/// One worker's precomputed steal-scan order (same construction as
/// `tpm-worksteal`: same-node victims neighbour-first, remote after).
#[derive(Debug, Clone, PartialEq, Eq)]
struct VictimPlan {
    local: Vec<usize>,
    remote: Vec<usize>,
}

fn build_victim_plans(topo: &NumaTopology, workers: usize, numa: bool) -> Vec<VictimPlan> {
    let cpus = topo.num_cpus().max(1);
    (0..workers)
        .map(|w| {
            let my_node = topo.node_of_cpu(w % cpus);
            let mut local = Vec::new();
            let mut remote = Vec::new();
            for v in (w + 1..workers).chain(0..w) {
                if numa && topo.node_of_cpu(v % cpus) != my_node {
                    remote.push(v);
                } else {
                    local.push(v);
                }
            }
            VictimPlan { local, remote }
        })
        .collect()
}

impl RuntimeInner {
    /// Queues an activation from outside the pool and wakes a sleeper.
    pub(crate) fn inject(&self, act: Activation) {
        self.injector.push_bottom(act);
        tpm_trace::record(tpm_trace::EventKind::TaskSpawn, 0, 0);
        self.wake_one();
    }

    /// Wakes one timed-parked worker (cheap no-op when none sleep).
    pub(crate) fn wake_one(&self) {
        if self.sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        for (i, flag) in self.asleep.iter().enumerate() {
            if flag.swap(false, Ordering::AcqRel) {
                self.sleepers.fetch_sub(1, Ordering::Relaxed);
                if let Some(t) = self.threads.lock().get(i) {
                    t.unpark();
                }
                return;
            }
        }
    }

    pub(crate) fn note_task_panic(&self) {
        self.task_panics.fetch_add(1, Ordering::AcqRel);
    }
}

/// The per-worker execution context, passed to every activation.
pub struct WorkerCtx<'w> {
    pub(crate) rt: &'w RuntimeInner,
    index: usize,
    deque: &'w Worker<Activation>,
    victim_offset: Cell<usize>,
}

impl<'w> WorkerCtx<'w> {
    /// This worker's index in `0..num_workers`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of workers in the runtime.
    pub fn num_workers(&self) -> usize {
        self.rt.stealers.len()
    }

    /// Spawns a fire-and-forget task onto this worker's own deque (it
    /// becomes stealable immediately).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&WorkerCtx<'_>) + Send + 'static,
    {
        self.push(Activation::Task(Box::new(f)));
    }

    pub(crate) fn stats(&self) -> &tpm_sync::WorkerStats {
        self.rt.stats.worker(self.index)
    }

    /// Pushes an activation onto this worker's deque.
    pub(crate) fn push(&self, act: Activation) {
        self.deque.push(act);
        self.stats().spawned.inc();
        tpm_trace::record(tpm_trace::EventKind::TaskSpawn, 0, 0);
        self.rt.wake_one();
    }

    pub(crate) fn pop(&self) -> Option<Activation> {
        self.deque.pop()
    }

    /// One steal episode: scan every other worker once (local NUMA segment
    /// first, round-robin from a rotating offset), then the injector.
    pub(crate) fn steal_work(&self) -> Option<Activation> {
        // Panic rules are inert at this probe (it also runs inside waiting
        // loops with live borrow-erased frames); the worker-loop top level
        // hosts the honored one.
        if tpm_fault::probe_no_panic(FaultSite::StealAttempt) != FaultAction::None {
            self.stats().failed_steals.inc();
            tpm_trace::record(tpm_trace::EventKind::FailedSteal, self.index as u64, 0);
            return None;
        }
        let plan = &self.rt.victim_plans[self.index];
        let start = self.victim_offset.get();
        self.victim_offset.set(start.wrapping_add(1));
        for segment in [&plan.local, &plan.remote] {
            let m = segment.len();
            for k in 0..m {
                let v = segment[(start + k) % m];
                let got = self.rt.stealers[v].steal_batch_into(self.deque, STEAL_BATCH_LIMIT);
                if got > 0 {
                    self.stats().steals.inc();
                    tpm_trace::record(tpm_trace::EventKind::Steal, v as u64, got as u64);
                    if let Some(act) = self.pop() {
                        return Some(act);
                    }
                } else {
                    self.stats().failed_steals.inc();
                    tpm_trace::record(tpm_trace::EventKind::FailedSteal, v as u64, 0);
                }
            }
        }
        self.rt.injector.steal_top()
    }

    /// Executes one activation, containing any escaped panic (fire-and-
    /// forget work must not kill the worker; structured entry points route
    /// panics through their own slots before they ever reach here).
    pub(crate) fn execute(&self, act: Activation) {
        self.stats().executed.inc();
        tpm_trace::record(tpm_trace::EventKind::TaskExec, 0, 0);
        let contained = catch_unwind(AssertUnwindSafe(|| match act {
            Activation::Task(f) => f(self),
            Activation::Cell(cell) => cell.run(self),
        }));
        if contained.is_err() {
            self.rt.note_task_panic();
        }
    }

    /// Works (pop own, then steal) until `probe()` turns true — lets a
    /// worker blocked on a [`Future`](crate::Future) keep executing
    /// activations instead of stalling its deque.
    pub fn wait_until(&self, probe: impl Fn() -> bool) {
        let idle = IdleStrategy::new(self.rt.idle.0, self.rt.idle.1);
        while !probe() {
            if let Some(act) = self.pop().or_else(|| self.steal_work()) {
                self.execute(act);
                idle.reset();
            } else {
                idle.snooze_no_park();
            }
        }
    }
}

impl std::fmt::Debug for WorkerCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("index", &self.index)
            .finish()
    }
}

/// Worker thread entry: pins, runs the loop under a top-level
/// `catch_unwind`, and respawns a replacement on the same index (with the
/// same deque) if an injected worker-loop fault escapes — identical
/// self-healing to `tpm-worksteal`.
fn worker_entry(inner: Arc<RuntimeInner>, index: usize, deque: Worker<Activation>) {
    if inner.pin {
        tpm_sync::affinity::pin_current_thread(index);
    }
    let result = catch_unwind(AssertUnwindSafe(|| worker_loop(&inner, index, &deque)));
    if result.is_ok() || inner.shutdown.load(Ordering::Acquire) {
        return;
    }
    if inner.asleep[index].swap(false, Ordering::AcqRel) {
        inner.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
    inner.live.fetch_sub(1, Ordering::AcqRel);
    inner.deaths.fetch_add(1, Ordering::AcqRel);
    tpm_trace::record(tpm_trace::EventKind::WorkerDeath, index as u64, 0);
    tpm_trace::record(
        tpm_trace::EventKind::DegradedWidth,
        inner.live.load(Ordering::Relaxed) as u64,
        0,
    );
    let respawned = Arc::clone(&inner);
    match std::thread::Builder::new()
        .name(format!("tpm-actors-{index}"))
        .spawn(move || {
            tpm_trace::record(tpm_trace::EventKind::WorkerRespawn, index as u64, 0);
            worker_entry(respawned, index, deque)
        }) {
        Ok(h) => {
            if let Some(slot) = inner.threads.lock().get_mut(index) {
                *slot = h.thread().clone();
            }
            inner.live.fetch_add(1, Ordering::AcqRel);
            inner.replacements.lock().push(h);
        }
        Err(_) => {
            // Stay degraded but alive: the surviving workers drain every
            // queue.
        }
    }
}

fn worker_loop(inner: &RuntimeInner, index: usize, deque: &Worker<Activation>) {
    let ctx = WorkerCtx {
        rt: inner,
        index,
        deque,
        victim_offset: Cell::new(0),
    };
    let idle = IdleStrategy::new(inner.idle.0, inner.idle.1);
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        // The one panic-honoring steal-site probe (no activation frame on
        // the stack): exercises the worker-death + respawn path.
        if tpm_fault::probe(FaultSite::StealAttempt) == FaultAction::Panic {
            tpm_fault::injected_panic(FaultSite::StealAttempt);
        }
        if let Some(act) = ctx.pop().or_else(|| ctx.steal_work()) {
            let started = std::time::Instant::now();
            ctx.execute(act);
            inner
                .stats
                .worker(index)
                .busy_ns
                .add(started.elapsed().as_nanos() as u64);
            idle.reset();
            continue;
        }
        if idle.snooze() {
            inner.stats.worker(index).parks.inc();
            inner.asleep[index].store(true, Ordering::Release);
            inner.sleepers.fetch_add(1, Ordering::Relaxed);
            std::thread::park_timeout(PARK_INTERVAL);
            if inner.asleep[index].swap(false, Ordering::AcqRel) {
                inner.sleepers.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn wait_for(cond: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(std::time::Instant::now() < deadline, "timed out");
            std::thread::yield_now();
        }
    }

    #[test]
    fn spawned_tasks_run() {
        let rt = ActorRuntime::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let h = Arc::clone(&hits);
            rt.spawn(move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            });
        }
        wait_for(|| hits.load(Ordering::Relaxed) == 100);
    }

    #[test]
    fn worker_spawns_are_stealable() {
        let rt = ActorRuntime::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        rt.spawn(move |ctx| {
            for _ in 0..64 {
                let h = Arc::clone(&h);
                ctx.spawn(move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        wait_for(|| hits.load(Ordering::Relaxed) == 64);
        // At least one other worker should have taken part under load, but
        // on a single-CPU host all 64 may run on one — only assert totals.
        assert!(rt.stats().snapshot().executed >= 65);
    }

    #[test]
    fn task_panics_are_contained() {
        let rt = ActorRuntime::new(2);
        rt.spawn(|_| panic!("boom"));
        wait_for(|| rt.task_panics() == 1);
        // Pool still works.
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        rt.spawn(move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        wait_for(|| hits.load(Ordering::Relaxed) == 1);
        assert_eq!(rt.live_workers(), 2);
        assert_eq!(rt.worker_deaths(), 0);
    }

    #[test]
    fn drop_terminates_workers() {
        let rt = ActorRuntime::new(4);
        rt.spawn(|_| ());
        drop(rt); // must not hang
    }

    #[test]
    fn single_worker_runtime_works() {
        let rt = ActorRuntime::new(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        rt.spawn(move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        wait_for(|| hits.load(Ordering::Relaxed) == 1);
    }
}
