//! Data-parallel entry points over activations.
//!
//! How a message-driven runtime runs a loop: decompose the range into
//! independent one-shot activations ("parcels"), let work stealing balance
//! them, join on a count latch. Two decompositions, mirroring the paper's
//! loop-vs-task split inside the other families:
//!
//! * [`scatter_for_cancel`] — flat scatter of `N/chunk` activations (the
//!   `actor_for` model): cheapest decomposition, one injector pass.
//! * [`recursive_for_cancel`] — binary splitting down to `base`, children
//!   pushed to the splitting worker's own deque (the `actor_task` model):
//!   thieves get big subtrees, the classic many-tasking shape.
//!
//! Both poll the [`CancelToken`] per activation, probe the shared
//! `TaskExec` fault site, and contain panics in a first-panic-wins slot so
//! the join latch *always* reaches zero — a dropped or panicked chunk is a
//! contained, observable error at the caller, never a hang.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use tpm_fault::{Action as FaultAction, Site as FaultSite};
use tpm_sync::{CancelToken, CountLatch, SpinLock};

use crate::runtime::{Activation, ActorRuntime, WorkerCtx};

type PanicSlot = SpinLock<Option<Box<dyn Any + Send>>>;
type ErasedTask = Box<dyn FnOnce(&WorkerCtx<'_>) + Send + 'static>;

/// Runs `f` with panic containment, recording the payload (first wins).
fn harness_panic(slot: &PanicSlot, f: impl FnOnce()) {
    if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
        let mut guard = slot.lock();
        if guard.is_none() {
            *guard = Some(p);
        }
    }
}

/// Erases a task's borrow lifetime so it can enter the `'static` deques.
///
/// # Safety
///
/// The caller must not let the borrowed frame end until every erased task
/// has completed — i.e. it must wait on a latch the task decrements as its
/// very last action (after the panic harness, so even a panicking task
/// counts down).
unsafe fn erase<'env>(f: Box<dyn FnOnce(&WorkerCtx<'_>) + Send + 'env>) -> ErasedTask {
    std::mem::transmute(f)
}

/// The shared frame every activation of one loop borrows.
struct ForEnv<'e, F> {
    latch: &'e CountLatch,
    slot: &'e PanicSlot,
    token: &'e CancelToken,
    body: &'e F,
    base: usize,
}

/// Flat scatter (the `actor_for` data-parallel model): one activation per
/// `chunk` iterations, joined on a latch. The body receives the executing
/// worker's index (reduction accumulators key off it).
pub fn scatter_for_indexed_cancel<F>(
    rt: &ActorRuntime,
    range: Range<usize>,
    chunk: usize,
    token: &CancelToken,
    body: F,
) where
    F: Fn(usize, Range<usize>) + Sync,
{
    if range.is_empty() {
        return;
    }
    let chunk = chunk.max(1);
    let chunks = range.len().div_ceil(chunk);
    let latch = CountLatch::new(chunks);
    let slot: PanicSlot = SpinLock::new(None);
    for ci in 0..chunks {
        let lo = range.start + ci * chunk;
        let hi = (lo + chunk).min(range.end);
        // Capture the bounds by value (`move`) and the frame by reference:
        // `lo`/`hi` die with this iteration, the frame outlives the wait.
        let (latch, slot, body) = (&latch, &slot, &body);
        let task: Box<dyn FnOnce(&WorkerCtx<'_>) + Send + '_> = Box::new(move |ctx| {
            harness_panic(slot, || {
                match tpm_fault::probe(FaultSite::TaskExec) {
                    FaultAction::Panic => tpm_fault::injected_panic(FaultSite::TaskExec),
                    FaultAction::TaskDrop => tpm_fault::injected_drop(FaultSite::TaskExec),
                    _ => {}
                }
                if token.is_cancelled() {
                    return;
                }
                ctx.stats().chunks.inc();
                tpm_trace::record(tpm_trace::EventKind::ChunkDispatch, (hi - lo) as u64, 0);
                body(ctx.index(), lo..hi);
            });
            latch.decrement();
        });
        // SAFETY: the latch wait below outlives every erased task.
        rt.inner().inject(Activation::Task(unsafe { erase(task) }));
    }
    latch.wait();
    let payload = slot.lock().take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

/// [`scatter_for_indexed_cancel`] without the worker index.
pub fn scatter_for_cancel<F>(
    rt: &ActorRuntime,
    range: Range<usize>,
    chunk: usize,
    token: &CancelToken,
    body: F,
) where
    F: Fn(Range<usize>) + Sync,
{
    scatter_for_indexed_cancel(rt, range, chunk, token, |_, r| body(r));
}

/// Builds the recursive split activation for `range` (children go to the
/// splitting worker's own deque, so thieves steal whole subtrees).
fn split_task<'e, F>(
    env: &'e ForEnv<'e, F>,
    range: Range<usize>,
) -> Box<dyn FnOnce(&WorkerCtx<'_>) + Send + 'e>
where
    F: Fn(usize, Range<usize>) + Sync,
{
    Box::new(move |ctx| {
        harness_panic(env.slot, || {
            match tpm_fault::probe(FaultSite::TaskExec) {
                FaultAction::Panic => tpm_fault::injected_panic(FaultSite::TaskExec),
                FaultAction::TaskDrop => tpm_fault::injected_drop(FaultSite::TaskExec),
                _ => {}
            }
            if env.token.is_cancelled() {
                return;
            }
            if range.len() <= env.base {
                ctx.stats().chunks.inc();
                tpm_trace::record(tpm_trace::EventKind::ChunkDispatch, range.len() as u64, 0);
                (env.body)(ctx.index(), range.clone());
            } else {
                let mid = range.start + range.len() / 2;
                // Register the children before they can possibly complete
                // (the increment-then-spawn protocol keeps the latch from
                // transiting zero early).
                env.latch.increment(2);
                // SAFETY: same latch contract as the caller's.
                ctx.push(Activation::Task(unsafe {
                    erase(split_task(env, range.start..mid))
                }));
                ctx.push(Activation::Task(unsafe {
                    erase(split_task(env, mid..range.end))
                }));
            }
        });
        env.latch.decrement();
    })
}

/// Recursive binary splitting down to `base` (the `actor_task` model). The
/// body receives the executing worker's index.
pub fn recursive_for_indexed_cancel<F>(
    rt: &ActorRuntime,
    range: Range<usize>,
    base: usize,
    token: &CancelToken,
    body: F,
) where
    F: Fn(usize, Range<usize>) + Sync,
{
    if range.is_empty() {
        return;
    }
    let latch = CountLatch::new(1);
    let slot: PanicSlot = SpinLock::new(None);
    let env = ForEnv {
        latch: &latch,
        slot: &slot,
        token,
        body: &body,
        base: base.max(1),
    };
    // SAFETY: the latch wait below outlives every erased task (each split
    // increments before pushing its children).
    rt.inner()
        .inject(Activation::Task(unsafe { erase(split_task(&env, range)) }));
    latch.wait();
    let payload = slot.lock().take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

/// [`recursive_for_indexed_cancel`] without the worker index.
pub fn recursive_for_cancel<F>(
    rt: &ActorRuntime,
    range: Range<usize>,
    base: usize,
    token: &CancelToken,
    body: F,
) where
    F: Fn(Range<usize>) + Sync,
{
    recursive_for_indexed_cancel(rt, range, base, token, |_, r| body(r));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn scatter_covers_every_index_once() {
        let rt = ActorRuntime::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let token = CancelToken::new();
        scatter_for_cancel(&rt, 0..n, 64, &token, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn recursive_covers_every_index_once() {
        let rt = ActorRuntime::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let token = CancelToken::new();
        recursive_for_cancel(&rt, 0..n, 32, &token, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn awkward_sizes_and_chunks() {
        let rt = ActorRuntime::new(3);
        let token = CancelToken::new();
        for n in [1usize, 2, 7, 63, 64, 65, 1023] {
            for chunk in [1usize, 3, 64, 4096] {
                let total = AtomicU64::new(0);
                scatter_for_cancel(&rt, 0..n, chunk, &token, |r| {
                    total.fetch_add(r.len() as u64, Ordering::Relaxed);
                });
                assert_eq!(
                    total.load(Ordering::Relaxed),
                    n as u64,
                    "scatter n={n} chunk={chunk}"
                );
                let total = AtomicU64::new(0);
                recursive_for_cancel(&rt, 0..n, chunk, &token, |r| {
                    total.fetch_add(r.len() as u64, Ordering::Relaxed);
                });
                assert_eq!(
                    total.load(Ordering::Relaxed),
                    n as u64,
                    "recursive n={n} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn cancellation_skips_pending_chunks() {
        let rt = ActorRuntime::new(2);
        let token = CancelToken::new();
        let ran = AtomicU64::new(0);
        token.cancel();
        scatter_for_cancel(&rt, 0..100_000, 64, &token, |_r| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        // Pre-cancelled: every activation observes the token and skips.
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn panic_in_body_is_contained_and_rethrown() {
        let rt = ActorRuntime::new(2);
        let token = CancelToken::new();
        let r = catch_unwind(AssertUnwindSafe(|| {
            scatter_for_cancel(&rt, 0..1000, 16, &token, |r| {
                if r.contains(&500) {
                    panic!("chunk boom");
                }
            });
        }));
        assert!(r.is_err(), "the body panic must reach the caller");
        // The pool survives and runs the next loop.
        let total = AtomicU64::new(0);
        scatter_for_cancel(&rt, 0..100, 10, &token, |r| {
            total.fetch_add(r.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panic_in_recursive_body_is_contained_and_rethrown() {
        let rt = ActorRuntime::new(2);
        let token = CancelToken::new();
        let r = catch_unwind(AssertUnwindSafe(|| {
            recursive_for_cancel(&rt, 0..1000, 16, &token, |r| {
                if r.contains(&500) {
                    panic!("split boom");
                }
            });
        }));
        assert!(r.is_err());
        let total = AtomicU64::new(0);
        recursive_for_cancel(&rt, 0..100, 10, &token, |r| {
            total.fetch_add(r.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }
}
