//! Typed actor mailboxes and the serialization state machine.
//!
//! Every actor owns a lock-free MPSC mailbox ([`tpm_sync::MpscQueue`]).
//! Senders are wait-free; delivery is exactly-once and per-sender FIFO.
//! The scheduler runs at most one *activation* of an actor at a time, so
//! message handlers never race with themselves — the actor-model guarantee
//! — enforced by a two-state machine per cell:
//!
//! ```text
//!        push + swap(SCHEDULED)==IDLE            drain, then store(IDLE)
//! IDLE ───────────────────────────────▶ SCHEDULED ─────────────────────▶ IDLE
//!        (exactly one sender wins                 (re-check mailbox:
//!         and enqueues the activation)             non-empty ⇒ try to win
//!                                                  the IDLE→SCHEDULED race
//!                                                  back and requeue)
//! ```
//!
//! The post-drain re-check closes the race where a message lands between
//! the last `pop` and the `IDLE` store: either the drainer sees it and
//! reschedules, or a concurrent sender wins the swap and schedules — never
//! both (the swap returns `IDLE` to exactly one of them), and never
//! neither.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Weak};

use tpm_sync::{MpscQueue, SpinLock};

use crate::runtime::{Activation, RuntimeInner, WorkerCtx};

/// Messages one activation processes before voluntarily yielding the
/// worker (the fairness bound: a flooded mailbox cannot starve its
/// siblings).
const MAILBOX_BATCH: usize = 64;

const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;

/// A message-driven entity: state plus a handler, run serially per actor.
///
/// # Examples
///
/// ```
/// use tpm_actors::{Actor, ActorCtx, ActorRuntime};
///
/// struct Counter(u64);
/// impl Actor for Counter {
///     type Msg = u64;
///     fn on_message(&mut self, msg: u64, _ctx: &ActorCtx<'_, '_>) {
///         self.0 += msg;
///     }
/// }
///
/// let rt = ActorRuntime::new(2);
/// let addr = rt.spawn_actor(Counter(0));
/// addr.send(5);
/// ```
pub trait Actor: Send + 'static {
    /// The mailbox's message type.
    type Msg: Send + 'static;

    /// Handles one message. Called serially — `&mut self` is honest — on
    /// whichever worker runs this actor's current activation. A panic here
    /// drops the offending message; the actor and its mailbox survive.
    fn on_message(&mut self, msg: Self::Msg, ctx: &ActorCtx<'_, '_>);
}

/// What a running actor can see of the scheduler: spawn more work, find out
/// where it is running.
pub struct ActorCtx<'a, 'w> {
    worker: &'a WorkerCtx<'w>,
}

impl ActorCtx<'_, '_> {
    /// Index of the worker currently running this activation.
    pub fn worker_index(&self) -> usize {
        self.worker.index()
    }

    /// Total workers in the runtime.
    pub fn num_workers(&self) -> usize {
        self.worker.num_workers()
    }

    /// Spawns a fire-and-forget task onto the current worker's deque.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&WorkerCtx<'_>) + Send + 'static,
    {
        self.worker.spawn(f);
    }

    /// Spawns a sibling actor on the same runtime.
    pub fn spawn_actor<A: Actor>(&self, actor: A) -> Addr<A> {
        ActorCell::spawn(actor, self.worker.rt.self_weak.clone())
    }
}

impl std::fmt::Debug for ActorCtx<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorCtx")
            .field("worker_index", &self.worker_index())
            .finish()
    }
}

/// Type-erased handle the scheduler runs (see [`Activation::Cell`]).
pub(crate) trait Runnable: Send + Sync {
    fn run(self: Arc<Self>, ctx: &WorkerCtx<'_>);
}

/// The heap part of one actor: mailbox + scheduling state + behavior.
pub(crate) struct ActorCell<A: Actor> {
    mailbox: MpscQueue<A::Msg>,
    /// IDLE/SCHEDULED (the serialization state machine in the module docs).
    state: AtomicU8,
    /// The actor itself. The state machine guarantees no two activations
    /// run concurrently, so this lock is uncontended by construction — it
    /// exists to make `ActorCell: Sync` and as a belt-and-braces guard.
    behavior: SpinLock<A>,
    /// Scheduler to enqueue activations on (weak: an address must not keep
    /// the worker pool alive).
    rt: Weak<RuntimeInner>,
}

impl<A: Actor> ActorCell<A> {
    pub(crate) fn spawn(actor: A, rt: Weak<RuntimeInner>) -> Addr<A> {
        Addr {
            cell: Arc::new(ActorCell {
                mailbox: MpscQueue::new(),
                state: AtomicU8::new(IDLE),
                behavior: SpinLock::new(actor),
                rt,
            }),
        }
    }

    /// The sender half of the state machine: enqueue, then schedule if this
    /// send observed the cell idle.
    fn notify(self: &Arc<Self>, msg: A::Msg) {
        self.mailbox.push(msg);
        if self.state.swap(SCHEDULED, Ordering::AcqRel) == IDLE {
            match self.rt.upgrade() {
                Some(rt) => rt.inject(Activation::Cell(Arc::clone(self) as Arc<dyn Runnable>)),
                // Runtime gone: park the cell back to idle so the message
                // sits in the mailbox (dead-letter) instead of wedging the
                // state machine.
                None => self.state.store(IDLE, Ordering::Release),
            }
        }
    }
}

impl<A: Actor> Runnable for ActorCell<A> {
    fn run(self: Arc<Self>, ctx: &WorkerCtx<'_>) {
        let mut processed = 0;
        {
            let mut behavior = self.behavior.lock();
            while processed < MAILBOX_BATCH {
                match self.mailbox.pop() {
                    Some(msg) => {
                        processed += 1;
                        let actx = ActorCtx { worker: ctx };
                        // A panicking handler poisons only its own message.
                        if catch_unwind(AssertUnwindSafe(|| behavior.on_message(msg, &actx)))
                            .is_err()
                        {
                            ctx.rt.note_task_panic();
                        }
                    }
                    None => break,
                }
            }
        }
        if processed == MAILBOX_BATCH && !self.mailbox.is_empty() {
            // Fairness yield: stay SCHEDULED (senders must not double-
            // schedule us) and requeue at the back of our worker's deque.
            ctx.push(Activation::Cell(self));
            return;
        }
        self.state.store(IDLE, Ordering::Release);
        // Close the push-vs-drain race (module docs): a message that landed
        // after our last pop but before the IDLE store has a sender that
        // lost the swap — so the re-schedule is on us.
        if !self.mailbox.is_empty() && self.state.swap(SCHEDULED, Ordering::AcqRel) == IDLE {
            ctx.push(Activation::Cell(self));
        }
    }
}

/// A cloneable address for sending messages to one actor.
pub struct Addr<A: Actor> {
    cell: Arc<ActorCell<A>>,
}

impl<A: Actor> Addr<A> {
    /// Sends a message: wait-free enqueue, exactly-once delivery, FIFO with
    /// respect to this sender's other sends.
    pub fn send(&self, msg: A::Msg) {
        self.cell.notify(msg);
    }

    /// Whether the mailbox currently looks empty (approximate — for tests
    /// and diagnostics).
    pub fn mailbox_is_empty(&self) -> bool {
        self.cell.mailbox.is_empty()
    }
}

impl<A: Actor> Clone for Addr<A> {
    fn clone(&self) -> Self {
        Addr {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<A: Actor> std::fmt::Debug for Addr<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Addr")
            .field("mailbox_empty", &self.mailbox_is_empty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActorRuntime;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn wait_for(cond: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(std::time::Instant::now() < deadline, "timed out");
            std::thread::yield_now();
        }
    }

    struct Summer {
        total: Arc<AtomicU64>,
        seen: u64,
    }

    impl Actor for Summer {
        type Msg = u64;
        fn on_message(&mut self, msg: u64, _ctx: &ActorCtx<'_, '_>) {
            // Serial execution makes the unsynchronized field update safe.
            self.seen += 1;
            self.total.fetch_add(msg, Ordering::Relaxed);
        }
    }

    #[test]
    fn messages_are_delivered() {
        let rt = ActorRuntime::new(2);
        let total = Arc::new(AtomicU64::new(0));
        let addr = rt.spawn_actor(Summer {
            total: Arc::clone(&total),
            seen: 0,
        });
        for i in 1..=100u64 {
            addr.send(i);
        }
        wait_for(|| total.load(Ordering::Relaxed) == 5050);
    }

    #[test]
    fn concurrent_senders_deliver_exactly_once() {
        let rt = ActorRuntime::new(4);
        let total = Arc::new(AtomicU64::new(0));
        let addr = rt.spawn_actor(Summer {
            total: Arc::clone(&total),
            seen: 0,
        });
        std::thread::scope(|s| {
            for _ in 0..4 {
                let addr = addr.clone();
                s.spawn(move || {
                    for _ in 0..10_000u64 {
                        addr.send(1);
                    }
                });
            }
        });
        wait_for(|| total.load(Ordering::Relaxed) == 40_000);
        // Settled: no stragglers beyond exactly-once.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(total.load(Ordering::Relaxed), 40_000);
    }

    struct Recorder {
        order: Arc<SpinLock<Vec<u64>>>,
    }

    impl Actor for Recorder {
        type Msg = u64;
        fn on_message(&mut self, msg: u64, _ctx: &ActorCtx<'_, '_>) {
            self.order.lock().push(msg);
        }
    }

    #[test]
    fn single_sender_order_is_fifo() {
        let rt = ActorRuntime::new(4);
        let order = Arc::new(SpinLock::new(Vec::new()));
        let addr = rt.spawn_actor(Recorder {
            order: Arc::clone(&order),
        });
        for i in 0..1_000u64 {
            addr.send(i);
        }
        wait_for(|| order.lock().len() == 1_000);
        let got = order.lock().clone();
        assert_eq!(got, (0..1_000).collect::<Vec<_>>());
    }

    struct PingPong {
        peer: Option<Addr<PingPong>>,
        bounces: Arc<AtomicU64>,
    }

    impl Actor for PingPong {
        type Msg = (u64, Option<Addr<PingPong>>);
        fn on_message(&mut self, (n, peer): Self::Msg, _ctx: &ActorCtx<'_, '_>) {
            if let Some(p) = peer {
                self.peer = Some(p);
            }
            self.bounces.fetch_add(1, Ordering::Relaxed);
            if n > 0 {
                if let Some(p) = &self.peer {
                    p.send((n - 1, None));
                }
            }
        }
    }

    #[test]
    fn actors_can_message_each_other() {
        let rt = ActorRuntime::new(2);
        let bounces = Arc::new(AtomicU64::new(0));
        let a = rt.spawn_actor(PingPong {
            peer: None,
            bounces: Arc::clone(&bounces),
        });
        let b = rt.spawn_actor(PingPong {
            peer: Some(a.clone()),
            bounces: Arc::clone(&bounces),
        });
        a.send((200, Some(b.clone())));
        wait_for(|| bounces.load(Ordering::Relaxed) == 201);
    }

    struct Faulty {
        survived: Arc<AtomicU64>,
    }

    impl Actor for Faulty {
        type Msg = bool;
        fn on_message(&mut self, poison: bool, _ctx: &ActorCtx<'_, '_>) {
            if poison {
                panic!("poison message");
            }
            self.survived.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn panicking_handler_poisons_only_its_message() {
        let rt = ActorRuntime::new(2);
        let survived = Arc::new(AtomicU64::new(0));
        let addr = rt.spawn_actor(Faulty {
            survived: Arc::clone(&survived),
        });
        addr.send(false);
        addr.send(true); // dropped by the panic
        addr.send(false);
        wait_for(|| survived.load(Ordering::Relaxed) == 2);
        assert_eq!(rt.task_panics(), 1);
        assert_eq!(rt.worker_deaths(), 0);
    }

    struct Spawner {
        hits: Arc<AtomicU64>,
    }

    impl Actor for Spawner {
        type Msg = u64;
        fn on_message(&mut self, n: u64, ctx: &ActorCtx<'_, '_>) {
            let hits = Arc::clone(&self.hits);
            // An actor can spawn plain tasks and sibling actors.
            ctx.spawn(move |_| {
                hits.fetch_add(n, Ordering::Relaxed);
            });
            let child = ctx.spawn_actor(Summer {
                total: Arc::clone(&self.hits),
                seen: 0,
            });
            child.send(n);
        }
    }

    #[test]
    fn actors_spawn_tasks_and_children() {
        let rt = ActorRuntime::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        let addr = rt.spawn_actor(Spawner {
            hits: Arc::clone(&hits),
        });
        addr.send(7);
        wait_for(|| hits.load(Ordering::Relaxed) == 14);
    }
}
