//! # tpm-actors — message-driven many-tasking runtime
//!
//! The fourth programming model of the `threadcmp` workspace. The paper
//! compares three *threading* models; the Kulkarni–Lumsdaine AMT survey
//! extends the comparison to asynchronous many-tasking runtimes (Charm++,
//! HPX/ParalleX, AM++), whose unit of scheduling is a *message-driven
//! activation* rather than a loop chunk or a spawned frame. This crate
//! rebuilds that model on the workspace's own substrate:
//!
//! * **Typed mailboxes** over lock-free Vyukov MPSC queues
//!   ([`tpm_sync::MpscQueue`]) — wait-free sends, exactly-once delivery,
//!   per-sender FIFO, with an IDLE/SCHEDULED state machine serializing each
//!   actor ([`Actor`], [`Addr`]).
//! * **Work stealing of activations** — per-worker Chase–Lev deques, batch
//!   stealing, NUMA-aware victim order, timed parking, self-healing
//!   workers: the same scheduler shape as `tpm-worksteal`, scheduling
//!   mailbox drains and one-shot parcels instead of spawned frames
//!   ([`ActorRuntime`]).
//! * **Futures/continuations** for task dependencies ([`future`],
//!   [`Promise::on_complete`]) — the last child to complete propagates
//!   upward on its own worker; nothing blocks.
//! * **Loop entry points** ([`scatter_for_cancel`],
//!   [`recursive_for_cancel`]) so every kernel in the workspace runs under
//!   the `actor_for`/`actor_task` models with cancellation, fault probes,
//!   and trace events identical to the other three families.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod future;
mod mailbox;
mod parallel;
mod runtime;

pub use future::{future, Future, Promise};
pub use mailbox::{Actor, ActorCtx, Addr};
pub use parallel::{
    recursive_for_cancel, recursive_for_indexed_cancel, scatter_for_cancel,
    scatter_for_indexed_cancel,
};
pub use runtime::{ActorRuntime, ActorRuntimeBuilder, WorkerCtx};
