//! Named, cancellable jobs — the dispatch layer under the serve frontend.
//!
//! A [`JobSpec`] is the serialized form of "run kernel K under model M at
//! size N on T threads": everything needed to execute arrives as plain data,
//! so a CLI flag set, a JSON request line, or a test can all name the same
//! execution. A [`JobRegistry`] maps kernel names to run functions; `tpm-core`
//! owns only the mechanism (this crate cannot see the kernels), and the
//! harness populates it with every kernel and Rodinia app at startup.
//!
//! Every job runs under a [`CancelToken`] and returns
//! `Result<JobResult, ExecError>` — cancellation, deadline expiry, panics and
//! malformed specs all come back as values, which is what lets a server thread
//! survive arbitrary requests.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use tpm_sync::CancelToken;

use crate::error::ExecError;
use crate::executor::Executor;
use crate::model::Model;
use crate::variant::KernelVariant;

/// One executable request: which kernel, under which model/variant, how big,
/// on how many threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Registry name of the kernel (`"sum"`, `"matmul"`, …).
    pub kernel: String,
    /// Threading model to execute under.
    pub model: Model,
    /// Reference or optimized data path.
    pub variant: KernelVariant,
    /// Problem size (kernel-defined meaning: elements, matrix order, …).
    pub size: usize,
    /// Thread count for the executor the job runs on.
    pub threads: usize,
}

/// What a completed job reports back.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Kernel-defined scalar output (sum, checksum, node count, …) so
    /// clients can sanity-check results across models.
    pub value: f64,
    /// Wall-clock execution time of the kernel body (allocation and
    /// input generation excluded).
    pub elapsed: Duration,
}

/// Everything a job body gets to run with.
#[derive(Debug)]
pub struct JobCtx<'a> {
    /// Executor sized to `spec.threads`.
    pub exec: &'a Executor,
    /// The validated request.
    pub spec: &'a JobSpec,
    /// Cancellation/deadline token; bodies poll it between work grains
    /// (the runtimes additionally poll at chunk/steal boundaries).
    pub token: &'a CancelToken,
}

type JobFn = Box<dyn Fn(&JobCtx<'_>) -> Result<f64, ExecError> + Send + Sync>;

struct JobEntry {
    description: &'static str,
    max_size: usize,
    run: JobFn,
}

/// Name → job-function table. Populated once at startup, then shared
/// (read-only) across server workers.
#[derive(Default)]
pub struct JobRegistry {
    jobs: BTreeMap<&'static str, JobEntry>,
}

impl JobRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `run` under `name`. `max_size` bounds `JobSpec::size` so a
    /// hostile request cannot demand a terabyte allocation; oversized specs
    /// fail validation as [`ExecError::BadConfig`]. Re-registering a name
    /// replaces the entry.
    pub fn register<F>(
        &mut self,
        name: &'static str,
        description: &'static str,
        max_size: usize,
        run: F,
    ) where
        F: Fn(&JobCtx<'_>) -> Result<f64, ExecError> + Send + Sync + 'static,
    {
        self.jobs.insert(
            name,
            JobEntry {
                description,
                max_size,
                run: Box::new(run),
            },
        );
    }

    /// Registered kernel names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.jobs.keys().copied().collect()
    }

    /// The one-line description of `name`, if registered.
    pub fn describe(&self, name: &str) -> Option<&'static str> {
        self.jobs.get(name).map(|e| e.description)
    }

    /// Checks a spec without running it: known kernel, size within the
    /// kernel's bound, sane thread count.
    pub fn validate(&self, spec: &JobSpec) -> Result<(), ExecError> {
        let entry = self
            .jobs
            .get(spec.kernel.as_str())
            .ok_or_else(|| ExecError::BadConfig(format!("unknown kernel {:?}", spec.kernel)))?;
        if spec.size == 0 {
            return Err(ExecError::BadConfig("size must be >= 1".to_string()));
        }
        if spec.size > entry.max_size {
            return Err(ExecError::BadConfig(format!(
                "size {} exceeds {}'s limit {}",
                spec.size, spec.kernel, entry.max_size
            )));
        }
        if spec.threads == 0 {
            return Err(ExecError::BadConfig("threads must be >= 1".to_string()));
        }
        Ok(())
    }

    /// Validates `spec` and runs it on `exec` under `token`, timing the body.
    /// `exec` must be sized to `spec.threads` (the caller owns executor
    /// caching; a mismatch is a [`ExecError::BadConfig`]).
    pub fn run(
        &self,
        exec: &Executor,
        spec: &JobSpec,
        token: &CancelToken,
    ) -> Result<JobResult, ExecError> {
        self.validate(spec)?;
        if exec.threads() != spec.threads {
            return Err(ExecError::BadConfig(format!(
                "executor has {} threads, spec wants {}",
                exec.threads(),
                spec.threads
            )));
        }
        token.check()?;
        let entry = &self.jobs[spec.kernel.as_str()];
        let ctx = JobCtx { exec, spec, token };
        let start = Instant::now();
        let value = (entry.run)(&ctx)?;
        Ok(JobResult {
            value,
            elapsed: start.elapsed(),
        })
    }
}

impl std::fmt::Debug for JobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRegistry")
            .field("kernels", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kernel: &str, size: usize, threads: usize) -> JobSpec {
        JobSpec {
            kernel: kernel.to_string(),
            model: Model::OmpFor,
            variant: KernelVariant::Reference,
            size,
            threads,
        }
    }

    fn toy_registry() -> JobRegistry {
        let mut reg = JobRegistry::new();
        reg.register("double", "2x the size", 1_000_000, |ctx| {
            ctx.token.check()?;
            Ok(ctx.spec.size as f64 * 2.0)
        });
        reg
    }

    #[test]
    fn runs_and_times_a_job() {
        let reg = toy_registry();
        let exec = Executor::new(1);
        let r = reg
            .run(&exec, &spec("double", 21, 1), &CancelToken::new())
            .unwrap();
        assert_eq!(r.value, 42.0);
    }

    #[test]
    fn bad_specs_are_bad_config() {
        let reg = toy_registry();
        let exec = Executor::new(1);
        let t = CancelToken::new();
        for s in [
            spec("nope", 10, 1),
            spec("double", 0, 1),
            spec("double", usize::MAX, 1),
            spec("double", 10, 0),
            spec("double", 10, 2), // executor sized 1
        ] {
            match reg.run(&exec, &s, &t) {
                Err(ExecError::BadConfig(_)) => {}
                other => panic!("{s:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn cancelled_token_short_circuits() {
        let reg = toy_registry();
        let exec = Executor::new(1);
        let t = CancelToken::new();
        t.cancel();
        assert_eq!(
            reg.run(&exec, &spec("double", 10, 1), &t),
            Err(ExecError::Cancelled)
        );
    }

    #[test]
    fn names_and_describe() {
        let reg = toy_registry();
        assert_eq!(reg.names(), vec!["double"]);
        assert_eq!(reg.describe("double"), Some("2x the size"));
        assert_eq!(reg.describe("nope"), None);
    }
}
