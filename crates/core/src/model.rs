//! The model registry: families and their implementation variants.
//!
//! The paper evaluates six versions per application — "for each application,
//! six versions have been implemented using the three APIs" (§IV): OpenMP
//! worksharing and tasking, Cilk Plus `cilk_for` and `cilk_spawn`, C++11
//! `std::thread` and `std::async`. The workspace adds a fourth family in
//! the same two-variant shape — the message-driven actor runtime
//! (`actor_for` scatter and `actor_task` recursive parcels), following the
//! Kulkarni–Lumsdaine many-tasking survey.
//!
//! This module is the *single* enumeration point. Everything that loops
//! over models or families — harness sweeps, CLI parsing, the job service,
//! tests — derives its list from [`Family::ALL`] / [`Family::variants`] /
//! [`Model::ALL`], so adding a family means editing this file (and the
//! executor's dispatch), not every call site.

/// API family (the paper's three models plus the actor extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// OpenMP — fork-join + worksharing + lock-based-deque tasking
    /// (`tpm-forkjoin`).
    OpenMp,
    /// Intel Cilk Plus — randomized work stealing on lock-free deques
    /// (`tpm-worksteal`).
    CilkPlus,
    /// C++11 — raw threads and async futures, no runtime (`tpm-rawthreads`).
    Cxx11,
    /// Message-driven many-tasking (Charm++/ParalleX style) — typed actor
    /// mailboxes with work stealing of activations (`tpm-actors`).
    Actors,
}

impl Family {
    /// Every family, in presentation order. The registry's outer loop.
    pub const ALL: [Family; 4] = [
        Family::OpenMp,
        Family::CilkPlus,
        Family::Cxx11,
        Family::Actors,
    ];

    /// Display name as the paper writes it (the actor family follows the
    /// AMT survey's terminology).
    pub fn name(self) -> &'static str {
        match self {
            Family::OpenMp => "OpenMP",
            Family::CilkPlus => "Cilk Plus",
            Family::Cxx11 => "C++11",
            Family::Actors => "Actors",
        }
    }

    /// The runtime crate implementing this family, as a short label
    /// (metric/trace vocabulary: `runtime_events_total{runtime="..."}`).
    pub fn runtime_label(self) -> &'static str {
        match self {
            Family::OpenMp => "forkjoin",
            Family::CilkPlus => "worksteal",
            Family::Cxx11 => "rawthreads",
            Family::Actors => "actors",
        }
    }

    /// Whether the family keeps a persistent worker pool (and therefore
    /// exports per-executor scheduler snapshots via
    /// `Executor::pooled_stats`). The C++11 family creates raw threads per
    /// call; its counters are process-global (`tpm_rawthreads::stats()`).
    pub fn has_pooled_runtime(self) -> bool {
        !matches!(self, Family::Cxx11)
    }

    /// This family's implementation variants (data-parallel first, task-
    /// parallel second — every family keeps the paper's two-variant shape).
    pub fn variants(self) -> &'static [Model] {
        match self {
            Family::OpenMp => &[Model::OmpFor, Model::OmpTask],
            Family::CilkPlus => &[Model::CilkFor, Model::CilkSpawn],
            Family::Cxx11 => &[Model::CxxThread, Model::CxxAsync],
            Family::Actors => &[Model::ActorFor, Model::ActorTask],
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parallelism pattern of a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Data parallelism (parallel loop).
    Data,
    /// Asynchronous task parallelism.
    Task,
}

/// One per-application implementation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// `#pragma omp parallel for` — worksharing loop.
    OmpFor,
    /// `#pragma omp task` / `taskwait` — explicit tasks on lock-based deques.
    OmpTask,
    /// `cilk_for` — recursive lazy splitting over work stealing.
    CilkFor,
    /// `cilk_spawn` / `cilk_sync` — spawned tasks on lock-free deques.
    CilkSpawn,
    /// `std::thread` — one OS thread per chunk, manual chunking.
    CxxThread,
    /// `std::async` — recursive decomposition with the `BASE = N/threads`
    /// cutoff, one OS thread per split.
    CxxAsync,
    /// Actor scatter — one mailbox-scheduled activation per chunk, joined
    /// on a latch (the message-driven data-parallel shape).
    ActorFor,
    /// Actor parcels — recursive splitting into stealable activations with
    /// futures/continuations for dependencies.
    ActorTask,
}

impl Model {
    /// Every variant, in the registry's presentation order (derived from
    /// [`Family::ALL`] — family-major, data-variant first).
    pub const ALL: [Model; 8] = [
        Model::OmpFor,
        Model::OmpTask,
        Model::CilkFor,
        Model::CilkSpawn,
        Model::CxxThread,
        Model::CxxAsync,
        Model::ActorFor,
        Model::ActorTask,
    ];

    /// The variant's label as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Model::OmpFor => "omp_for",
            Model::OmpTask => "omp_task",
            Model::CilkFor => "cilk_for",
            Model::CilkSpawn => "cilk_spawn",
            Model::CxxThread => "cxx_thread",
            Model::CxxAsync => "cxx_async",
            Model::ActorFor => "actor_for",
            Model::ActorTask => "actor_task",
        }
    }

    /// Which API family the variant belongs to.
    pub fn family(self) -> Family {
        match self {
            Model::OmpFor | Model::OmpTask => Family::OpenMp,
            Model::CilkFor | Model::CilkSpawn => Family::CilkPlus,
            Model::CxxThread | Model::CxxAsync => Family::Cxx11,
            Model::ActorFor | Model::ActorTask => Family::Actors,
        }
    }

    /// Which parallelism pattern the variant expresses.
    pub fn pattern(self) -> Pattern {
        match self {
            Model::OmpFor | Model::CilkFor | Model::CxxThread | Model::ActorFor => Pattern::Data,
            Model::OmpTask | Model::CilkSpawn | Model::CxxAsync | Model::ActorTask => Pattern::Task,
        }
    }

    /// Parses a figure label (`"omp_for"`, …) via the registry.
    pub fn parse(s: &str) -> Option<Model> {
        Family::ALL
            .iter()
            .flat_map(|f| f.variants())
            .copied()
            .find(|m| m.name() == s)
    }

    /// Parses a model *selection*: `"all"`, one name, or a comma-separated
    /// list (`"omp_for,actor_for"`). Names come from the registry, so a new
    /// family extends the accepted set — and the error text — for free.
    ///
    /// # Examples
    ///
    /// ```
    /// use tpm_core::Model;
    ///
    /// assert_eq!(Model::parse_list("all").unwrap(), Model::ALL.to_vec());
    /// assert_eq!(
    ///     Model::parse_list("cilk_for,actor_task").unwrap(),
    ///     vec![Model::CilkFor, Model::ActorTask],
    /// );
    /// assert!(Model::parse_list("omp_fast").is_err());
    /// ```
    pub fn parse_list(s: &str) -> Result<Vec<Model>, String> {
        if s.trim() == "all" {
            return Ok(Model::ALL.to_vec());
        }
        let mut models = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            match Model::parse(part) {
                Some(m) => {
                    if !models.contains(&m) {
                        models.push(m);
                    }
                }
                None => {
                    return Err(format!(
                        "unknown model '{part}' (expected all, or a comma-separated list of: {})",
                        Model::name_list()
                    ));
                }
            }
        }
        if models.is_empty() {
            return Err(format!(
                "empty model list (expected all, or a comma-separated list of: {})",
                Model::name_list()
            ));
        }
        Ok(models)
    }

    /// The registry's accepted names, `|`-separated (for usage/error text).
    pub fn name_list() -> String {
        Model::ALL.map(|m| m.name()).join("|")
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_distinct() {
        let mut names: Vec<_> = Model::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Model::ALL.len());
    }

    #[test]
    fn model_all_is_family_major() {
        // Model::ALL must stay exactly the flattening of the family
        // registry — it is the same list, kept const for array contexts.
        let derived: Vec<Model> = Family::ALL
            .iter()
            .flat_map(|f| f.variants())
            .copied()
            .collect();
        assert_eq!(derived, Model::ALL.to_vec());
    }

    #[test]
    fn families_partition_evenly() {
        for fam in Family::ALL {
            assert_eq!(fam.variants().len(), 2, "{fam}");
            for m in fam.variants() {
                assert_eq!(m.family(), fam, "{m}");
            }
        }
    }

    #[test]
    fn each_family_has_one_data_one_task_variant() {
        for fam in Family::ALL {
            let data = fam
                .variants()
                .iter()
                .filter(|m| m.pattern() == Pattern::Data)
                .count();
            let task = fam
                .variants()
                .iter()
                .filter(|m| m.pattern() == Pattern::Task)
                .count();
            assert_eq!((data, task), (1, 1), "{fam}");
        }
    }

    #[test]
    fn parse_round_trips() {
        for m in Model::ALL {
            assert_eq!(Model::parse(m.name()), Some(m));
        }
        assert_eq!(Model::parse("nope"), None);
    }

    #[test]
    fn parse_list_accepts_all_and_lists() {
        assert_eq!(Model::parse_list("all").unwrap(), Model::ALL.to_vec());
        assert_eq!(Model::parse_list("omp_for").unwrap(), vec![Model::OmpFor]);
        assert_eq!(
            Model::parse_list(" cilk_for , actor_for ").unwrap(),
            vec![Model::CilkFor, Model::ActorFor]
        );
        // Duplicates collapse, order is caller's.
        assert_eq!(
            Model::parse_list("omp_task,omp_task").unwrap(),
            vec![Model::OmpTask]
        );
    }

    #[test]
    fn parse_list_rejects_unknown_names_with_registry_help() {
        let err = Model::parse_list("omp_for,bogus").unwrap_err();
        assert!(err.contains("bogus"));
        for m in Model::ALL {
            assert!(err.contains(m.name()), "error should list {m}");
        }
        assert!(Model::parse_list("").is_err());
    }

    #[test]
    fn family_labels_are_distinct() {
        let mut labels: Vec<_> = Family::ALL.iter().map(|f| f.runtime_label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Family::ALL.len());
    }
}
