//! The six implementation variants the paper evaluates.
//!
//! "For each application, six versions have been implemented using the three
//! APIs" (§IV): OpenMP worksharing and tasking, Cilk Plus `cilk_for` and
//! `cilk_spawn`, C++11 `std::thread` and `std::async`.

/// API family (the three compared models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// OpenMP — fork-join + worksharing + lock-based-deque tasking
    /// (`tpm-forkjoin`).
    OpenMp,
    /// Intel Cilk Plus — randomized work stealing on lock-free deques
    /// (`tpm-worksteal`).
    CilkPlus,
    /// C++11 — raw threads and async futures, no runtime (`tpm-rawthreads`).
    Cxx11,
}

impl Family {
    /// Display name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            Family::OpenMp => "OpenMP",
            Family::CilkPlus => "Cilk Plus",
            Family::Cxx11 => "C++11",
        }
    }
}

/// Parallelism pattern of a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Data parallelism (parallel loop).
    Data,
    /// Asynchronous task parallelism.
    Task,
}

/// One of the six per-application variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// `#pragma omp parallel for` — worksharing loop.
    OmpFor,
    /// `#pragma omp task` / `taskwait` — explicit tasks on lock-based deques.
    OmpTask,
    /// `cilk_for` — recursive lazy splitting over work stealing.
    CilkFor,
    /// `cilk_spawn` / `cilk_sync` — spawned tasks on lock-free deques.
    CilkSpawn,
    /// `std::thread` — one OS thread per chunk, manual chunking.
    CxxThread,
    /// `std::async` — recursive decomposition with the `BASE = N/threads`
    /// cutoff, one OS thread per split.
    CxxAsync,
}

impl Model {
    /// All six variants, in the paper's presentation order.
    pub const ALL: [Model; 6] = [
        Model::OmpFor,
        Model::OmpTask,
        Model::CilkFor,
        Model::CilkSpawn,
        Model::CxxThread,
        Model::CxxAsync,
    ];

    /// The variant's label as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Model::OmpFor => "omp_for",
            Model::OmpTask => "omp_task",
            Model::CilkFor => "cilk_for",
            Model::CilkSpawn => "cilk_spawn",
            Model::CxxThread => "cxx_thread",
            Model::CxxAsync => "cxx_async",
        }
    }

    /// Which API family the variant belongs to.
    pub fn family(self) -> Family {
        match self {
            Model::OmpFor | Model::OmpTask => Family::OpenMp,
            Model::CilkFor | Model::CilkSpawn => Family::CilkPlus,
            Model::CxxThread | Model::CxxAsync => Family::Cxx11,
        }
    }

    /// Which parallelism pattern the variant expresses.
    pub fn pattern(self) -> Pattern {
        match self {
            Model::OmpFor | Model::CilkFor | Model::CxxThread => Pattern::Data,
            Model::OmpTask | Model::CilkSpawn | Model::CxxAsync => Pattern::Task,
        }
    }

    /// Parses a figure label (`"omp_for"`, …).
    pub fn parse(s: &str) -> Option<Model> {
        Model::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_distinct_variants() {
        let mut names: Vec<_> = Model::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn families_partition_evenly() {
        for fam in [Family::OpenMp, Family::CilkPlus, Family::Cxx11] {
            assert_eq!(Model::ALL.iter().filter(|m| m.family() == fam).count(), 2);
        }
    }

    #[test]
    fn patterns_partition_evenly() {
        assert_eq!(
            Model::ALL
                .iter()
                .filter(|m| m.pattern() == Pattern::Data)
                .count(),
            3
        );
    }

    #[test]
    fn parse_round_trips() {
        for m in Model::ALL {
            assert_eq!(Model::parse(m.name()), Some(m));
        }
        assert_eq!(Model::parse("nope"), None);
    }
}
