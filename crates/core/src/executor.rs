//! A unified executor over the four runtimes.
//!
//! Construction is registry-driven: [`Executor::try_build`] walks
//! [`Family::ALL`] and asks each family to build its runtime
//! ([`Family::build_runtime`]) from one shared [`PoolConfig`] — so adding a
//! family means adding a [`FamilyRuntime`] variant and a dispatch arm here,
//! and every harness loop, test, and service picks it up through the
//! registry without per-call-site edits.
//!
//! Task-parallel *algorithms* (recursive decomposition, per-phase task
//! graphs) are inherently per-application; those use [`Executor::team`],
//! [`Executor::worksteal`] and [`Executor::actors`] directly, exactly as
//! the paper wrote bespoke versions per benchmark.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use tpm_actors::ActorRuntime;
use tpm_forkjoin::{Schedule, Team};
use tpm_rawthreads as raw;
use tpm_sync::{CancelToken, PoolConfig, StatsSnapshot};
use tpm_worksteal::{Grain, Runtime};

use crate::error::{panic_message, ExecError};
use crate::model::{Family, Model};

/// One family's runtime instance (the C++11 family is stateless: raw
/// threads are created per call).
pub enum FamilyRuntime {
    /// The OpenMP analogue (`tpm-forkjoin`).
    OpenMp(Team),
    /// The Cilk Plus analogue (`tpm-worksteal`).
    CilkPlus(Runtime),
    /// The C++11 analogue needs no persistent pool.
    Cxx11,
    /// The message-driven actor runtime (`tpm-actors`).
    Actors(ActorRuntime),
}

impl FamilyRuntime {
    /// Which family this runtime implements.
    pub fn family(&self) -> Family {
        match self {
            FamilyRuntime::OpenMp(_) => Family::OpenMp,
            FamilyRuntime::CilkPlus(_) => Family::CilkPlus,
            FamilyRuntime::Cxx11 => Family::Cxx11,
            FamilyRuntime::Actors(_) => Family::Actors,
        }
    }

    /// Scheduler counters, for families with a pooled runtime (`None` for
    /// the stateless C++11 family — its process-global counters live at
    /// `tpm_rawthreads::stats()`).
    pub fn stats(&self) -> Option<StatsSnapshot> {
        match self {
            FamilyRuntime::OpenMp(t) => Some(t.stats().snapshot()),
            FamilyRuntime::CilkPlus(r) => Some(r.stats().snapshot()),
            FamilyRuntime::Cxx11 => None,
            FamilyRuntime::Actors(a) => Some(a.stats().snapshot()),
        }
    }

    /// Resets this runtime's scheduler counters (no-op for the stateless
    /// C++11 family).
    pub fn reset_stats(&self) {
        match self {
            FamilyRuntime::OpenMp(t) => t.stats().reset(),
            FamilyRuntime::CilkPlus(r) => r.stats().reset(),
            FamilyRuntime::Cxx11 => {}
            FamilyRuntime::Actors(a) => a.stats().reset(),
        }
    }
}

impl std::fmt::Debug for FamilyRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FamilyRuntime")
            .field(&self.family())
            .finish()
    }
}

impl Family {
    /// Builds this family's runtime from the shared pool knobs. The
    /// registry's construction hook: [`Executor::try_build`] calls this for
    /// every entry of [`Family::ALL`].
    pub fn build_runtime(self, cfg: &PoolConfig) -> FamilyRuntime {
        match self {
            Family::OpenMp => FamilyRuntime::OpenMp(Team::builder().config(cfg.clone()).build()),
            Family::CilkPlus => {
                FamilyRuntime::CilkPlus(Runtime::builder().config(cfg.clone()).build())
            }
            Family::Cxx11 => FamilyRuntime::Cxx11,
            Family::Actors => {
                FamilyRuntime::Actors(ActorRuntime::builder().config(cfg.clone()).build())
            }
        }
    }
}

/// Holds one runtime instance per API family, all sized to the same thread
/// count, so a figure's curves measure scheduling — not pool size.
pub struct Executor {
    threads: usize,
    runtimes: Vec<FamilyRuntime>,
}

/// Configures an [`Executor`] before construction — one [`PoolConfig`]
/// applied to every family's runtime, so the pools stay comparable.
///
/// # Examples
///
/// ```
/// use tpm_core::Executor;
///
/// let exec = Executor::builder().threads(2).pin(false).build();
/// assert_eq!(exec.threads(), 2);
/// ```
#[derive(Debug)]
#[must_use = "a builder does nothing until .build()"]
pub struct ExecutorBuilder {
    cfg: PoolConfig,
}

impl ExecutorBuilder {
    /// Thread count for every pool (default 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg = self.cfg.threads(n);
        self
    }

    /// Pin workers to cores in every pool. Defaults to the `TPM_PIN`
    /// environment variable.
    pub fn pin(mut self, pin: bool) -> Self {
        self.cfg = self.cfg.pin(pin);
        self
    }

    /// Force NUMA-aware victim ordering on or off in the pools that support
    /// it. Defaults to `TPM_NUMA`, then the topology probe.
    pub fn numa(mut self, numa: bool) -> Self {
        self.cfg = self.cfg.numa(numa);
        self
    }

    /// Idle escalation policy (spin rounds, yield rounds) for every pool's
    /// worker loops.
    pub fn idle(mut self, spin_rounds: u32, yield_rounds: u32) -> Self {
        self.cfg = self.cfg.idle(spin_rounds, yield_rounds);
        self
    }

    /// Materializes every family's runtime.
    ///
    /// Panics on an unbuildable configuration; use
    /// [`try_build`](Self::try_build) to get an [`ExecError`] instead.
    #[must_use]
    pub fn build(self) -> Executor {
        match self.try_build() {
            Ok(exec) => exec,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`build`](Self::build): returns [`ExecError::BadConfig`]
    /// when the configuration cannot produce a working executor (currently:
    /// a zero thread count) instead of panicking.
    ///
    /// # Examples
    ///
    /// ```
    /// use tpm_core::{ExecError, Executor};
    ///
    /// let r = Executor::builder().threads(0).try_build();
    /// assert!(matches!(r, Err(ExecError::BadConfig(_))));
    /// ```
    pub fn try_build(self) -> Result<Executor, ExecError> {
        if self.cfg.threads == 0 {
            return Err(ExecError::BadConfig(
                "thread count must be at least 1".into(),
            ));
        }
        let threads = self.cfg.threads;
        let runtimes = Family::ALL
            .iter()
            .map(|fam| fam.build_runtime(&self.cfg))
            .collect();
        Ok(Executor { threads, runtimes })
    }
}

impl Executor {
    /// Starts configuring an executor (threads 1, pinning from `TPM_PIN`).
    pub fn builder() -> ExecutorBuilder {
        ExecutorBuilder {
            cfg: PoolConfig::from_env(),
        }
    }

    /// Creates runtimes with `threads` threads each.
    pub fn new(threads: usize) -> Self {
        Self::builder().threads(threads).build()
    }

    /// The common thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn runtime(&self, family: Family) -> &FamilyRuntime {
        self.runtimes
            .iter()
            .find(|r| r.family() == family)
            .expect("try_build materializes every registry family")
    }

    /// Direct access to the OpenMP-analogue team (for task-parallel code).
    pub fn team(&self) -> &Team {
        match self.runtime(Family::OpenMp) {
            FamilyRuntime::OpenMp(t) => t,
            _ => unreachable!("OpenMp slot holds a Team"),
        }
    }

    /// Direct access to the Cilk-analogue runtime (for task-parallel code).
    pub fn worksteal(&self) -> &Runtime {
        match self.runtime(Family::CilkPlus) {
            FamilyRuntime::CilkPlus(r) => r,
            _ => unreachable!("CilkPlus slot holds a Runtime"),
        }
    }

    /// Direct access to the actor runtime (for message-driven code).
    pub fn actors(&self) -> &ActorRuntime {
        match self.runtime(Family::Actors) {
            FamilyRuntime::Actors(a) => a,
            _ => unreachable!("Actors slot holds an ActorRuntime"),
        }
    }

    /// Snapshots of every pooled runtime's scheduler counters, in
    /// [`Family::ALL`] order (families without a pool — C++11 — are
    /// omitted). Two snapshots bracket a job; their difference
    /// (`StatsSnapshot` implements `Sub`) attributes the events to that
    /// job — exact when the executor runs one job at a time, as in the job
    /// service's per-worker executor caches. The rawthreads model's
    /// process-global counters live at `tpm_rawthreads::stats()`.
    pub fn pooled_stats(&self) -> Vec<(Family, StatsSnapshot)> {
        self.runtimes
            .iter()
            .filter_map(|r| r.stats().map(|s| (r.family(), s)))
            .collect()
    }

    /// Resets every pooled runtime's scheduler counters (e.g. between a
    /// warm-up run and a profiled run).
    pub fn reset_stats(&self) {
        for r in &self.runtimes {
            r.reset_stats();
        }
    }

    /// The chunk size the paper's manual/task chunkings use:
    /// `BASE = N / threads`.
    pub fn base_chunk(&self, n: usize) -> usize {
        raw::base_cutoff(n, self.threads)
    }

    /// Runs the data-parallel loop `body` over `range` under `model`'s
    /// distribution mechanism. `body` receives contiguous chunks.
    ///
    /// Deprecated: panics on any failure. Use
    /// [`try_parallel_for`](Self::try_parallel_for), which reports
    /// cancellation, deadlines and contained body panics as [`ExecError`].
    #[deprecated(
        since = "0.1.0",
        note = "use try_parallel_for (Result-based; this wrapper panics on failure)"
    )]
    pub fn parallel_for<F>(&self, model: Model, range: Range<usize>, body: &F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if let Err(e) = self.try_parallel_for(model, range, &CancelToken::new(), body) {
            panic!("{model} parallel_for failed: {e}");
        }
    }

    /// Fallible parallel loop: polls `token` at every chunk/steal boundary
    /// and stops within one grain of work per thread once it fires; a
    /// panicking body is caught (the runtimes stay usable) and reported as
    /// [`ExecError::Panic`].
    ///
    /// # Examples
    ///
    /// ```
    /// use tpm_core::{ExecError, Executor, Model};
    /// use tpm_sync::CancelToken;
    ///
    /// let exec = Executor::new(2);
    /// let token = CancelToken::new();
    /// token.cancel();
    /// let r = exec.try_parallel_for(Model::OmpFor, 0..100, &token, &|_| unreachable!());
    /// assert_eq!(r, Err(ExecError::Cancelled));
    /// ```
    pub fn try_parallel_for<F>(
        &self,
        model: Model,
        range: Range<usize>,
        token: &CancelToken,
        body: &F,
    ) -> Result<(), ExecError>
    where
        F: Fn(Range<usize>) + Sync,
    {
        if let Some(r) = token.reason() {
            return Err(r.into());
        }
        match catch_unwind(AssertUnwindSafe(|| {
            self.dispatch_for(model, range, token, body)
        })) {
            Ok(()) => token.check().map_err(Into::into),
            Err(p) => Err(ExecError::Panic(panic_message(p))),
        }
    }

    fn dispatch_for<F>(&self, model: Model, range: Range<usize>, token: &CancelToken, body: &F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let n = range.len();
        let base = self.base_chunk(n);
        match model {
            Model::OmpFor => {
                // Worksharing with the static schedule (the paper's setup for
                // all data-parallel comparisons); the region carries the token
                // so every chunk boundary polls it.
                self.team().parallel_with_token(self.threads, token, |ctx| {
                    ctx.ws_for_chunks(Schedule::static_default(), range.clone(), body);
                });
            }
            Model::OmpTask => {
                // parallel + single + one task per BASE-sized chunk; each task
                // polls the region's cancellation state before running.
                self.team().parallel_with_token(self.threads, token, |ctx| {
                    ctx.single(|| {
                        ctx.task_scope(|s| {
                            let mut start = range.start;
                            while start < range.end {
                                let end = (start + base).min(range.end);
                                s.spawn(move |c| {
                                    if !c.is_cancelled() {
                                        body(start..end)
                                    }
                                });
                                start = end;
                            }
                        });
                    });
                });
            }
            Model::CilkFor => {
                // Recursive lazy splitting with Cilk's default grain.
                self.worksteal().install(|ctx| {
                    let _ = tpm_worksteal::par_for_cancel(ctx, range, Grain::Auto, token, body);
                });
            }
            Model::CilkSpawn => {
                // Explicitly spawned BASE-sized chunk tasks + sync.
                self.worksteal().install(|ctx| {
                    tpm_worksteal::scope(ctx, |s| {
                        let mut start = range.start;
                        while start < range.end {
                            let end = (start + base).min(range.end);
                            s.spawn(move |_| {
                                if !token.is_cancelled() {
                                    body(start..end)
                                }
                            });
                            start = end;
                        }
                    });
                });
            }
            Model::CxxThread => {
                let _ =
                    raw::threads_for_cancel(self.threads, range, token, |_tid, chunk| body(chunk));
            }
            Model::CxxAsync => {
                let _ = raw::recursive_for_cancel(range, base, token, body);
            }
            Model::ActorFor => {
                // Flat scatter of BASE-sized chunk activations, balanced by
                // work stealing, joined on a latch (panics re-raised here,
                // caught by the try_* wrapper).
                tpm_actors::scatter_for_cancel(self.actors(), range, base, token, body);
            }
            Model::ActorTask => {
                // Recursive parcels: binary splitting into stealable
                // activations down to BASE.
                tpm_actors::recursive_for_cancel(self.actors(), range, base, token, body);
            }
        }
    }

    /// Runs a data-parallel reduction under `model`: `body` folds each chunk
    /// into a `T` accumulator; partials combine with `combine` (associative).
    ///
    /// Deprecated: panics on any failure. Use
    /// [`try_parallel_reduce`](Self::try_parallel_reduce).
    #[deprecated(
        since = "0.1.0",
        note = "use try_parallel_reduce (Result-based; this wrapper panics on failure)"
    )]
    pub fn parallel_reduce<T, F, Id, Op>(
        &self,
        model: Model,
        range: Range<usize>,
        identity: Id,
        combine: Op,
        body: F,
    ) -> T
    where
        T: Send,
        Id: Fn() -> T + Send + Sync,
        Op: Fn(T, T) -> T + Send + Sync,
        F: Fn(Range<usize>, &mut T) + Sync,
    {
        match self.try_parallel_reduce(model, range, &CancelToken::new(), identity, combine, body) {
            Ok(v) => v,
            Err(e) => panic!("{model} parallel_reduce failed: {e}"),
        }
    }

    /// Fallible reduction: stops within one grain once `token` fires and
    /// discards the partial accumulators. Body panics are caught and
    /// reported as [`ExecError::Panic`].
    ///
    /// # Examples
    ///
    /// ```
    /// use tpm_core::{Executor, Model};
    /// use tpm_sync::CancelToken;
    ///
    /// let exec = Executor::new(2);
    /// let sum = exec.try_parallel_reduce(
    ///     Model::CilkFor,
    ///     0..100,
    ///     &CancelToken::new(),
    ///     || 0u64,
    ///     |a, b| a + b,
    ///     |chunk, acc| for i in chunk { *acc += i as u64 },
    /// );
    /// assert_eq!(sum, Ok(4950));
    /// ```
    pub fn try_parallel_reduce<T, F, Id, Op>(
        &self,
        model: Model,
        range: Range<usize>,
        token: &CancelToken,
        identity: Id,
        combine: Op,
        body: F,
    ) -> Result<T, ExecError>
    where
        T: Send,
        Id: Fn() -> T + Send + Sync,
        Op: Fn(T, T) -> T + Send + Sync,
        F: Fn(Range<usize>, &mut T) + Sync,
    {
        if let Some(r) = token.reason() {
            return Err(r.into());
        }
        match catch_unwind(AssertUnwindSafe(|| {
            self.dispatch_reduce(model, range, token, identity, combine, body)
        })) {
            Ok(v) => token.check().map(|()| v).map_err(Into::into),
            Err(p) => Err(ExecError::Panic(panic_message(p))),
        }
    }

    fn dispatch_reduce<T, F, Id, Op>(
        &self,
        model: Model,
        range: Range<usize>,
        token: &CancelToken,
        identity: Id,
        combine: Op,
        body: F,
    ) -> T
    where
        T: Send,
        Id: Fn() -> T + Send + Sync,
        Op: Fn(T, T) -> T + Send + Sync,
        F: Fn(Range<usize>, &mut T) + Sync,
    {
        let n = range.len();
        let base = self.base_chunk(n);
        match model {
            Model::OmpFor => {
                // Identical to Team::parallel_for_reduce, with the token
                // attached to the region (same chunks, same combine order).
                let reducer = tpm_sync::Reducer::new(self.threads, identity, combine);
                self.team().parallel_with_token(self.threads, token, |ctx| {
                    ctx.ws_for_chunks(Schedule::static_default(), range.clone(), |chunk| {
                        reducer.with(ctx.thread_num(), |acc| body(chunk, acc));
                    });
                });
                reducer.finish()
            }
            Model::OmpTask => {
                // Tasks accumulate into a reducer keyed by executing thread.
                let reducer = tpm_sync::Reducer::new(self.threads, identity, combine);
                self.team().parallel_with_token(self.threads, token, |ctx| {
                    ctx.single(|| {
                        ctx.task_scope(|s| {
                            let mut start = range.start;
                            while start < range.end {
                                let end = (start + base).min(range.end);
                                let reducer = &reducer;
                                let body = &body;
                                s.spawn(move |c| {
                                    if !c.is_cancelled() {
                                        reducer.with(c.thread_num(), |acc| body(start..end, acc));
                                    }
                                });
                                start = end;
                            }
                        });
                    });
                });
                reducer.finish()
            }
            Model::CilkFor => {
                // par_for_reduce's reducer pattern over the cancel-aware loop.
                let body = &body; // shared borrow: Send because F: Sync
                self.worksteal().install(move |ctx| {
                    let reducer = tpm_sync::Reducer::new(ctx.num_workers(), identity, combine);
                    let _ = tpm_worksteal::par_for_ctx_cancel(
                        ctx,
                        range,
                        Grain::Auto,
                        token,
                        &|c: &tpm_worksteal::WorkerCtx<'_>, chunk: Range<usize>| {
                            reducer.with(c.index(), |acc| body(chunk, acc));
                        },
                    );
                    reducer.finish()
                })
            }
            Model::CilkSpawn => {
                let reducer = tpm_sync::Reducer::new(self.threads, identity, combine);
                self.worksteal().install(|ctx| {
                    tpm_worksteal::scope(ctx, |s| {
                        let mut start = range.start;
                        while start < range.end {
                            let end = (start + base).min(range.end);
                            let reducer = &reducer;
                            let body = &body;
                            s.spawn(move |c| {
                                if !token.is_cancelled() {
                                    reducer.with(c.index(), |acc| body(start..end, acc));
                                }
                            });
                            start = end;
                        }
                    });
                });
                reducer.finish()
            }
            Model::CxxThread => {
                // threads_for_reduce's per-thread partials, over the
                // cancel-aware loop (sub-chunks fold in order, so the
                // operation sequence per thread is unchanged).
                let reducer = tpm_sync::Reducer::new(self.threads, identity, combine);
                let _ = raw::threads_for_cancel(self.threads, range, token, |tid, chunk| {
                    reducer.with(tid, |acc| body(chunk, acc));
                });
                reducer.finish()
            }
            Model::CxxAsync => raw::recursive_reduce_cancel(
                range,
                base,
                token,
                &identity,
                &|chunk| {
                    let mut acc = identity();
                    body(chunk, &mut acc);
                    acc
                },
                &combine,
            ),
            Model::ActorFor => {
                // Scatter activations fold into a reducer keyed by the
                // executing worker (same per-worker-partials shape as the
                // other pooled families).
                let reducer = tpm_sync::Reducer::new(self.threads, identity, combine);
                tpm_actors::scatter_for_indexed_cancel(
                    self.actors(),
                    range,
                    base,
                    token,
                    |w, chunk| reducer.with(w, |acc| body(chunk, acc)),
                );
                reducer.finish()
            }
            Model::ActorTask => {
                let reducer = tpm_sync::Reducer::new(self.threads, identity, combine);
                tpm_actors::recursive_for_indexed_cancel(
                    self.actors(),
                    range,
                    base,
                    token,
                    |w, chunk| reducer.with(w, |acc| body(chunk, acc)),
                );
                reducer.finish()
            }
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn run_for(
        exec: &Executor,
        model: Model,
        range: Range<usize>,
        body: &(impl Fn(Range<usize>) + Sync),
    ) {
        exec.try_parallel_for(model, range, &CancelToken::new(), body)
            .unwrap_or_else(|e| panic!("{model}: {e}"));
    }

    #[test]
    fn all_models_cover_the_range() {
        let exec = Executor::new(3);
        for model in Model::ALL {
            let flags: Vec<AtomicU64> = (0..101).map(|_| AtomicU64::new(0)).collect();
            run_for(&exec, model, 0..101, &|chunk| {
                for i in chunk {
                    flags[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            for (i, f) in flags.iter().enumerate() {
                assert_eq!(f.load(Ordering::Relaxed), 1, "{model} iteration {i}");
            }
        }
    }

    #[test]
    fn all_models_reduce_identically() {
        let exec = Executor::new(4);
        let expected: u64 = (0..5000u64).map(|i| i * 7).sum();
        for model in Model::ALL {
            let got = exec
                .try_parallel_reduce(
                    model,
                    0..5000,
                    &CancelToken::new(),
                    || 0u64,
                    |a, b| a + b,
                    |chunk, acc| {
                        for i in chunk {
                            *acc += (i as u64) * 7;
                        }
                    },
                )
                .unwrap();
            assert_eq!(got, expected, "{model}");
        }
    }

    #[test]
    fn executor_is_reusable_across_models() {
        let exec = Executor::new(2);
        for _ in 0..3 {
            for model in Model::ALL {
                let c = AtomicU64::new(0);
                run_for(&exec, model, 0..10, &|chunk| {
                    c.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                });
                assert_eq!(c.into_inner(), 10);
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_work() {
        let exec = Executor::new(2);
        let c = AtomicU64::new(0);
        exec.parallel_for(Model::OmpFor, 0..10, &|chunk| {
            c.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(c.into_inner(), 10);
        let sum = exec.parallel_reduce(
            Model::ActorFor,
            0..100,
            || 0u64,
            |a, b| a + b,
            |chunk, acc| {
                for i in chunk {
                    *acc += i as u64;
                }
            },
        );
        assert_eq!(sum, 4950);
    }

    #[test]
    fn registry_builds_every_family() {
        let exec = Executor::new(2);
        let families: Vec<Family> = exec.runtimes.iter().map(|r| r.family()).collect();
        assert_eq!(families, Family::ALL.to_vec());
        // Pooled stats cover every family with a persistent pool.
        let pooled: Vec<Family> = exec.pooled_stats().iter().map(|(f, _)| *f).collect();
        assert_eq!(
            pooled,
            vec![Family::OpenMp, Family::CilkPlus, Family::Actors]
        );
    }

    #[test]
    fn base_chunk_matches_paper_formula() {
        let exec = Executor::new(4);
        assert_eq!(exec.base_chunk(100), 25);
        assert_eq!(exec.base_chunk(2), 1);
    }

    #[test]
    fn zero_threads_is_bad_config_not_a_panic() {
        match Executor::builder().threads(0).try_build() {
            Err(ExecError::BadConfig(msg)) => assert!(msg.contains("thread count")),
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_token_yields_cancelled_for_every_model() {
        let exec = Executor::new(2);
        for model in Model::ALL {
            let token = CancelToken::new();
            token.cancel();
            let r = exec.try_parallel_for(model, 0..100, &token, &|_| unreachable!());
            assert_eq!(r, Err(ExecError::Cancelled), "{model} for");
            let r = exec.try_parallel_reduce(
                model,
                0..100,
                &token,
                || 0u64,
                |a, b| a + b,
                |_, _| unreachable!(),
            );
            assert_eq!(r, Err(ExecError::Cancelled), "{model} reduce");
        }
    }

    #[test]
    fn expired_deadline_yields_deadline_for_every_model() {
        let exec = Executor::new(2);
        for model in Model::ALL {
            let token = CancelToken::with_deadline(std::time::Duration::ZERO);
            std::thread::sleep(std::time::Duration::from_millis(2));
            let r = exec.try_parallel_for(model, 0..100, &token, &|_| {});
            assert_eq!(r, Err(ExecError::Deadline), "{model} for");
            let r = exec.try_parallel_reduce(
                model,
                0..100,
                &token,
                || 0u64,
                |a, b| a + b,
                |chunk, acc| *acc += chunk.len() as u64,
            );
            assert_eq!(r, Err(ExecError::Deadline), "{model} reduce");
        }
    }

    #[test]
    fn body_panic_yields_panic_error_and_executor_survives() {
        let exec = Executor::new(2);
        for model in Model::ALL {
            let token = CancelToken::new();
            let r = exec.try_parallel_for(model, 0..100, &token, &|chunk| {
                if chunk.contains(&50) {
                    panic!("body boom in {model}");
                }
            });
            match r {
                Err(ExecError::Panic(msg)) => {
                    assert!(msg.contains("body boom"), "{model}: {msg}")
                }
                other => panic!("{model}: expected Panic, got {other:?}"),
            }
            // The pools stay usable after containment.
            let hits = AtomicU64::new(0);
            run_for(&exec, model, 0..10, &|chunk| {
                hits.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            });
            assert_eq!(hits.into_inner(), 10, "{model} reuse after panic");
        }
    }

    #[test]
    fn reduce_body_panic_yields_panic_error_for_every_model() {
        let exec = Executor::new(2);
        for model in Model::ALL {
            let r = exec.try_parallel_reduce(
                model,
                0..100,
                &CancelToken::new(),
                || 0u64,
                |a, b| a + b,
                |chunk, _| {
                    if chunk.contains(&50) {
                        panic!("reduce boom");
                    }
                },
            );
            assert!(matches!(r, Err(ExecError::Panic(_))), "{model}: got {r:?}");
        }
    }
}
