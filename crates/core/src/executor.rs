//! A unified executor over the three runtimes.
//!
//! `Executor::new(p)` materializes a fork-join team and a work-stealing
//! runtime of `p` threads each (the C++11 model needs no persistent state),
//! and exposes the six variants' data-parallel loop and reduction through a
//! single interface so kernels and applications can be written once and run
//! under every [`Model`].
//!
//! Task-parallel *algorithms* (recursive decomposition, per-phase task
//! graphs) are inherently per-application; those use [`Executor::team`] and
//! [`Executor::worksteal`] directly, exactly as the paper wrote six bespoke
//! versions per benchmark.

use std::ops::Range;

use tpm_forkjoin::{Schedule, Team};
use tpm_rawthreads as raw;
use tpm_worksteal::{Grain, Runtime};

use crate::model::Model;

/// Holds one runtime instance per API family, all sized to the same thread
/// count, so a figure's six curves measure scheduling — not pool size.
pub struct Executor {
    threads: usize,
    team: Team,
    ws: Runtime,
}

impl Executor {
    /// Creates runtimes with `threads` threads each.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1);
        Self {
            threads,
            team: Team::new(threads),
            ws: Runtime::new(threads),
        }
    }

    /// The common thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Direct access to the OpenMP-analogue team (for task-parallel code).
    pub fn team(&self) -> &Team {
        &self.team
    }

    /// Direct access to the Cilk-analogue runtime (for task-parallel code).
    pub fn worksteal(&self) -> &Runtime {
        &self.ws
    }

    /// The chunk size the paper's manual/task chunkings use:
    /// `BASE = N / threads`.
    pub fn base_chunk(&self, n: usize) -> usize {
        raw::base_cutoff(n, self.threads)
    }

    /// Runs the data-parallel loop `body` over `range` under `model`'s
    /// distribution mechanism. `body` receives contiguous chunks.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::atomic::{AtomicU64, Ordering};
    /// use tpm_core::{Executor, Model};
    ///
    /// let exec = Executor::new(2);
    /// for model in Model::ALL {
    ///     let sum = AtomicU64::new(0);
    ///     exec.parallel_for(model, 0..100, &|chunk| {
    ///         sum.fetch_add(chunk.map(|i| i as u64).sum(), Ordering::Relaxed);
    ///     });
    ///     assert_eq!(sum.into_inner(), 4950, "{model}");
    /// }
    /// ```
    pub fn parallel_for<F>(&self, model: Model, range: Range<usize>, body: &F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let n = range.len();
        let base = self.base_chunk(n);
        match model {
            Model::OmpFor => {
                // Worksharing with the static schedule (the paper's setup for
                // all data-parallel comparisons).
                self.team.parallel_for_chunks(
                    self.threads,
                    Schedule::static_default(),
                    range,
                    body,
                );
            }
            Model::OmpTask => {
                // parallel + single + one task per BASE-sized chunk.
                self.team.parallel_with(self.threads, |ctx| {
                    ctx.single(|| {
                        ctx.task_scope(|s| {
                            let mut start = range.start;
                            while start < range.end {
                                let end = (start + base).min(range.end);
                                s.spawn(move |_| body(start..end));
                                start = end;
                            }
                        });
                    });
                });
            }
            Model::CilkFor => {
                // Recursive lazy splitting with Cilk's default grain.
                self.ws.install(|ctx| {
                    tpm_worksteal::par_for(ctx, range, Grain::Auto, body);
                });
            }
            Model::CilkSpawn => {
                // Explicitly spawned BASE-sized chunk tasks + sync.
                self.ws.install(|ctx| {
                    tpm_worksteal::scope(ctx, |s| {
                        let mut start = range.start;
                        while start < range.end {
                            let end = (start + base).min(range.end);
                            s.spawn(move |_| body(start..end));
                            start = end;
                        }
                    });
                });
            }
            Model::CxxThread => {
                raw::threads_for(self.threads, range, |_tid, chunk| body(chunk));
            }
            Model::CxxAsync => {
                raw::recursive_for(range, base, body);
            }
        }
    }

    /// Runs a data-parallel reduction under `model`: `body` folds each chunk
    /// into a `T` accumulator; partials combine with `combine` (associative).
    pub fn parallel_reduce<T, F, Id, Op>(
        &self,
        model: Model,
        range: Range<usize>,
        identity: Id,
        combine: Op,
        body: F,
    ) -> T
    where
        T: Send,
        Id: Fn() -> T + Send + Sync,
        Op: Fn(T, T) -> T + Send + Sync,
        F: Fn(Range<usize>, &mut T) + Sync,
    {
        let n = range.len();
        let base = self.base_chunk(n);
        match model {
            Model::OmpFor => self.team.parallel_for_reduce(
                self.threads,
                Schedule::static_default(),
                range,
                identity,
                combine,
                body,
            ),
            Model::OmpTask => {
                // Tasks accumulate into a reducer keyed by executing thread.
                let reducer = tpm_sync::Reducer::new(self.threads, identity, combine);
                self.team.parallel_with(self.threads, |ctx| {
                    ctx.single(|| {
                        ctx.task_scope(|s| {
                            let mut start = range.start;
                            while start < range.end {
                                let end = (start + base).min(range.end);
                                let reducer = &reducer;
                                let body = &body;
                                s.spawn(move |c| {
                                    reducer.with(c.thread_num(), |acc| body(start..end, acc));
                                });
                                start = end;
                            }
                        });
                    });
                });
                reducer.finish()
            }
            Model::CilkFor => {
                let body = &body; // shared borrow: Send because F: Sync
                self.ws.install(move |ctx| {
                    tpm_worksteal::par_for_reduce(
                        ctx,
                        range,
                        Grain::Auto,
                        identity,
                        combine,
                        |chunk, acc| body(chunk, acc),
                    )
                })
            }
            Model::CilkSpawn => {
                let reducer = tpm_sync::Reducer::new(self.threads, identity, combine);
                self.ws.install(|ctx| {
                    tpm_worksteal::scope(ctx, |s| {
                        let mut start = range.start;
                        while start < range.end {
                            let end = (start + base).min(range.end);
                            let reducer = &reducer;
                            let body = &body;
                            s.spawn(move |c| {
                                reducer.with(c.index(), |acc| body(start..end, acc));
                            });
                            start = end;
                        }
                    });
                });
                reducer.finish()
            }
            Model::CxxThread => raw::threads_for_reduce(
                self.threads,
                range,
                |_tid, chunk| {
                    let mut acc = identity();
                    body(chunk, &mut acc);
                    acc
                },
                combine,
                identity(),
            ),
            Model::CxxAsync => raw::recursive_reduce(
                range,
                base,
                &|chunk| {
                    let mut acc = identity();
                    body(chunk, &mut acc);
                    acc
                },
                &combine,
            ),
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn all_models_cover_the_range() {
        let exec = Executor::new(3);
        for model in Model::ALL {
            let flags: Vec<AtomicU64> = (0..101).map(|_| AtomicU64::new(0)).collect();
            exec.parallel_for(model, 0..101, &|chunk| {
                for i in chunk {
                    flags[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            for (i, f) in flags.iter().enumerate() {
                assert_eq!(f.load(Ordering::Relaxed), 1, "{model} iteration {i}");
            }
        }
    }

    #[test]
    fn all_models_reduce_identically() {
        let exec = Executor::new(4);
        let expected: u64 = (0..5000u64).map(|i| i * 7).sum();
        for model in Model::ALL {
            let got = exec.parallel_reduce(
                model,
                0..5000,
                || 0u64,
                |a, b| a + b,
                |chunk, acc| {
                    for i in chunk {
                        *acc += (i as u64) * 7;
                    }
                },
            );
            assert_eq!(got, expected, "{model}");
        }
    }

    #[test]
    fn executor_is_reusable_across_models() {
        let exec = Executor::new(2);
        for _ in 0..3 {
            for model in Model::ALL {
                let c = AtomicU64::new(0);
                exec.parallel_for(model, 0..10, &|chunk| {
                    c.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                });
                assert_eq!(c.into_inner(), 10);
            }
        }
    }

    #[test]
    fn base_chunk_matches_paper_formula() {
        let exec = Executor::new(4);
        assert_eq!(exec.base_chunk(100), 25);
        assert_eq!(exec.base_chunk(2), 1);
    }
}
