//! Execution errors for the fallible (`try_`) executor API.
//!
//! The panicking [`Executor`](crate::Executor) methods predate the job
//! service; a server cannot afford a panic (or a wedged loop) per bad
//! request, so the `try_` entry points fold every way an execution can stop
//! early into one value the caller can match on: cooperative cancellation,
//! deadline expiry, a panicking body, or a request that was wrong before any
//! thread started.

use tpm_sync::CancelReason;

/// Why an execution returned without completing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "an ExecError says the work did NOT complete"]
pub enum ExecError {
    /// The [`CancelToken`](tpm_sync::CancelToken) was cancelled explicitly.
    Cancelled,
    /// The token's deadline passed before the work finished.
    Deadline,
    /// The loop body (or a task) panicked; the payload's message, when it
    /// was a string. The runtimes remain usable afterwards.
    Panic(String),
    /// The request could not be started at all (unknown kernel/model/variant
    /// name, zero size, threads out of range, …).
    BadConfig(String),
}

impl ExecError {
    /// The wire/CLI error code (`deadline`, `cancelled`, `panic`,
    /// `bad_config`) used by the serve protocol and reports.
    pub fn code(&self) -> &'static str {
        match self {
            ExecError::Cancelled => "cancelled",
            ExecError::Deadline => "deadline",
            ExecError::Panic(_) => "panic",
            ExecError::BadConfig(_) => "bad_config",
        }
    }
}

impl From<CancelReason> for ExecError {
    fn from(r: CancelReason) -> Self {
        match r {
            CancelReason::Cancelled => ExecError::Cancelled,
            CancelReason::DeadlineExpired => ExecError::Deadline,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Cancelled => f.write_str("cancelled"),
            ExecError::Deadline => f.write_str("deadline expired"),
            ExecError::Panic(msg) => write!(f, "execution panicked: {msg}"),
            ExecError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Extracts a human-readable message from a `catch_unwind` payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_reasons_convert() {
        assert_eq!(
            ExecError::from(CancelReason::Cancelled),
            ExecError::Cancelled
        );
        assert_eq!(
            ExecError::from(CancelReason::DeadlineExpired),
            ExecError::Deadline
        );
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(ExecError::Deadline.code(), "deadline");
        assert_eq!(ExecError::Cancelled.code(), "cancelled");
        assert_eq!(ExecError::Panic(String::new()).code(), "panic");
        assert_eq!(ExecError::BadConfig(String::new()).code(), "bad_config");
    }

    #[test]
    fn panic_messages_extract() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(p), "boom 7");
        let p = std::panic::catch_unwind(|| panic!("static")).unwrap_err();
        assert_eq!(panic_message(p), "static");
    }
}
