//! Floating-point comparison with relative-epsilon and ULP tolerance.
//!
//! The kernel verification checks originally compared against the sequential
//! reference with exact equality or tiny absolute bounds. That breaks the
//! moment a kernel body reassociates a floating-point sum — which is exactly
//! what the [`crate::KernelVariant::Optimized`] data paths do (multi-
//! accumulator reductions, blocked matmul, tiled stencils). These helpers
//! express "equal up to reassociation": a relative-epsilon test with an ULP
//! (units-in-the-last-place) fallback for values too close to zero for a
//! relative bound to be meaningful.

/// Distance between `a` and `b` in units of last place, or `None` when
/// either is NaN.
///
/// Maps the IEEE-754 bit patterns onto a monotone integer line (negative
/// floats are reflected below zero) so the difference counts representable
/// doubles between the two values; `+0.0` and `-0.0` are 0 apart.
pub fn ulp_distance(a: f64, b: f64) -> Option<u64> {
    if a.is_nan() || b.is_nan() {
        return None;
    }
    // Lexicographic reinterpretation: positive floats keep their bits,
    // negative floats map to `MIN - bits` so ordering matches the reals.
    fn ordered(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    }
    Some(ordered(a).abs_diff(ordered(b)))
}

/// ULP slack granted on top of the relative bound: differences this small
/// are indistinguishable from a single rounding decision.
const ULP_SLACK: u64 = 4;

/// True when `a` and `b` agree to within `rel_tol` (relative to the larger
/// magnitude) or to within [`ULP_SLACK`] representable doubles.
///
/// Exactly equal values (including equal infinities) always pass; NaN never
/// does. The ULP fallback makes the check meaningful near zero, where a
/// relative bound degenerates.
pub fn rel_close(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let diff = (a - b).abs();
    if diff <= rel_tol * a.abs().max(b.abs()) {
        return true;
    }
    matches!(ulp_distance(a, b), Some(d) if d <= ULP_SLACK)
}

/// Largest elementwise relative difference `|a-b| / max(|a|,|b|)` over the
/// pair of slices (0.0 for exactly equal elements). Panics if lengths
/// differ; returns infinity when an element pair is NaN/non-finite and
/// unequal.
pub fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_rel_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            if x == y {
                0.0
            } else if !x.is_finite() || !y.is_finite() {
                f64::INFINITY
            } else {
                (x - y).abs() / x.abs().max(y.abs())
            }
        })
        .fold(0.0, f64::max)
}

/// Verifies two slices elementwise with [`rel_close`]; `Err` carries the
/// worst offending index with values, relative difference, and ULP distance
/// — the kernel claim checks' error format.
pub fn slices_close(a: &[f64], b: &[f64], rel_tol: f64) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("length mismatch: {} vs {}", a.len(), b.len()));
    }
    let mut worst: Option<(usize, f64)> = None;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        if !rel_close(x, y, rel_tol) {
            let rel = if x.is_finite() && y.is_finite() {
                (x - y).abs() / x.abs().max(y.abs())
            } else {
                f64::INFINITY
            };
            if worst.is_none_or(|(_, w)| rel > w) {
                worst = Some((i, rel));
            }
        }
    }
    match worst {
        None => Ok(()),
        Some((i, rel)) => Err(format!(
            "[{i}] {:e} vs {:e}: rel diff {rel:.3e} > {rel_tol:.1e} ({} ulp)",
            a[i],
            b[i],
            ulp_distance(a[i], b[i]).map_or("NaN".into(), |d| d.to_string()),
        )),
    }
}

/// [`slices_close`] for scalars, same tolerance semantics.
pub fn scalar_close(a: f64, b: f64, rel_tol: f64) -> Result<(), String> {
    if rel_close(a, b, rel_tol) {
        Ok(())
    } else {
        Err(format!(
            "{a:e} vs {b:e}: rel diff {:.3e} > {rel_tol:.1e}",
            (a - b).abs() / a.abs().max(b.abs()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_counts_representable_steps() {
        assert_eq!(ulp_distance(1.0, 1.0), Some(0));
        assert_eq!(
            ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)),
            Some(1)
        );
        assert_eq!(ulp_distance(0.0, -0.0), Some(0));
        // Across zero: smallest positive and smallest negative subnormal are
        // two steps apart (one to each side of ±0).
        let tiny = f64::from_bits(1);
        assert_eq!(ulp_distance(tiny, -tiny), Some(2));
        assert_eq!(ulp_distance(f64::NAN, 1.0), None);
    }

    #[test]
    fn rel_close_accepts_reassociation_noise() {
        // A reassociated sum differs in the low bits only.
        let exact = 0.123456789_f64;
        let noisy = exact * (1.0 + 1e-14);
        assert!(rel_close(exact, noisy, 1e-12));
        assert!(!rel_close(exact, exact * 1.001, 1e-12));
    }

    #[test]
    fn rel_close_near_zero_uses_ulps() {
        let tiny = f64::from_bits(3);
        let tiny2 = f64::from_bits(5);
        // Relative difference is large (0.4) but they are 2 ulps apart.
        assert!(rel_close(tiny, tiny2, 1e-12));
    }

    #[test]
    fn rel_close_handles_non_finite() {
        assert!(rel_close(f64::INFINITY, f64::INFINITY, 1e-12));
        assert!(!rel_close(f64::INFINITY, 1.0, 1e-12));
        assert!(!rel_close(f64::NAN, f64::NAN, 1e-12));
    }

    #[test]
    fn slices_close_reports_worst_index() {
        let a = [1.0, 2.0, 3.0];
        let ok = [1.0, 2.0 * (1.0 + 1e-15), 3.0];
        assert!(slices_close(&a, &ok, 1e-12).is_ok());
        let bad = [1.0, 2.1, 3.0];
        let err = slices_close(&a, &bad, 1e-12).unwrap_err();
        assert!(err.starts_with("[1]"), "{err}");
        assert!(slices_close(&a, &a[..2], 1e-12).is_err());
    }

    #[test]
    fn max_rel_diff_matches_definition() {
        assert_eq!(max_rel_diff(&[1.0, -2.0], &[1.0, -2.0]), 0.0);
        let d = max_rel_diff(&[100.0], &[101.0]);
        assert!((d - 1.0 / 101.0).abs() < 1e-15);
    }

    #[test]
    fn scalar_close_formats_errors() {
        assert!(scalar_close(1.0, 1.0 + 1e-15, 1e-12).is_ok());
        assert!(scalar_close(1.0, 2.0, 1e-12)
            .unwrap_err()
            .contains("rel diff"));
    }
}
