//! Kernel data-path variants.
//!
//! The paper's kernels are written as plain scalar loops — that is what the
//! 2017 sources measured, and the *reference* bodies here preserve them
//! exactly. But scheduling overhead only reads true against compute that
//! runs at hardware speed (Memeti et al., arXiv:1704.05316), so every
//! data-parallel kernel also carries an *optimized* body: unrolled,
//! accumulator-split inner loops the compiler auto-vectorizes, cache-blocked
//! matmul, tiled stencil sweeps. [`KernelVariant`] selects between them at
//! run time; both variants run under all six [`crate::Model`]s.

/// Selects between a kernel's paper-faithful scalar body and its
/// data-path-optimized body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelVariant {
    /// The paper's scalar, unblocked loop bodies (the default — figures
    /// regenerate exactly as the 2017 sources wrote them).
    #[default]
    Reference,
    /// Vectorization-friendly bodies: unrolled multi-accumulator inner
    /// loops, cache-blocked matmul, tiled stencil sweeps.
    Optimized,
}

impl KernelVariant {
    /// Both variants, reference first.
    pub const ALL: [KernelVariant; 2] = [KernelVariant::Reference, KernelVariant::Optimized];

    /// The CLI/JSON spelling.
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Reference => "reference",
            KernelVariant::Optimized => "optimized",
        }
    }

    /// Parses the CLI spelling (`reference` / `optimized`).
    pub fn parse(s: &str) -> Option<KernelVariant> {
        match s {
            "reference" => Some(KernelVariant::Reference),
            "optimized" => Some(KernelVariant::Optimized),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for v in KernelVariant::ALL {
            assert_eq!(KernelVariant::parse(v.name()), Some(v));
        }
        assert_eq!(KernelVariant::parse("fast"), None);
    }

    #[test]
    fn default_is_reference() {
        assert_eq!(KernelVariant::default(), KernelVariant::Reference);
    }
}
