//! Figure/series reporting: the harness prints the same rows the paper's
//! figures plot (execution time vs. thread count per variant).

/// One curve of a figure: `(threads, seconds)` points for one variant.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (usually a `Model` name).
    pub label: String,
    /// `(thread count, execution time in seconds)` samples (the median when
    /// the point was measured with repetitions).
    pub points: Vec<(usize, f64)>,
    /// `(thread count, stddev in seconds)` spread of the repetitions behind
    /// each point. Empty when only medians were recorded.
    pub stddevs: Vec<(usize, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
            stddevs: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, threads: usize, seconds: f64) {
        self.points.push((threads, seconds));
    }

    /// Appends a sample with its repetition spread.
    pub fn push_with_stddev(&mut self, threads: usize, median_s: f64, stddev_s: f64) {
        self.points.push((threads, median_s));
        self.stddevs.push((threads, stddev_s));
    }

    /// Stddev at a specific thread count, if recorded.
    pub fn stddev_at(&self, threads: usize) -> Option<f64> {
        self.stddevs
            .iter()
            .find(|(t, _)| *t == threads)
            .map(|&(_, s)| s)
    }

    /// Time at a specific thread count, if sampled.
    pub fn at(&self, threads: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(t, _)| *t == threads)
            .map(|&(_, s)| s)
    }

    /// Speedup curve relative to this series' own 1-thread point.
    pub fn speedup(&self) -> Vec<(usize, f64)> {
        let base = self
            .at(1)
            .unwrap_or_else(|| self.points.first().map(|&(_, s)| s).unwrap_or(f64::NAN));
        self.points.iter().map(|&(t, s)| (t, base / s)).collect()
    }
}

/// A figure: a titled bundle of per-variant series over a common thread axis.
#[derive(Debug, Clone, Default)]
pub struct Figure {
    /// Figure title, e.g. `"Fig.1 Axpy (N=100M)"`.
    pub title: String,
    /// One series per variant.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            series: Vec::new(),
        }
    }

    /// The sorted union of thread counts across series.
    pub fn thread_axis(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(t, _)| t))
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// The label of the fastest variant at `threads`.
    pub fn winner_at(&self, threads: usize) -> Option<&str> {
        self.series
            .iter()
            .filter_map(|s| s.at(threads).map(|v| (s.label.as_str(), v)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, _)| l)
    }

    /// The label of the slowest variant at `threads`.
    pub fn loser_at(&self, threads: usize) -> Option<&str> {
        self.series
            .iter()
            .filter_map(|s| s.at(threads).map(|v| (s.label.as_str(), v)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, _)| l)
    }

    /// Renders the figure as an aligned text table (threads down, variants
    /// across), in seconds.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:>8}", "threads");
        for s in &self.series {
            let _ = write!(out, "{:>14}", s.label);
        }
        let _ = writeln!(out);
        for t in self.thread_axis() {
            let _ = write!(out, "{t:>8}");
            for s in &self.series {
                match s.at(t) {
                    Some(v) => {
                        let _ = write!(out, "{v:>14.6}");
                    }
                    None => {
                        let _ = write!(out, "{:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// One model's row in a [`ProfileTable`]: wall time plus the scheduler-event
/// counts observed while it ran.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileRow {
    /// Variant label (a `Model` name).
    pub model: String,
    /// Wall time of the profiled run, in seconds.
    pub seconds: f64,
    /// Tasks spawned.
    pub spawned: u64,
    /// Tasks executed.
    pub executed: u64,
    /// Successful steals.
    pub steals: u64,
    /// Failed steal attempts.
    pub failed_steals: u64,
    /// Loop chunks dispatched.
    pub chunks: u64,
    /// Shared-counter claim transactions for dynamic/guided loops.
    pub loop_claims: u64,
    /// Barrier wait episodes.
    pub barrier_waits: u64,
    /// Total nanoseconds spent waiting at barriers.
    pub barrier_wait_ns: u64,
    /// Trace events captured (0 when tracing was off).
    pub trace_events: u64,
    /// Distinct workers that recorded trace events.
    pub trace_workers: usize,
}

/// A side-by-side scheduler-behavior comparison across models for one kernel
/// (the `profile` experiment's output).
#[derive(Debug, Clone, Default)]
pub struct ProfileTable {
    /// Table title, e.g. `"profile: sum (4 threads)"`.
    pub title: String,
    /// One row per profiled model.
    pub rows: Vec<ProfileRow>,
}

impl ProfileTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: ProfileRow) {
        self.rows.push(row);
    }

    /// Renders the table as aligned text (models down, metrics across).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(
            out,
            "{:>12} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>9} {:>11} {:>8} {:>7}",
            "model",
            "seconds",
            "spawned",
            "executed",
            "steals",
            "failed",
            "chunks",
            "claims",
            "barriers",
            "barrier_ms",
            "events",
            "workers"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>12} {:>10.6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>9} {:>11.3} {:>8} {:>7}",
                r.model,
                r.seconds,
                r.spawned,
                r.executed,
                r.steals,
                r.failed_steals,
                r.chunks,
                r.loop_claims,
                r.barrier_waits,
                r.barrier_wait_ns as f64 / 1e6,
                r.trace_events,
                r.trace_workers,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let mut f = Figure::new("test");
        let mut a = Series::new("a");
        a.push(1, 4.0);
        a.push(2, 2.0);
        let mut b = Series::new("b");
        b.push(1, 8.0);
        b.push(2, 1.0);
        f.series = vec![a, b];
        f
    }

    #[test]
    fn speedup_is_relative_to_one_thread() {
        let f = sample_figure();
        assert_eq!(f.series[0].speedup(), vec![(1, 1.0), (2, 2.0)]);
        assert_eq!(f.series[1].speedup(), vec![(1, 1.0), (2, 8.0)]);
    }

    #[test]
    fn winners_and_losers() {
        let f = sample_figure();
        assert_eq!(f.winner_at(1), Some("a"));
        assert_eq!(f.loser_at(1), Some("b"));
        assert_eq!(f.winner_at(2), Some("b"));
        assert_eq!(f.loser_at(2), Some("a"));
    }

    #[test]
    fn table_contains_all_labels_and_counts() {
        let f = sample_figure();
        let t = f.to_table();
        assert!(t.contains("test"));
        assert!(t.contains('a') && t.contains('b'));
        assert_eq!(f.thread_axis(), vec![1, 2]);
    }

    #[test]
    fn profile_table_renders_rows() {
        let mut t = ProfileTable::new("profile: sum");
        t.push(ProfileRow {
            model: "omp_for".into(),
            seconds: 0.001,
            chunks: 12,
            barrier_waits: 4,
            barrier_wait_ns: 2_000_000,
            trace_events: 40,
            trace_workers: 4,
            ..Default::default()
        });
        let s = t.to_table();
        assert!(s.contains("profile: sum"));
        assert!(s.contains("omp_for"));
        assert!(s.contains("barrier_ms"));
        assert!(s.contains("2.000"));
    }

    #[test]
    fn missing_points_render_as_dash() {
        let mut f = Figure::new("gap");
        let mut a = Series::new("a");
        a.push(1, 1.0);
        let mut b = Series::new("b");
        b.push(2, 1.0);
        f.series = vec![a, b];
        assert!(f.to_table().contains('-'));
    }
}
