//! Wall-clock measurement helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Times a single invocation of `f`.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

/// Runs `f` `reps` times (after `warmup` discarded runs) and returns the
/// median duration — robust to scheduler noise on oversubscribed hosts.
pub fn median_time(warmup: usize, reps: usize, mut f: impl FnMut()) -> Duration {
    assert!(reps >= 1);
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs `f` `reps` times (after `warmup` discarded runs) and returns every
/// timed sample, unsorted. Callers derive whichever statistic they need —
/// [`median_of`] for the figure tables, [`stddev_of`] for the machine-
/// readable benchmark output.
pub fn sample_times(warmup: usize, reps: usize, mut f: impl FnMut()) -> Vec<Duration> {
    assert!(reps >= 1);
    for _ in 0..warmup {
        f();
    }
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect()
}

/// Median of a sample set (the smaller-middle element for even counts).
pub fn median_of(samples: &[Duration]) -> Duration {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Population standard deviation of a sample set, in seconds.
pub fn stddev_of(samples: &[Duration]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let var = secs.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / secs.len() as f64;
    var.sqrt()
}

/// Formats a duration in engineering units (`ns`/`µs`/`ms`/`s`).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result() {
        let (d, r) = time(|| 40 + 2);
        assert_eq!(r, 42);
        assert!(d.as_nanos() > 0 || d.is_zero()); // just sanity
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut calls = 0;
        let d = median_time(1, 5, || {
            calls += 1;
        });
        assert_eq!(calls, 6);
        let _ = d;
    }

    #[test]
    fn sample_stats() {
        let samples = vec![
            Duration::from_millis(10),
            Duration::from_millis(30),
            Duration::from_millis(20),
        ];
        assert_eq!(median_of(&samples), Duration::from_millis(20));
        let sd = stddev_of(&samples);
        assert!((sd - 0.008165).abs() < 1e-4, "{sd}");
        assert_eq!(stddev_of(&samples[..1]), 0.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.500 s");
        assert!(fmt_duration(Duration::from_nanos(1500)).ends_with("µs"));
    }
}
