//! Wall-clock measurement helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Times a single invocation of `f`.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let r = f();
    (start.elapsed(), r)
}

/// Runs `f` `reps` times (after `warmup` discarded runs) and returns the
/// median duration — robust to scheduler noise on oversubscribed hosts.
pub fn median_time(warmup: usize, reps: usize, mut f: impl FnMut()) -> Duration {
    assert!(reps >= 1);
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Formats a duration in engineering units (`ns`/`µs`/`ms`/`s`).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result() {
        let (d, r) = time(|| 40 + 2);
        assert_eq!(r, 42);
        assert!(d.as_nanos() > 0 || d.is_zero()); // just sanity
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut calls = 0;
        let d = median_time(1, 5, || {
            calls += 1;
        });
        assert_eq!(calls, 6);
        let _ = d;
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.500 s");
        assert!(fmt_duration(Duration::from_nanos(1500)).ends_with("µs"));
    }
}
