//! Thread sweeps: run a workload at each thread count and collect a
//! [`Figure`] — the experimental procedure behind every figure in the paper.

use crate::report::{Figure, Series};
use crate::timing::{median_of, median_time, sample_times, stddev_of};
use crate::{Executor, Model};

/// A thread-sweep configuration.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Thread counts to visit, in order.
    pub threads: Vec<usize>,
    /// Timed repetitions per point (median is reported).
    pub reps: usize,
    /// Discarded warm-up runs per point.
    pub warmup: usize,
}

impl Sweep {
    /// A sweep over the given thread counts with median-of-3 timing.
    pub fn over(threads: impl Into<Vec<usize>>) -> Self {
        Self {
            threads: threads.into(),
            reps: 3,
            warmup: 1,
        }
    }

    /// Sets the repetition count.
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// Times `run(executor, model)` for every `(threads, model)` pair and
    /// assembles the figure: one series per model, one point per thread
    /// count. Executors are constructed once per thread count and shared by
    /// all models at that point (as the paper's per-machine runs do).
    pub fn figure<F>(&self, title: &str, models: &[Model], mut run: F) -> Figure
    where
        F: FnMut(&Executor, Model),
    {
        let mut fig = Figure::new(title);
        let mut series: Vec<Series> = models.iter().map(|m| Series::new(m.name())).collect();
        for &p in &self.threads {
            let exec = Executor::new(p);
            for (m, s) in models.iter().zip(series.iter_mut()) {
                let samples = sample_times(self.warmup, self.reps, || run(&exec, *m));
                s.push_with_stddev(p, median_of(&samples).as_secs_f64(), stddev_of(&samples));
            }
        }
        fig.series = series;
        fig
    }

    /// Single-series sweep of an arbitrary runnable (used for non-model
    /// experiments like the hyperthread extension).
    pub fn series<F>(&self, label: &str, mut run: F) -> Series
    where
        F: FnMut(usize),
    {
        let mut s = Series::new(label);
        for &p in &self.threads {
            let d = median_time(self.warmup, self.reps, || run(p));
            s.push(p, d.as_secs_f64());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn figure_has_one_series_per_model_and_point_per_thread_count() {
        let sweep = Sweep::over(vec![1, 2]).reps(1);
        let calls = AtomicU64::new(0);
        let fig = sweep.figure("t", &[Model::OmpFor, Model::CilkFor], |exec, model| {
            calls.fetch_add(1, Ordering::Relaxed);
            exec.try_parallel_for(model, 0..64, &tpm_sync::CancelToken::new(), &|_| {})
                .unwrap();
        });
        assert_eq!(fig.series.len(), 2);
        assert!(fig.series.iter().all(|s| s.points.len() == 2));
        // (1 warmup + 1 rep) × 2 models × 2 thread counts
        assert_eq!(calls.into_inner(), 8);
        assert_eq!(fig.thread_axis(), vec![1, 2]);
    }

    #[test]
    fn series_sweep_runs_at_each_count() {
        let sweep = Sweep::over(vec![1, 3]).reps(2);
        let seen = std::sync::Mutex::new(Vec::new());
        let s = sweep.series("x", |p| seen.lock().unwrap().push(p));
        assert_eq!(s.points.len(), 2);
        // warmup + 2 reps per point
        assert_eq!(*seen.lock().unwrap(), vec![1, 1, 1, 3, 3, 3]);
    }
}
