//! # tpm-core — the unified comparison API
//!
//! The comparison framework of the `threadcmp` workspace (after *Comparison
//! of Threading Programming Models*, 2017): a single interface over the
//! four runtimes so each benchmark can be expressed once and measured under
//! all eight variants.
//!
//! * [`Family`] / [`Model`] — the registry: four families (OpenMP,
//!   Cilk Plus, C++11, Actors), two variants each (omp_for, omp_task,
//!   cilk_for, cilk_spawn, cxx_thread, cxx_async, actor_for, actor_task),
//!   with family and pattern metadata. This is the *single* enumeration
//!   point — call sites derive their lists from [`Family::ALL`] /
//!   [`Family::variants`] / [`Model::ALL`] / [`Model::parse_list`].
//! * [`Executor`] — one runtime instance per family ([`FamilyRuntime`],
//!   built by [`Family::build_runtime`]) at a common thread count.
//! * [`timing`] — median-of-N wall-clock measurement.
//! * [`Series`] / [`Figure`] — the paper's figure data (time vs threads per
//!   variant), with winner/loser queries used by the reproduction checks.
//! * [`KernelVariant`] — reference (paper-faithful scalar) vs optimized
//!   (vectorization-friendly / cache-blocked) kernel data paths.
//! * [`approx`] — relative-epsilon/ULP comparison used by the kernel claim
//!   checks once optimized bodies reassociate floating-point sums.
//! * [`ExecError`] + [`Executor::try_parallel_for`] /
//!   [`Executor::try_parallel_reduce`] — the fallible, cancellable execution
//!   path; [`job`] — named job dispatch ([`JobSpec`] → [`JobResult`]) used by
//!   the `tpm-serve` frontend.
//!
//! ```
//! use tpm_core::{Executor, Model};
//! use tpm_sync::CancelToken;
//!
//! let exec = Executor::new(2);
//! let sum = exec.try_parallel_reduce(
//!     Model::OmpFor,
//!     0..100,
//!     &CancelToken::new(),
//!     || 0u64,
//!     |a, b| a + b,
//!     |chunk, acc| for i in chunk { *acc += i as u64 },
//! );
//! assert_eq!(sum, Ok(4950));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod approx;
mod error;
mod executor;
pub mod job;
mod model;
pub mod report;
pub mod sweep;
pub mod timing;
mod variant;

pub use error::{panic_message, ExecError};
pub use executor::{Executor, ExecutorBuilder, FamilyRuntime};
pub use job::{JobCtx, JobRegistry, JobResult, JobSpec};
pub use model::{Family, Model, Pattern};
pub use report::{Figure, ProfileRow, ProfileTable, Series};
pub use sweep::Sweep;
pub use variant::KernelVariant;
