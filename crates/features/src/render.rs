//! Text renderers that regenerate the paper's three tables.

use crate::api::Api;
use crate::tables::{memory_sync, misc, parallelism};

/// Renders a table given column headers and a per-API row extractor.
fn render(title: &str, headers: &[&str], row: impl Fn(Api) -> Vec<String>) -> String {
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(Api::ALL.len() + 1);
    let mut head = vec![String::new()];
    head.extend(headers.iter().map(|h| h.to_string()));
    rows.push(head);
    for api in Api::ALL {
        let mut r = vec![api.name().to_string()];
        r.extend(row(api));
        rows.push(r);
    }
    // Column widths.
    let cols = rows[0].len();
    let widths: Vec<usize> = (0..cols)
        .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, r) in rows.iter().enumerate() {
        for (c, cell) in r.iter().enumerate() {
            out.push_str("| ");
            out.push_str(cell);
            out.push_str(&" ".repeat(widths[c] - cell.len() + 1));
        }
        out.push_str("|\n");
        if i == 0 {
            for w in &widths {
                out.push('|');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("|\n");
        }
    }
    out
}

/// Regenerates Table I ("Comparison of Parallelism").
pub fn table1() -> String {
    render(
        "TABLE I: Comparison of Parallelism",
        &[
            "Data parallelism",
            "Async task parallelism",
            "Data/event-driven",
            "Offloading",
        ],
        |api| {
            let r = parallelism(api);
            vec![
                r.data.text(),
                r.task.text(),
                r.event.text(),
                r.offload.text(),
            ]
        },
    )
}

/// Regenerates Table II ("Comparison of Abstractions of Memory Hierarchy and
/// Synchronizations").
pub fn table2() -> String {
    render(
        "TABLE II: Comparison of Abstractions of Memory Hierarchy and Synchronizations",
        &[
            "Abstraction of memory hierarchy",
            "Data/computation binding",
            "Explicit data map/movement",
            "Barrier",
            "Reduction",
            "Join",
        ],
        |api| {
            let r = memory_sync(api);
            vec![
                r.mem_abstraction.text(),
                r.binding.text(),
                r.movement.text(),
                r.barrier.text(),
                r.reduction.text(),
                r.join.text(),
            ]
        },
    )
}

/// Regenerates Table III ("Comparison of Mutual Exclusions and Others").
pub fn table3() -> String {
    render(
        "TABLE III: Comparison of Mutual Exclusions and Others",
        &[
            "Mutual exclusion",
            "Language or library",
            "Error handling",
            "Tool support",
        ],
        |api| {
            let r = misc(api);
            vec![
                r.mutual_exclusion.text(),
                r.language.text(),
                r.error_handling.text(),
                r.tools.text(),
            ]
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_contain_all_apis() {
        for t in [table1(), table2(), table3()] {
            for api in Api::ALL {
                assert!(t.contains(api.name()), "{t}");
            }
        }
    }

    #[test]
    fn table1_has_known_cells() {
        let t = table1();
        assert!(t.contains("cilk_spawn/cilk_sync"));
        assert!(t.contains("depend (in/out/inout)"));
        assert!(t.contains("pthread create/join"));
    }

    #[test]
    fn table2_has_known_cells() {
        let t = table2();
        assert!(t.contains("OMP_PLACES"));
        assert!(t.contains("reducers"));
        assert!(t.contains("affinity partitioner"));
    }

    #[test]
    fn table3_has_known_cells() {
        let t = table3();
        assert!(t.contains("omp cancel"));
        assert!(t.contains("Cilkscreen, Cilkview"));
        assert!(t.contains("pthread mutex, pthread cond"));
    }

    #[test]
    fn rows_and_separator_are_well_formed() {
        let t = table1();
        let lines: Vec<&str> = t.lines().collect();
        // Title + header + separator + 8 API rows.
        assert_eq!(lines.len(), 11);
        assert!(lines[2].starts_with("|-"));
    }
}
