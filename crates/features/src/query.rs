//! Derived queries over the feature matrices — the quantitative form of the
//! paper's §III-A prose ("OpenMP provides the most comprehensive set of
//! features…").

use crate::api::Api;
use crate::tables::{memory_sync, misc, parallelism};

/// Number of feature-matrix cells (across all three tables) an API supports.
pub fn supported_count(api: Api) -> usize {
    let p = parallelism(api);
    let m = memory_sync(api);
    let o = misc(api);
    [
        p.data.supported(),
        p.task.supported(),
        p.event.supported(),
        p.offload.supported(),
        m.mem_abstraction.supported(),
        m.binding.supported(),
        m.movement.supported(),
        m.barrier.supported(),
        m.reduction.supported(),
        m.join.supported(),
        o.mutual_exclusion.supported(),
        o.language.supported(),
        o.error_handling.supported(),
        o.tools.supported(),
    ]
    .iter()
    .filter(|&&b| b)
    .count()
}

/// Total number of feature columns compared.
pub const TOTAL_FEATURES: usize = 14;

/// All APIs ranked by supported-feature count, descending (ties keep table
/// order).
pub fn ranking() -> Vec<(Api, usize)> {
    let mut v: Vec<(Api, usize)> = Api::ALL.iter().map(|&a| (a, supported_count(a))).collect();
    v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    v
}

/// APIs that can target an accelerator device (offloading direction
/// includes "device").
pub fn device_capable() -> Vec<Api> {
    Api::ALL
        .iter()
        .copied()
        .filter(|&a| parallelism(a).offload.text().contains("device"))
        .collect()
}

/// APIs providing all three synchronization columns of Table II (barrier,
/// reduction, join).
pub fn full_synchronization() -> Vec<Api> {
    Api::ALL
        .iter()
        .copied()
        .filter(|&a| {
            let m = memory_sync(a);
            m.barrier.supported() && m.reduction.supported() && m.join.supported()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §III-A: "OpenMP is a more comprehensive standard that supports a wide
    /// variety of features" — it must top the ranking.
    #[test]
    fn openmp_tops_the_ranking() {
        let ranking = ranking();
        assert_eq!(ranking[0].0, Api::OpenMp);
        assert!(ranking[0].1 > ranking[1].1, "strictly most comprehensive");
    }

    #[test]
    fn counts_are_within_bounds() {
        for api in Api::ALL {
            let c = supported_count(api);
            assert!(c <= TOTAL_FEATURES, "{api}: {c}");
            assert!(c >= 3, "{api} supports at least task/mutex/language");
        }
    }

    /// The accelerator-capable set per Table I.
    #[test]
    fn device_capable_set() {
        let d = device_capable();
        assert_eq!(d, vec![Api::Cuda, Api::OpenAcc, Api::OpenCl, Api::OpenMp]);
    }

    /// Only OpenMP and Cilk Plus cover barrier + reduction + join — and
    /// Cilk's barrier cell is the *implicit* `cilk_for` one only, so OpenMP
    /// is the sole API with an explicit construct in all three columns.
    #[test]
    fn full_synchronization_set() {
        assert_eq!(full_synchronization(), vec![Api::CilkPlus, Api::OpenMp]);
        assert!(memory_sync(Api::CilkPlus)
            .barrier
            .text()
            .contains("implicit"));
    }
}
