//! The eight threading APIs the paper compares (§III).

/// A threading programming API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Api {
    /// Intel Cilk Plus.
    CilkPlus,
    /// Nvidia CUDA.
    Cuda,
    /// C++11 standard threads.
    Cxx11,
    /// OpenACC.
    OpenAcc,
    /// OpenCL.
    OpenCl,
    /// OpenMP.
    OpenMp,
    /// POSIX threads.
    PThreads,
    /// Intel Threading Building Blocks.
    Tbb,
}

impl Api {
    /// All compared APIs, in the paper's table row order.
    pub const ALL: [Api; 8] = [
        Api::CilkPlus,
        Api::Cuda,
        Api::Cxx11,
        Api::OpenAcc,
        Api::OpenCl,
        Api::OpenMp,
        Api::PThreads,
        Api::Tbb,
    ];

    /// Display name as printed in the tables.
    pub fn name(self) -> &'static str {
        match self {
            Api::CilkPlus => "Cilk Plus",
            Api::Cuda => "CUDA",
            Api::Cxx11 => "C++11",
            Api::OpenAcc => "OpenACC",
            Api::OpenCl => "OpenCL",
            Api::OpenMp => "OpenMP",
            Api::PThreads => "PThread",
            Api::Tbb => "TBB",
        }
    }
}

impl std::fmt::Display for Api {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A feature-matrix cell: unsupported, not applicable, or supported via a
/// specific interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// The paper's "x": not supported.
    No,
    /// Not applicable (with the reason, e.g. "host only").
    NA(&'static str),
    /// Supported, via the quoted interface(s).
    Yes(&'static str),
}

impl Cell {
    /// True for [`Cell::Yes`].
    pub fn supported(self) -> bool {
        matches!(self, Cell::Yes(_))
    }

    /// The cell text as the paper prints it.
    pub fn text(self) -> String {
        match self {
            Cell::No => "x".to_string(),
            Cell::NA(why) => format!("N/A({why})"),
            Cell::Yes(how) => how.to_string(),
        }
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_apis_with_unique_names() {
        let mut names: Vec<_> = Api::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::No.text(), "x");
        assert_eq!(Cell::NA("host only").text(), "N/A(host only)");
        assert_eq!(Cell::Yes("barrier").text(), "barrier");
        assert!(Cell::Yes("a").supported());
        assert!(!Cell::No.supported());
        assert!(!Cell::NA("h").supported());
    }
}
