//! The contents of Tables I, II and III, cell for cell.

use crate::api::{Api, Cell};

/// Table I: parallelism-pattern support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelismRow {
    /// Data parallelism (loops, vector ops).
    pub data: Cell,
    /// Asynchronous task parallelism.
    pub task: Cell,
    /// Data/event-driven parallelism (dependences, pipelines).
    pub event: Cell,
    /// Host↔device offloading.
    pub offload: Cell,
}

/// Table I rows (verbatim from the paper).
pub fn parallelism(api: Api) -> ParallelismRow {
    use Cell::*;
    match api {
        Api::CilkPlus => ParallelismRow {
            data: Yes("cilk_for, array operations, elemental functions"),
            task: Yes("cilk_spawn/cilk_sync"),
            event: No,
            offload: Yes("host only"),
        },
        Api::Cuda => ParallelismRow {
            data: Yes("<<<--->>>"),
            task: Yes("async kernel launching and memcpy"),
            event: Yes("stream"),
            offload: Yes("device only"),
        },
        Api::Cxx11 => ParallelismRow {
            data: No,
            task: Yes("std::thread, std::async/future"),
            event: Yes("std::future"),
            offload: Yes("host only"),
        },
        Api::OpenAcc => ParallelismRow {
            data: Yes("kernel/parallel"),
            task: Yes("async/wait"),
            event: Yes("wait"),
            offload: Yes("device only (acc)"),
        },
        Api::OpenCl => ParallelismRow {
            data: Yes("kernel"),
            task: Yes("clEnqueueTask()"),
            event: Yes("pipe, general DAG"),
            offload: Yes("host and device"),
        },
        Api::OpenMp => ParallelismRow {
            data: Yes("parallel for, simd, distribute"),
            task: Yes("task/taskwait"),
            event: Yes("depend (in/out/inout)"),
            offload: Yes("host and device (target)"),
        },
        Api::PThreads => ParallelismRow {
            data: No,
            task: Yes("pthread create/join"),
            event: No,
            offload: Yes("host only"),
        },
        Api::Tbb => ParallelismRow {
            data: Yes("parallel for/while/do, etc"),
            task: Yes("task::spawn/wait"),
            event: Yes("pipeline, parallel pipeline, general DAG (flow::graph)"),
            offload: Yes("host only"),
        },
    }
}

/// Table II: memory-hierarchy abstraction, data locality, synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySyncRow {
    /// Abstraction of the memory hierarchy.
    pub mem_abstraction: Cell,
    /// Binding computation to data (locality).
    pub binding: Cell,
    /// Explicit data mapping/movement between address spaces.
    pub movement: Cell,
    /// Barrier synchronization.
    pub barrier: Cell,
    /// Reduction support.
    pub reduction: Cell,
    /// Join/completion synchronization.
    pub join: Cell,
}

/// Table II rows (verbatim from the paper).
pub fn memory_sync(api: Api) -> MemorySyncRow {
    use Cell::*;
    match api {
        Api::CilkPlus => MemorySyncRow {
            mem_abstraction: No,
            binding: No,
            movement: NA("host only"),
            barrier: Yes("implicit for cilk_for only"),
            reduction: Yes("reducers"),
            join: Yes("cilk_sync"),
        },
        Api::Cuda => MemorySyncRow {
            mem_abstraction: Yes("blocks/threads, shared memory"),
            binding: No,
            movement: Yes("cudaMemcpy function"),
            barrier: Yes("synchthreads"),
            reduction: No,
            join: No,
        },
        Api::Cxx11 => MemorySyncRow {
            mem_abstraction: Yes("x (but memory consistency)"),
            binding: No,
            movement: NA("host only"),
            barrier: No,
            reduction: No,
            join: Yes("std::join, std::future"),
        },
        Api::OpenAcc => MemorySyncRow {
            mem_abstraction: Yes("cache, gang/worker/vector"),
            binding: No,
            movement: Yes("data copy/copyin/copyout"),
            barrier: No,
            reduction: Yes("reduction"),
            join: Yes("wait"),
        },
        Api::OpenCl => MemorySyncRow {
            mem_abstraction: Yes("work group/item"),
            binding: No,
            movement: Yes("buffer Write function"),
            barrier: Yes("work group barrier"),
            reduction: Yes("work group reduction"),
            join: No,
        },
        Api::OpenMp => MemorySyncRow {
            mem_abstraction: Yes("OMP_PLACES, teams and distribute"),
            binding: Yes("proc_bind clause"),
            movement: Yes("map(to/from/tofrom/alloc)"),
            barrier: Yes("barrier, implicit for parallel/for"),
            reduction: Yes("reduction clause"),
            join: Yes("taskwait"),
        },
        Api::PThreads => MemorySyncRow {
            mem_abstraction: No,
            binding: No,
            movement: NA("host only"),
            barrier: Yes("pthread barrier"),
            reduction: No,
            join: Yes("pthread join"),
        },
        Api::Tbb => MemorySyncRow {
            mem_abstraction: No,
            binding: Yes("affinity partitioner"),
            movement: NA("host only"),
            barrier: NA("tasking"),
            reduction: Yes("parallel reduce"),
            join: Yes("wait"),
        },
    }
}

/// Table III: mutual exclusion, language binding, error handling, tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiscRow {
    /// Mutual-exclusion mechanisms.
    pub mutual_exclusion: Cell,
    /// Base-language form (library / extension / directives).
    pub language: Cell,
    /// Error-handling support.
    pub error_handling: Cell,
    /// Tool support.
    pub tools: Cell,
}

/// Table III rows (verbatim from the paper).
pub fn misc(api: Api) -> MiscRow {
    use Cell::*;
    match api {
        Api::CilkPlus => MiscRow {
            mutual_exclusion: Yes("containers, mutex, atomic"),
            language: Yes("C/C++ elidable language extension"),
            error_handling: No,
            tools: Yes("Cilkscreen, Cilkview"),
        },
        Api::Cuda => MiscRow {
            mutual_exclusion: Yes("atomic"),
            language: Yes("C/C++ extensions"),
            error_handling: No,
            tools: Yes("CUDA profiling tools"),
        },
        Api::Cxx11 => MiscRow {
            mutual_exclusion: Yes("std::mutex, atomic"),
            language: Yes("C++"),
            error_handling: Yes("C++ exception"),
            tools: Yes("System tools"),
        },
        Api::OpenAcc => MiscRow {
            mutual_exclusion: Yes("atomic"),
            language: Yes("directives for C/C++ and Fortran"),
            error_handling: No,
            tools: Yes("System/vendor tools"),
        },
        Api::OpenCl => MiscRow {
            mutual_exclusion: Yes("atomic"),
            language: Yes("C/C++ extensions"),
            error_handling: Yes("exceptions"),
            tools: Yes("System/vendor tools"),
        },
        Api::OpenMp => MiscRow {
            mutual_exclusion: Yes("locks, critical, atomic, single, master"),
            language: Yes("directives for C/C++ and Fortran"),
            error_handling: Yes("omp cancel"),
            tools: Yes("OMP Tool interface"),
        },
        Api::PThreads => MiscRow {
            mutual_exclusion: Yes("pthread mutex, pthread cond"),
            language: Yes("C library"),
            error_handling: Yes("pthread cancel"),
            tools: Yes("System tools"),
        },
        Api::Tbb => MiscRow {
            mutual_exclusion: Yes("containers, mutex, atomic"),
            language: Yes("C++ library"),
            error_handling: Yes("cancellation and exception"),
            tools: Yes("System tools"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §III-A: "OpenMP provides the most comprehensive set of features to
    /// support all the four parallelism patterns."
    #[test]
    fn openmp_supports_all_four_patterns() {
        let r = parallelism(Api::OpenMp);
        assert!(r.data.supported());
        assert!(r.task.supported());
        assert!(r.event.supported());
        assert!(r.offload.supported());
    }

    /// §III-A: "asynchronous tasking or threading can be viewed as the
    /// foundational parallel mechanism that is supported by all the models."
    #[test]
    fn every_api_supports_tasking() {
        for api in Api::ALL {
            assert!(parallelism(api).task.supported(), "{api}");
        }
    }

    /// §III-A: "Only OpenMP and Cilk Plus provide constructs for
    /// vectorization support" — encoded as simd / array notations appearing
    /// in the data-parallelism cell.
    #[test]
    fn only_openmp_and_cilk_mention_vectorization() {
        for api in Api::ALL {
            let text = parallelism(api).data.text();
            let has_vec = text.contains("simd") || text.contains("elemental");
            assert_eq!(has_vec, matches!(api, Api::OpenMp | Api::CilkPlus), "{api}");
        }
    }

    /// §III-A: "Only OpenMP provides constructs for programmers to specify
    /// memory hierarchy [...] and the binding of computation with data."
    #[test]
    fn only_openmp_binds_computation_to_data_places() {
        for api in Api::ALL {
            let r = memory_sync(api);
            let full_locality = r.binding.supported() && r.mem_abstraction.supported();
            assert_eq!(full_locality, api == Api::OpenMp, "{api}");
        }
    }

    /// §III-A: "Models that support offloading computation provide
    /// constructs to specify explicit data movement."
    #[test]
    fn offloading_apis_have_explicit_movement() {
        for api in [Api::Cuda, Api::OpenAcc, Api::OpenCl, Api::OpenMp] {
            assert!(memory_sync(api).movement.supported(), "{api}");
        }
    }

    /// §III-A: "since Cilk Plus and Intel TBB emphasize tasks rather than
    /// threads, the concept of a thread barrier makes little sense" — TBB
    /// has no barrier, Cilk only the implicit `cilk_for` one.
    #[test]
    fn task_centric_models_lack_real_barriers() {
        assert_eq!(memory_sync(Api::Tbb).barrier, Cell::NA("tasking"));
        assert!(memory_sync(Api::CilkPlus)
            .barrier
            .text()
            .contains("implicit"));
    }

    /// §III-A: "only OpenMP and OpenACC have Fortran bindings."
    #[test]
    fn fortran_bindings() {
        for api in Api::ALL {
            let has_fortran = misc(api).language.text().contains("Fortran");
            assert_eq!(
                has_fortran,
                matches!(api, Api::OpenMp | Api::OpenAcc),
                "{api}"
            );
        }
    }

    /// §III-A: "OpenMP has its cancel construct [...] which supports an
    /// error model."
    #[test]
    fn openmp_error_model_is_cancel() {
        assert_eq!(misc(Api::OpenMp).error_handling, Cell::Yes("omp cancel"));
    }

    /// Every API provides some mutual-exclusion mechanism (§III-A: "Locks
    /// and mutexes are still the most widely used mechanisms").
    #[test]
    fn mutual_exclusion_is_universal() {
        for api in Api::ALL {
            assert!(misc(api).mutual_exclusion.supported(), "{api}");
        }
    }

    /// CUDA and OpenACC are device-offload models; Cilk/TBB/C++/PThreads are
    /// host-only.
    #[test]
    fn offload_direction_cells() {
        assert!(parallelism(Api::Cuda)
            .offload
            .text()
            .contains("device only"));
        assert!(parallelism(Api::OpenAcc)
            .offload
            .text()
            .contains("device only"));
        for api in [Api::CilkPlus, Api::Cxx11, Api::PThreads, Api::Tbb] {
            assert!(
                parallelism(api).offload.text().contains("host only"),
                "{api}"
            );
        }
    }
}
