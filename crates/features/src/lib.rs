//! # tpm-features — the paper's feature matrices, as data
//!
//! Tables I–III of *Comparison of Threading Programming Models* (2017)
//! encode which of eight APIs (OpenMP, Cilk Plus, TBB, OpenACC, CUDA,
//! OpenCL, C++11, PThreads) supports which feature, and through what
//! interface. This crate stores every cell as typed data ([`Cell`]) so the
//! tables are queryable and testable, and regenerates the printed tables
//! with [`table1`], [`table2`], [`table3`].
//!
//! ```
//! use tpm_features::{parallelism, Api};
//!
//! // §III-A: OpenMP supports all four parallelism patterns.
//! let omp = parallelism(Api::OpenMp);
//! assert!(omp.data.supported() && omp.task.supported()
//!     && omp.event.supported() && omp.offload.supported());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod api;
pub mod query;
mod render;
mod tables;

pub use api::{Api, Cell};
pub use render::{table1, table2, table3};
pub use tables::{memory_sync, misc, parallelism, MemorySyncRow, MiscRow, ParallelismRow};
