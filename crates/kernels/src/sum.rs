//! Sum: `Σ a·x[i]` (Fig. 2).
//!
//! "Sum is the combination of worksharing and reduction, showing that
//! workstealing for worksharing+reduction is not the right choice" —
//! `omp_task` wins, `cilk_for` loses by ~5×.

use tpm_core::{Executor, KernelVariant, Model};
use tpm_sim::{Imbalance, LoopWorkload};

/// Accumulator lanes of the optimized body: 8 independent partial sums break
/// the loop-carried addition chain so the compiler can vectorize and the
/// FMA units pipeline; the lanes combine pairwise at the end.
const LANES: usize = 8;

/// Optimized chunk body: `Σ a·x[i]` with [`LANES`] split accumulators.
/// Reassociates the sum, so results differ from the scalar body in the low
/// bits — verified against it with the relative-epsilon/ULP helper.
fn sum_chunk_opt(a: f64, xs: &[f64]) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let mut it = xs.chunks_exact(LANES);
    for xv in &mut it {
        for j in 0..LANES {
            lanes[j] += a * xv[j];
        }
    }
    let mut tail = 0.0;
    for &xi in it.remainder() {
        tail += a * xi;
    }
    // Pairwise combine: ((0+4)+(2+6)) + ((1+5)+(3+7)).
    let mut acc = tail;
    acc += ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    acc
}

/// Sum problem instance.
#[derive(Debug, Clone, Copy)]
pub struct Sum {
    /// Vector length (paper: 100 M).
    pub n: usize,
    /// Scalar multiplier.
    pub a: f64,
}

impl Sum {
    /// The paper's configuration: N = 100 M.
    pub fn paper() -> Self {
        Self {
            n: 100_000_000,
            a: 1.5,
        }
    }

    /// A scaled-down instance for native runs.
    pub fn native(n: usize) -> Self {
        Self { n, a: 1.5 }
    }

    /// Allocates the deterministic input vector.
    pub fn alloc(&self) -> Vec<f64> {
        crate::util::random_vec(self.n, 0x50AD)
    }

    /// [`Self::alloc`] with parallel first-touch under `model`.
    pub fn alloc_on(&self, exec: &Executor, model: Model) -> Vec<f64> {
        crate::util::random_vec_on(exec, model, self.n, 0x50AD)
    }

    /// Sequential reference.
    pub fn seq(&self, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &xi in x {
            acc += self.a * xi;
        }
        acc
    }

    /// Runs the reduction under `model` (paper-faithful
    /// [`KernelVariant::Reference`] body).
    pub fn run(&self, exec: &Executor, model: Model, x: &[f64]) -> f64 {
        self.run_v(exec, model, KernelVariant::Reference, x)
    }

    /// Runs the reduction under `model` with the selected data-path
    /// `variant`.
    pub fn run_v(&self, exec: &Executor, model: Model, variant: KernelVariant, x: &[f64]) -> f64 {
        let a = self.a;
        match variant {
            KernelVariant::Reference => crate::util::preduce(
                exec,
                model,
                0..self.n,
                || 0.0f64,
                |l, r| l + r,
                |chunk, acc| {
                    let mut local = 0.0;
                    for &xi in &x[chunk] {
                        local += a * xi;
                    }
                    *acc += local;
                },
            ),
            KernelVariant::Optimized => crate::util::preduce(
                exec,
                model,
                0..self.n,
                || 0.0f64,
                |l, r| l + r,
                |chunk, acc| {
                    *acc += sum_chunk_opt(a, &x[chunk]);
                },
            ),
        }
    }

    /// Simulator descriptor: one flop-ish and 8 bytes per iteration.
    pub fn sim_workload(&self) -> LoopWorkload {
        LoopWorkload {
            iters: self.n as u64,
            work_ns_per_iter: 0.3,
            bytes_per_iter: 8.0,
            imbalance: Imbalance::Uniform,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_versions_match_sequential() {
        let k = Sum::native(30_011);
        let x = k.alloc();
        let expected = k.seq(&x);
        let exec = Executor::new(4);
        for model in Model::ALL {
            let got = k.run(&exec, model, &x);
            // Floating-point reassociation: partials differ in order, so
            // allow a relative tolerance.
            let rel = (got - expected).abs() / expected.abs();
            assert!(rel < 1e-10, "{model}: {got} vs {expected}");
        }
    }

    #[test]
    fn optimized_variant_matches_reference_within_tolerance() {
        let k = Sum::native(30_013); // not a multiple of the lane width
        let x = k.alloc();
        let expected = k.seq(&x);
        let exec = Executor::new(4);
        for model in Model::ALL {
            let got = k.run_v(&exec, model, KernelVariant::Optimized, &x);
            tpm_core::approx::scalar_close(got, expected, 1e-10)
                .unwrap_or_else(|e| panic!("{model}: {e}"));
        }
    }

    #[test]
    fn statically_partitioned_models_are_bit_deterministic() {
        // Models with a fixed chunk→thread mapping reduce in a reproducible
        // order; work-stealing models may place chunks differently per run.
        let k = Sum::native(5_000);
        let x = k.alloc();
        let exec = Executor::new(3);
        for model in [Model::OmpFor, Model::CxxThread, Model::CxxAsync] {
            let a = k.run(&exec, model, &x);
            let b = k.run(&exec, model, &x);
            assert_eq!(a.to_bits(), b.to_bits(), "{model}");
        }
    }
}
