//! # tpm-kernels — the paper's §IV-A micro-kernels
//!
//! Five computational kernels, each runnable under all six [`tpm_core::Model`]
//! variants and each carrying a calibrated simulator descriptor for the
//! paper-scale runs (Figs. 1–5):
//!
//! | Kernel | Paper size | Figure | Paper finding |
//! |---|---|---|---|
//! | [`Axpy`] | N = 100 M | Fig. 1 | `cilk_for` worst (~2×), others tie |
//! | [`Sum`] | N = 100 M | Fig. 2 | `omp_task` best, `cilk_for` ~5× worst |
//! | [`Matvec`] | n = 40 k | Fig. 3 | `cilk_for` ~25% worse |
//! | [`Matmul`] | n = 2 k | Fig. 4 | `cilk_for` ~10% worse |
//! | [`Fib`] | n = 40 | Fig. 5 | `cilk_spawn` ~20% over `omp_task`; naive C++ explodes |
//!
//! The data-parallel kernels carry two data paths selected by
//! [`tpm_core::KernelVariant`]: the *reference* bodies reproduce the paper's
//! scalar loops exactly, while the *optimized* bodies (`run_v`) use
//! unrolled multi-accumulator inner loops (Axpy/Sum/Matvec) and a
//! cache-blocked, register-blocked multiply (Matmul) so the per-iteration
//! compute floor sits at hardware speed. Inputs can be allocated with
//! parallel first-touch via each kernel's `alloc_on` /
//! [`util::random_vec_on`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod axpy;
mod fib;
mod matmul;
mod matvec;
mod sum;
pub mod util;
mod uts;

pub use axpy::Axpy;
pub use fib::Fib;
pub use matmul::Matmul;
pub use matvec::Matvec;
pub use sum::Sum;
pub use uts::Uts;
