//! Shared kernel utilities.

use std::ops::Range;

/// A shared mutable slice view for data-parallel writers.
///
/// Parallel loop bodies receive disjoint index chunks; this wrapper lets
/// them write their own chunk through a shared reference. All six model
/// variants of every kernel use it the same way, so the comparison measures
/// scheduling — not borrow-checker workarounds.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: callers uphold chunk disjointness (see `write`/`slice_mut` docs).
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    /// No other thread may concurrently access index `i`.
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }

    /// Mutable access to `range`.
    ///
    /// # Safety
    /// No other thread may concurrently access any index in `range`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len())
    }
}

/// Deterministic pseudo-random f64 vector in `[0, 1)` (no `rand` dependency
/// in the hot path; reproducible across runs).
pub fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = tpm_sync::SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64()).collect()
}

/// Max-abs-difference between two vectors (for verification).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_slice_disjoint_parallel_writes() {
        let mut v = vec![0u64; 100];
        {
            let s = UnsafeSlice::new(&mut v);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let s = &s;
                    scope.spawn(move || {
                        for i in (t * 25)..((t + 1) * 25) {
                            // SAFETY: each thread owns a distinct 25-element block.
                            unsafe { s.write(i, i as u64) };
                        }
                    });
                }
            });
        }
        assert_eq!(v, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn slice_mut_range() {
        let mut v = vec![0; 10];
        let s = UnsafeSlice::new(&mut v);
        // SAFETY: single-threaded here.
        unsafe { s.slice_mut(2..5).fill(7) };
        assert_eq!(v, [0, 0, 7, 7, 7, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn random_vec_is_deterministic_and_unit_range() {
        let a = random_vec(1000, 42);
        let b = random_vec(1000, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!(max_abs_diff(&a, &random_vec(1000, 43)) > 0.0);
    }
}
