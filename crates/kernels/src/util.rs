//! Shared kernel utilities.

use std::ops::Range;

use tpm_core::{Executor, Model};

/// A shared mutable slice view for data-parallel writers.
///
/// Parallel loop bodies receive disjoint index chunks; this wrapper lets
/// them write their own chunk through a shared reference. All six model
/// variants of every kernel use it the same way, so the comparison measures
/// scheduling — not borrow-checker workarounds.
///
/// # Safety contract
///
/// The wrapper itself performs no synchronization. Every `unsafe` accessor
/// requires the caller to uphold **range disjointness**: across all threads
/// and for the lifetime of any reference obtained, no index may be reachable
/// through two simultaneously live accesses (two `slice_mut` ranges that
/// overlap, or a `write` into a live `slice_mut` range). The kernels satisfy
/// this structurally — the executor hands each task a chunk of the iteration
/// space and every task only touches indices derived from its own chunk.
/// Index validity (`i < len`, `range ⊆ 0..len`) is the caller's obligation
/// too, checked by `debug_assert!` in debug builds.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: callers uphold chunk disjointness (see the type-level contract).
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    /// `i < self.len()`, and no other thread may concurrently access index
    /// `i` (see the type-level disjointness contract).
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(
            i < self.len,
            "UnsafeSlice::write: {i} out of bounds ({})",
            self.len
        );
        *self.ptr.add(i) = value;
    }

    /// Mutable access to `range`.
    ///
    /// # Safety
    /// `range` must be non-decreasing and lie within `0..self.len()`, and no
    /// other thread may concurrently access any index in `range` (see the
    /// type-level disjointness contract). The returned reference must be
    /// dropped before any other access to those indices.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(
            range.start <= range.end,
            "UnsafeSlice::slice_mut: inverted range {}..{}",
            range.start,
            range.end
        );
        debug_assert!(
            range.end <= self.len,
            "UnsafeSlice::slice_mut: {}..{} out of bounds ({})",
            range.start,
            range.end,
            self.len
        );
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len())
    }
}

/// Deterministic pseudo-random f64 vector in `[0, 1)` (no `rand` dependency
/// in the hot path; reproducible across runs).
pub fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = tpm_sync::SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64()).collect()
}

/// [`random_vec`] with parallel first-touch: the vector is filled through
/// a parallel loop under `model`, so each page is first touched by the
/// thread that will process the same index range in the kernel proper.
///
/// The large kernel inputs (100 M-element vectors) were previously
/// initialized sequentially, first-touching every page from one thread; on a
/// NUMA host that places all pages on one node, and even on one socket it
/// serializes the page-fault storm. Bitwise-identical to [`random_vec`] for
/// every `(n, seed)` regardless of model, thread count, or chunk boundaries:
/// each chunk seeks the SplitMix64 stream to its start index in O(1)
/// ([`tpm_sync::SplitMix64::new_at`]).
pub fn random_vec_on(exec: &Executor, model: Model, n: usize, seed: u64) -> Vec<f64> {
    // `vec![0.0; n]` allocates zeroed pages lazily (no touch); the parallel
    // fill below performs the first touch with the kernel's own schedule.
    let mut v = vec![0.0f64; n];
    advise_hugepages_for(&v);
    fill_random_on(exec, model, &mut v, seed);
    v
}

/// Buffers at least this large get a transparent-huge-page hint before
/// first touch (2 MiB = one x86-64 huge page; smaller buffers cannot
/// contain one).
const HUGEPAGE_THRESHOLD_BYTES: usize = 2 << 20;

/// Best-effort `madvise(MADV_HUGEPAGE)` for a large kernel buffer, issued
/// *before* first touch so the page-fault storm can map 2 MiB pages
/// directly (a 100 M-element input is ~195 k base pages but ~380 huge
/// pages — fewer faults, far fewer TLB misses during the kernel sweep).
/// No-op for small buffers and on platforms without `madvise`.
pub fn advise_hugepages_for<T>(buf: &[T]) -> bool {
    let bytes = std::mem::size_of_val(buf);
    if bytes < HUGEPAGE_THRESHOLD_BYTES {
        return false;
    }
    tpm_sync::topology::advise_hugepages(buf.as_ptr().cast(), bytes)
}

/// Fills `out` with the [`random_vec`] stream for `seed` via a parallel
/// first-touch sweep (see [`random_vec_on`]).
pub fn fill_random_on(exec: &Executor, model: Model, out: &mut [f64], seed: u64) {
    let n = out.len();
    let dst = UnsafeSlice::new(out);
    crate::util::pfor(exec, model, 0..n, &|chunk| {
        let mut rng = tpm_sync::SplitMix64::new_at(seed, chunk.start as u64);
        // SAFETY: the executor hands out disjoint chunks.
        let slice = unsafe { dst.slice_mut(chunk) };
        for v in slice {
            *v = rng.next_f64();
        }
    });
}

/// Runs an un-cancellable parallel loop through the fallible executor path.
/// The kernels' `run` surface is infallible by contract — no token is
/// attached and the bodies do not panic — so a failure here is a kernel
/// bug, reported by panicking (the deprecated `Executor::parallel_for`
/// behaved the same way).
pub fn pfor<F>(exec: &Executor, model: Model, range: Range<usize>, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    exec.try_parallel_for(model, range, &tpm_sync::CancelToken::new(), body)
        .unwrap_or_else(|e| panic!("{model} kernel loop failed: {e}"));
}

/// Reduction sibling of [`pfor`]: un-cancellable, panics on failure.
pub fn preduce<T, Id, Op, F>(
    exec: &Executor,
    model: Model,
    range: Range<usize>,
    identity: Id,
    combine: Op,
    body: F,
) -> T
where
    T: Send,
    Id: Fn() -> T + Send + Sync,
    Op: Fn(T, T) -> T + Send + Sync,
    F: Fn(Range<usize>, &mut T) + Sync,
{
    exec.try_parallel_reduce(
        model,
        range,
        &tpm_sync::CancelToken::new(),
        identity,
        combine,
        body,
    )
    .unwrap_or_else(|e| panic!("{model} kernel reduction failed: {e}"))
}

/// Max-abs-difference between two vectors (for verification).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_slice_disjoint_parallel_writes() {
        let mut v = vec![0u64; 100];
        {
            let s = UnsafeSlice::new(&mut v);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let s = &s;
                    scope.spawn(move || {
                        for i in (t * 25)..((t + 1) * 25) {
                            // SAFETY: each thread owns a distinct 25-element block.
                            unsafe { s.write(i, i as u64) };
                        }
                    });
                }
            });
        }
        assert_eq!(v, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn slice_mut_range() {
        let mut v = vec![0; 10];
        let s = UnsafeSlice::new(&mut v);
        // SAFETY: single-threaded here.
        unsafe { s.slice_mut(2..5).fill(7) };
        assert_eq!(v, [0, 0, 7, 7, 7, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn random_vec_is_deterministic_and_unit_range() {
        let a = random_vec(1000, 42);
        let b = random_vec(1000, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!(max_abs_diff(&a, &random_vec(1000, 43)) > 0.0);
    }

    #[test]
    fn parallel_first_touch_is_bitwise_identical_to_sequential() {
        let expected = random_vec(10_007, 0xF1257);
        for threads in [1, 3] {
            let exec = Executor::new(threads);
            for model in Model::ALL {
                let got = random_vec_on(&exec, model, 10_007, 0xF1257);
                assert_eq!(got, expected, "{model} @{threads}t");
            }
        }
    }

    #[test]
    fn hugepage_hint_skips_small_buffers_and_preserves_data() {
        let small = vec![1.0f64; 16];
        assert!(!advise_hugepages_for(&small), "below threshold");
        // 4 MiB of f64: over the threshold; hint may or may not be accepted
        // (THP can be off), but the data must be untouched either way.
        let big = vec![2.5f64; (4 << 20) / 8];
        let _ = advise_hugepages_for(&big);
        assert!(big.iter().all(|&x| x == 2.5));
    }

    #[test]
    fn fill_random_on_empty_and_single() {
        let exec = Executor::new(2);
        assert!(random_vec_on(&exec, Model::CilkFor, 0, 1).is_empty());
        assert_eq!(random_vec_on(&exec, Model::OmpTask, 1, 9), random_vec(1, 9));
    }
}
