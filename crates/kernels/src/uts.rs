//! UTS — Unbalanced Tree Search (extension benchmark).
//!
//! The paper's related work (§V, Olivier & Prins) compares OpenMP, Cilk and
//! TBB on UTS, a benchmark designed so that "only a load-balancing scheduler
//! can exploit" its parallelism: a random tree whose shape is unknowable in
//! advance, with wildly imbalanced subtrees. We include it as the stress
//! test of the task runtimes' load balancing (the property the paper credits
//! for work stealing's wins on task parallelism).
//!
//! The tree is a binomial tree in UTS terminology: each node has `m`
//! children with probability `q`, 0 otherwise, decided by a deterministic
//! per-node hash (standing in for UTS's SHA-1 splittable stream). With
//! `m·q < 1` the tree is finite with probability 1; sizes vary enormously
//! with the seed — the imbalance is the point.

use tpm_forkjoin::{Ctx, Team};
use tpm_sync::SplitMix64;
use tpm_worksteal::{join, Runtime, WorkerCtx};

/// UTS problem instance (binomial variant).
#[derive(Debug, Clone, Copy)]
pub struct Uts {
    /// Children per internal node.
    pub m: u64,
    /// Probability (×10⁶) that a node is internal.
    pub q_millionths: u64,
    /// Root seed.
    pub seed: u64,
    /// Root fan-out (UTS's `b0`): the root always has this many children.
    pub root_children: u64,
}

impl Uts {
    /// A moderate instance (tens of thousands of nodes, strongly imbalanced).
    pub fn standard(seed: u64) -> Self {
        Self {
            m: 4,
            q_millionths: 200_000, // q = 0.2, m·q = 0.8
            seed,
            root_children: 64,
        }
    }

    fn child_seed(&self, seed: u64, idx: u64) -> u64 {
        // Splittable stream: hash of (parent seed, child index).
        let mut rng = SplitMix64::new(seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        rng.next_u64()
    }

    fn is_internal(&self, seed: u64) -> bool {
        let mut rng = SplitMix64::new(seed);
        rng.next_bounded(1_000_000) < self.q_millionths
    }

    /// Sequential traversal: counts the nodes of the tree.
    pub fn seq(&self) -> u64 {
        let mut count = 1; // root
        let mut stack: Vec<u64> = (0..self.root_children)
            .map(|i| self.child_seed(self.seed, i))
            .collect();
        while let Some(seed) = stack.pop() {
            count += 1;
            if self.is_internal(seed) {
                for i in 0..self.m {
                    stack.push(self.child_seed(seed, i));
                }
            }
        }
        count
    }

    /// Work-stealing traversal (`cilk_spawn`-style): each subtree is a
    /// potential steal target, so idle workers self-balance.
    pub fn run_worksteal(&self, rt: &Runtime) -> u64 {
        fn node(u: &Uts, ctx: &WorkerCtx<'_>, seed: u64, depth: u32) -> u64 {
            let mut count = 1;
            if u.is_internal(seed) {
                count += children(u, ctx, seed, 0, u.m, depth);
            }
            count
        }
        // Binary-split the child list so subtrees become stealable pairs.
        fn children(u: &Uts, ctx: &WorkerCtx<'_>, seed: u64, lo: u64, hi: u64, depth: u32) -> u64 {
            match hi - lo {
                0 => 0,
                1 => node(u, ctx, u.child_seed(seed, lo), depth + 1),
                _ if depth > 12 => {
                    // Deep in the tree: go sequential to bound task overhead.
                    (lo..hi)
                        .map(|i| seq_subtree(u, u.child_seed(seed, i)))
                        .sum()
                }
                _ => {
                    let mid = lo + (hi - lo) / 2;
                    let (a, b) = join(
                        ctx,
                        |c| children(u, c, seed, lo, mid, depth + 1),
                        |c| children(u, c, seed, mid, hi, depth + 1),
                    );
                    a + b
                }
            }
        }
        fn seq_subtree(u: &Uts, seed: u64) -> u64 {
            let mut count = 1;
            let mut stack = vec![seed];
            // The passed seed node itself was already counted by caller?
            // No: this function owns the node.
            stack.clear();
            if u.is_internal(seed) {
                for i in 0..u.m {
                    stack.push(u.child_seed(seed, i));
                }
            }
            while let Some(s) = stack.pop() {
                count += 1;
                if u.is_internal(s) {
                    for i in 0..u.m {
                        stack.push(u.child_seed(s, i));
                    }
                }
            }
            count
        }
        let u = *self;
        rt.install(move |ctx| 1 + children(&u, ctx, u.seed, 0, u.root_children, 0))
    }

    /// Lock-based-deque task traversal (`omp task`-style).
    pub fn run_omp_task(&self, team: &Team) -> u64 {
        fn subtree(u: &Uts, ctx: &Ctx<'_>, seed: u64, depth: u32) -> u64 {
            let mut count = 1;
            if !u.is_internal(seed) {
                return count;
            }
            if depth > 12 {
                // Sequential tail.
                let mut stack: Vec<u64> = (0..u.m).map(|i| u.child_seed(seed, i)).collect();
                while let Some(s) = stack.pop() {
                    count += 1;
                    if u.is_internal(s) {
                        for i in 0..u.m {
                            stack.push(u.child_seed(s, i));
                        }
                    }
                }
                return count;
            }
            let mut partials = vec![0u64; u.m as usize];
            ctx.task_scope(|s| {
                for (i, slot) in partials.iter_mut().enumerate() {
                    let child = u.child_seed(seed, i as u64);
                    s.spawn(move |c| *slot = subtree(u, c, child, depth + 1));
                }
            });
            count + partials.iter().sum::<u64>()
        }
        let u = *self;
        let result = std::sync::atomic::AtomicU64::new(0);
        team.parallel(|ctx| {
            ctx.single(|| {
                let mut total = 1;
                let mut partials = vec![0u64; u.root_children as usize];
                ctx.task_scope(|s| {
                    for (i, slot) in partials.iter_mut().enumerate() {
                        let child = u.child_seed(u.seed, i as u64);
                        s.spawn(move |c| *slot = subtree(&u, c, child, 1));
                    }
                });
                total += partials.iter().sum::<u64>();
                result.store(total, std::sync::atomic::Ordering::Relaxed);
            });
        });
        result.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_size_is_deterministic() {
        let u = Uts::standard(1);
        assert_eq!(u.seq(), u.seq());
    }

    #[test]
    fn different_seeds_give_different_imbalanced_trees() {
        let sizes: Vec<u64> = (0..6).map(|s| Uts::standard(s).seq()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min, "shapes must vary: {sizes:?}");
        assert!(min >= 65, "at least root + b0 children");
    }

    #[test]
    fn worksteal_traversal_matches_sequential() {
        let rt = Runtime::new(4);
        for seed in [1, 7, 42] {
            let u = Uts::standard(seed);
            assert_eq!(u.run_worksteal(&rt), u.seq(), "seed {seed}");
        }
    }

    #[test]
    fn omp_task_traversal_matches_sequential() {
        let team = Team::new(4);
        for seed in [1, 7] {
            let u = Uts::standard(seed);
            assert_eq!(u.run_omp_task(&team), u.seq(), "seed {seed}");
        }
    }

    #[test]
    fn pure_leaf_tree() {
        // q = 0: only the root and its b0 children.
        let u = Uts {
            m: 4,
            q_millionths: 0,
            seed: 5,
            root_children: 10,
        };
        assert_eq!(u.seq(), 11);
        let rt = Runtime::new(2);
        assert_eq!(u.run_worksteal(&rt), 11);
    }
}
