//! Axpy: `y = a·x + y` (Fig. 1).
//!
//! "The vector size used in evaluation is 100 Million" — the paper's
//! memory-bandwidth-bound streaming kernel, where `cilk_for`'s steal-based
//! chunk distribution costs ~2× against every other variant.

use tpm_core::{Executor, KernelVariant, Model};
use tpm_sim::{Imbalance, LoopWorkload};

use crate::util::UnsafeSlice;

/// Unroll width of the optimized body: 8 independent f64 lanes per
/// iteration, two AVX2 vectors' worth, enough for the compiler to
/// auto-vectorize and keep the load/FMA pipes busy.
const LANES: usize = 8;

/// Optimized chunk body: `ys[j] += a·xs[j]`, unrolled over [`LANES`]
/// independent lanes. No reassociation happens (each element is an
/// independent FMA), so results are bitwise-identical to the scalar body.
fn axpy_chunk_opt(a: f64, xs: &[f64], ys: &mut [f64]) {
    debug_assert_eq!(xs.len(), ys.len());
    let mut yc = ys.chunks_exact_mut(LANES);
    let mut xc = xs.chunks_exact(LANES);
    for (yv, xv) in (&mut yc).zip(&mut xc) {
        for j in 0..LANES {
            yv[j] += a * xv[j];
        }
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += a * xi;
    }
}

/// Axpy problem instance.
#[derive(Debug, Clone, Copy)]
pub struct Axpy {
    /// Vector length (paper: 100 M).
    pub n: usize,
    /// Scalar multiplier.
    pub a: f64,
}

impl Axpy {
    /// The paper's configuration: N = 100 M.
    pub fn paper() -> Self {
        Self {
            n: 100_000_000,
            a: 2.5,
        }
    }

    /// A scaled-down instance for native runs on small hosts.
    pub fn native(n: usize) -> Self {
        Self { n, a: 2.5 }
    }

    /// Allocates deterministic input vectors `(x, y)`.
    pub fn alloc(&self) -> (Vec<f64>, Vec<f64>) {
        (
            crate::util::random_vec(self.n, 0xA11),
            crate::util::random_vec(self.n, 0xB22),
        )
    }

    /// [`Self::alloc`] with parallel first-touch under `model` (same values,
    /// pages placed by the threads that will stream them).
    pub fn alloc_on(&self, exec: &Executor, model: Model) -> (Vec<f64>, Vec<f64>) {
        (
            crate::util::random_vec_on(exec, model, self.n, 0xA11),
            crate::util::random_vec_on(exec, model, self.n, 0xB22),
        )
    }

    /// Sequential reference.
    pub fn seq(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.n {
            y[i] += self.a * x[i];
        }
    }

    /// Runs the kernel under `model` on `exec`, updating `y` in place
    /// (paper-faithful [`KernelVariant::Reference`] body).
    pub fn run(&self, exec: &Executor, model: Model, x: &[f64], y: &mut [f64]) {
        self.run_v(exec, model, KernelVariant::Reference, x, y);
    }

    /// Runs the kernel under `model` with the selected data-path `variant`.
    pub fn run_v(
        &self,
        exec: &Executor,
        model: Model,
        variant: KernelVariant,
        x: &[f64],
        y: &mut [f64],
    ) {
        let a = self.a;
        let out = UnsafeSlice::new(y);
        match variant {
            KernelVariant::Reference => {
                crate::util::pfor(exec, model, 0..self.n, &|chunk| {
                    // SAFETY: the executor hands out disjoint chunks.
                    let ys = unsafe { out.slice_mut(chunk.clone()) };
                    for (yi, i) in ys.iter_mut().zip(chunk) {
                        *yi += a * x[i];
                    }
                });
            }
            KernelVariant::Optimized => {
                crate::util::pfor(exec, model, 0..self.n, &|chunk| {
                    // SAFETY: the executor hands out disjoint chunks.
                    let ys = unsafe { out.slice_mut(chunk.clone()) };
                    axpy_chunk_opt(a, &x[chunk], ys);
                });
            }
        }
    }

    /// Simulator descriptor: ~2 flops and 24 bytes (two reads + one write)
    /// per iteration — firmly bandwidth-bound.
    pub fn sim_workload(&self) -> LoopWorkload {
        LoopWorkload {
            iters: self.n as u64,
            work_ns_per_iter: 0.35,
            bytes_per_iter: 24.0,
            imbalance: Imbalance::Uniform,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::max_abs_diff;

    #[test]
    fn all_six_versions_match_sequential() {
        let k = Axpy::native(10_001);
        let (x, y0) = k.alloc();
        let mut expected = y0.clone();
        k.seq(&x, &mut expected);
        let exec = Executor::new(3);
        for model in Model::ALL {
            let mut y = y0.clone();
            k.run(&exec, model, &x, &mut y);
            assert!(
                max_abs_diff(&y, &expected) < 1e-12,
                "{model} diverged from sequential"
            );
        }
    }

    #[test]
    fn optimized_variant_is_bitwise_identical() {
        // Axpy never reassociates: both variants must agree exactly.
        let k = Axpy::native(4_099); // not a multiple of the lane width
        let (x, y0) = k.alloc();
        let mut expected = y0.clone();
        k.seq(&x, &mut expected);
        let exec = Executor::new(3);
        for model in Model::ALL {
            let mut y = y0.clone();
            k.run_v(&exec, model, KernelVariant::Optimized, &x, &mut y);
            assert_eq!(y, expected, "{model}");
        }
    }

    #[test]
    fn sim_workload_is_bandwidth_bound() {
        let wl = Axpy::paper().sim_workload();
        assert_eq!(wl.iters, 100_000_000);
        // mem time at full BW exceeds compute time per iteration.
        assert!(wl.bytes_per_iter / 29.5 > wl.work_ns_per_iter);
    }
}
