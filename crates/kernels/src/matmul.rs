//! Matmul: `C = A·B` (Fig. 4).
//!
//! "Matmul is matrix multiplication of 2k problem size ... other versions
//! perform around 10% better than cilk_for" — the most compute-intense
//! kernel, where "we see less impact of runtime scheduling to the
//! performance".

use std::ops::Range;

use tpm_core::{Executor, KernelVariant, Model};
use tpm_sim::{Imbalance, LoopWorkload};

use crate::util::UnsafeSlice;

/// Rows of `C` per parallel block (the optimized parallel grain): small
/// enough that A's block (`MB×KB`) and C's block stay cache-resident, large
/// enough to amortize dispatch.
const MB: usize = 32;
/// Depth of a k-panel: `KB×JB` of B (256 KiB) is the L2-resident tile every
/// row in the block re-reads.
const KB: usize = 64;
/// Width of a j-panel: one C-row segment (4 KiB) fits L1 alongside four
/// B-row segments.
const JB: usize = 512;
/// k-unroll of the register-blocked micro-kernel: four B rows are folded
/// into each C-row segment per pass, quartering C load/store traffic.
const KU: usize = 4;

/// Register-blocked micro-kernel:
/// `crow[j0..j1] += Σ_{k∈k0..k1} arow[k]·B[k][j0..j1]`.
///
/// Unrolls k by [`KU`]: each inner-loop element folds four multiplies into
/// one C element, so C traffic drops 4× and the compiler vectorizes over
/// `j` with independent element updates (no reassociation across `j`; the
/// k-order within a row changes, covered by the tolerance checks).
fn mm_row_tile(
    crow: &mut [f64],
    arow: &[f64],
    b: &[f64],
    n: usize,
    ks: Range<usize>,
    js: Range<usize>,
) {
    let w = js.len();
    let cr = &mut crow[js.start..js.end];
    let mut k = ks.start;
    while k + KU <= ks.end {
        let (a0, a1, a2, a3) = (arow[k], arow[k + 1], arow[k + 2], arow[k + 3]);
        let b0 = &b[k * n + js.start..][..w];
        let b1 = &b[(k + 1) * n + js.start..][..w];
        let b2 = &b[(k + 2) * n + js.start..][..w];
        let b3 = &b[(k + 3) * n + js.start..][..w];
        for j in 0..w {
            cr[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        k += KU;
    }
    while k < ks.end {
        let ak = arow[k];
        let bk = &b[k * n + js.start..][..w];
        for j in 0..w {
            cr[j] += ak * bk[j];
        }
        k += 1;
    }
}

/// Cache-blocked multiply of one row-block: for each `(k, j)` panel, every
/// row of the block streams through the same L2-resident B tile.
/// `c_rows` holds the block's rows of C contiguously (`rows.len() × n`).
fn mm_block(c_rows: &mut [f64], rows: Range<usize>, a: &[f64], b: &[f64], n: usize) {
    for k0 in (0..n).step_by(KB) {
        let k1 = (k0 + KB).min(n);
        for j0 in (0..n).step_by(JB) {
            let j1 = (j0 + JB).min(n);
            for i in rows.clone() {
                let crow = &mut c_rows[(i - rows.start) * n..][..n];
                let arow = &a[i * n..][..n];
                mm_row_tile(crow, arow, b, n, k0..k1, j0..j1);
            }
        }
    }
}

/// Matmul problem instance (row-major dense `n×n`).
#[derive(Debug, Clone, Copy)]
pub struct Matmul {
    /// Matrix dimension (paper: 2 k).
    pub n: usize,
}

impl Matmul {
    /// The paper's configuration: n = 2 k.
    pub fn paper() -> Self {
        Self { n: 2_000 }
    }

    /// A scaled-down instance for native runs.
    pub fn native(n: usize) -> Self {
        Self { n }
    }

    /// Allocates `(A, B)` deterministically.
    pub fn alloc(&self) -> (Vec<f64>, Vec<f64>) {
        (
            crate::util::random_vec(self.n * self.n, 0xAB),
            crate::util::random_vec(self.n * self.n, 0xCD),
        )
    }

    /// [`Self::alloc`] with parallel first-touch under `model`.
    pub fn alloc_on(&self, exec: &Executor, model: Model) -> (Vec<f64>, Vec<f64>) {
        (
            crate::util::random_vec_on(exec, model, self.n * self.n, 0xAB),
            crate::util::random_vec_on(exec, model, self.n * self.n, 0xCD),
        )
    }

    /// Sequential reference (i-k-j loop order for cache behaviour).
    pub fn seq(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = a[i * n + k];
                let brow = &b[k * n..(k + 1) * n];
                let crow = &mut c[i * n..(i + 1) * n];
                for (cij, bkj) in crow.iter_mut().zip(brow) {
                    *cij += aik * bkj;
                }
            }
        }
        c
    }

    /// Sequential cache-blocked reference (same blocking as the optimized
    /// parallel path, single thread).
    pub fn seq_blocked(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut c = vec![0.0; n * n];
        if n > 0 {
            mm_block(&mut c, 0..n, a, b, n);
        }
        c
    }

    /// Runs under `model`: the parallel loop is over rows of `C`
    /// (paper-faithful [`KernelVariant::Reference`] body).
    pub fn run(&self, exec: &Executor, model: Model, a: &[f64], b: &[f64]) -> Vec<f64> {
        self.run_v(exec, model, KernelVariant::Reference, a, b)
    }

    /// Runs under `model` with the selected data-path `variant`.
    ///
    /// The optimized variant parallelizes over [`MB`]-row blocks of `C` and
    /// runs the cache-blocked, register-blocked multiply on each block.
    pub fn run_v(
        &self,
        exec: &Executor,
        model: Model,
        variant: KernelVariant,
        a: &[f64],
        b: &[f64],
    ) -> Vec<f64> {
        let n = self.n;
        let mut c = vec![0.0; n * n];
        match variant {
            KernelVariant::Reference => {
                let out = UnsafeSlice::new(&mut c);
                crate::util::pfor(exec, model, 0..n, &|chunk| {
                    for i in chunk {
                        // SAFETY: disjoint chunks ⇒ disjoint C rows.
                        let crow = unsafe { out.slice_mut(i * n..(i + 1) * n) };
                        for k in 0..n {
                            let aik = a[i * n + k];
                            let brow = &b[k * n..(k + 1) * n];
                            for (cij, bkj) in crow.iter_mut().zip(brow) {
                                *cij += aik * bkj;
                            }
                        }
                    }
                });
            }
            KernelVariant::Optimized => {
                let blocks = n.div_ceil(MB);
                let out = UnsafeSlice::new(&mut c);
                crate::util::pfor(exec, model, 0..blocks, &|chunk| {
                    for bi in chunk {
                        let rows = bi * MB..((bi + 1) * MB).min(n);
                        // SAFETY: disjoint block chunks ⇒ disjoint C row
                        // blocks.
                        let c_rows = unsafe { out.slice_mut(rows.start * n..rows.end * n) };
                        mm_block(c_rows, rows, a, b, n);
                    }
                });
            }
        }
        c
    }

    /// Simulator descriptor: one iteration = one row of `C` (`n²` mul-adds);
    /// high arithmetic intensity, light effective traffic (B is reused).
    pub fn sim_workload(&self) -> LoopWorkload {
        let n = self.n as f64;
        LoopWorkload {
            iters: self.n as u64,
            work_ns_per_iter: n * n * 0.45,
            bytes_per_iter: n * 16.0,
            imbalance: Imbalance::Uniform,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::max_abs_diff;

    #[test]
    fn all_six_versions_match_sequential() {
        let k = Matmul::native(33);
        let (a, b) = k.alloc();
        let expected = k.seq(&a, &b);
        let exec = Executor::new(3);
        for model in Model::ALL {
            let c = k.run(&exec, model, &a, &b);
            assert!(max_abs_diff(&c, &expected) < 1e-9, "{model}");
        }
    }

    #[test]
    fn blocked_variants_match_sequential_within_tolerance() {
        // 67 rows: 3 row-blocks (last one 3 rows), k/j tiles hit the matrix
        // edge, and the micro-kernel's k-tail (67 % 4 = 3) is exercised.
        let k = Matmul::native(67);
        let (a, b) = k.alloc();
        let expected = k.seq(&a, &b);
        tpm_core::approx::slices_close(&k.seq_blocked(&a, &b), &expected, 1e-12)
            .unwrap_or_else(|e| panic!("seq_blocked: {e}"));
        let exec = Executor::new(3);
        for model in Model::ALL {
            let c = k.run_v(&exec, model, KernelVariant::Optimized, &a, &b);
            tpm_core::approx::slices_close(&c, &expected, 1e-12)
                .unwrap_or_else(|e| panic!("{model}: {e}"));
        }
    }

    #[test]
    fn identity_times_identity() {
        let k = Matmul::native(4);
        let mut a = vec![0.0; 16];
        for i in 0..4 {
            a[i * 4 + i] = 1.0;
        }
        let exec = Executor::new(2);
        let c = k.run(&exec, Model::CilkFor, &a, &a);
        assert_eq!(c, a);
    }
}
