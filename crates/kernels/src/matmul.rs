//! Matmul: `C = A·B` (Fig. 4).
//!
//! "Matmul is matrix multiplication of 2k problem size ... other versions
//! perform around 10% better than cilk_for" — the most compute-intense
//! kernel, where "we see less impact of runtime scheduling to the
//! performance".

use tpm_core::{Executor, Model};
use tpm_sim::{Imbalance, LoopWorkload};

use crate::util::UnsafeSlice;

/// Matmul problem instance (row-major dense `n×n`).
#[derive(Debug, Clone, Copy)]
pub struct Matmul {
    /// Matrix dimension (paper: 2 k).
    pub n: usize,
}

impl Matmul {
    /// The paper's configuration: n = 2 k.
    pub fn paper() -> Self {
        Self { n: 2_000 }
    }

    /// A scaled-down instance for native runs.
    pub fn native(n: usize) -> Self {
        Self { n }
    }

    /// Allocates `(A, B)` deterministically.
    pub fn alloc(&self) -> (Vec<f64>, Vec<f64>) {
        (
            crate::util::random_vec(self.n * self.n, 0xAB),
            crate::util::random_vec(self.n * self.n, 0xCD),
        )
    }

    /// Sequential reference (i-k-j loop order for cache behaviour).
    pub fn seq(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = a[i * n + k];
                let brow = &b[k * n..(k + 1) * n];
                let crow = &mut c[i * n..(i + 1) * n];
                for (cij, bkj) in crow.iter_mut().zip(brow) {
                    *cij += aik * bkj;
                }
            }
        }
        c
    }

    /// Runs under `model`: the parallel loop is over rows of `C`.
    pub fn run(&self, exec: &Executor, model: Model, a: &[f64], b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut c = vec![0.0; n * n];
        {
            let out = UnsafeSlice::new(&mut c);
            exec.parallel_for(model, 0..n, &|chunk| {
                for i in chunk {
                    // SAFETY: disjoint chunks ⇒ disjoint C rows.
                    let crow = unsafe { out.slice_mut(i * n..(i + 1) * n) };
                    for k in 0..n {
                        let aik = a[i * n + k];
                        let brow = &b[k * n..(k + 1) * n];
                        for (cij, bkj) in crow.iter_mut().zip(brow) {
                            *cij += aik * bkj;
                        }
                    }
                }
            });
        }
        c
    }

    /// Simulator descriptor: one iteration = one row of `C` (`n²` mul-adds);
    /// high arithmetic intensity, light effective traffic (B is reused).
    pub fn sim_workload(&self) -> LoopWorkload {
        let n = self.n as f64;
        LoopWorkload {
            iters: self.n as u64,
            work_ns_per_iter: n * n * 0.45,
            bytes_per_iter: n * 16.0,
            imbalance: Imbalance::Uniform,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::max_abs_diff;

    #[test]
    fn all_six_versions_match_sequential() {
        let k = Matmul::native(33);
        let (a, b) = k.alloc();
        let expected = k.seq(&a, &b);
        let exec = Executor::new(3);
        for model in Model::ALL {
            let c = k.run(&exec, model, &a, &b);
            assert!(max_abs_diff(&c, &expected) < 1e-9, "{model}");
        }
    }

    #[test]
    fn identity_times_identity() {
        let k = Matmul::native(4);
        let mut a = vec![0.0; 16];
        for i in 0..4 {
            a[i * 4 + i] = 1.0;
        }
        let exec = Executor::new(2);
        let c = k.run(&exec, Model::CilkFor, &a, &a);
        assert_eq!(c, a);
    }
}
