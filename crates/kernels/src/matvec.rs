//! Matvec: `y = A·x` (Fig. 3).
//!
//! "Matvec is matrix vector multiplication of problem size 40k ... cilk_for
//! performs around 25% worse than the other versions" — more arithmetic per
//! iteration than Axpy, so scheduling overhead matters less.

use tpm_core::{Executor, KernelVariant, Model};
use tpm_sim::{Imbalance, LoopWorkload};

use crate::util::UnsafeSlice;

/// Accumulator lanes of the optimized dot product — 8 independent partials
/// break the serial addition chain of `iter().sum()` so the row·x loop
/// vectorizes.
const LANES: usize = 8;

/// Optimized dot product with split accumulators (reassociates; verified
/// against the reference with the relative-epsilon/ULP helper).
fn dot_opt(row: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(row.len(), x.len());
    let mut lanes = [0.0f64; LANES];
    let mut rc = row.chunks_exact(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (rv, xv) in (&mut rc).zip(&mut xc) {
        for j in 0..LANES {
            lanes[j] += rv[j] * xv[j];
        }
    }
    let mut tail = 0.0;
    for (ri, xi) in rc.remainder().iter().zip(xc.remainder()) {
        tail += ri * xi;
    }
    tail + ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]))
}

/// Matvec problem instance (row-major dense `n×n`).
#[derive(Debug, Clone, Copy)]
pub struct Matvec {
    /// Matrix dimension (paper: 40 k).
    pub n: usize,
}

impl Matvec {
    /// The paper's configuration: n = 40 k.
    pub fn paper() -> Self {
        Self { n: 40_000 }
    }

    /// A scaled-down instance for native runs.
    pub fn native(n: usize) -> Self {
        Self { n }
    }

    /// Allocates `(A, x)` deterministically.
    pub fn alloc(&self) -> (Vec<f64>, Vec<f64>) {
        (
            crate::util::random_vec(self.n * self.n, 0x3A7),
            crate::util::random_vec(self.n, 0x9E1),
        )
    }

    /// [`Self::alloc`] with parallel first-touch under `model`.
    pub fn alloc_on(&self, exec: &Executor, model: Model) -> (Vec<f64>, Vec<f64>) {
        (
            crate::util::random_vec_on(exec, model, self.n * self.n, 0x3A7),
            crate::util::random_vec_on(exec, model, self.n, 0x9E1),
        )
    }

    /// Sequential reference.
    pub fn seq(&self, a: &[f64], x: &[f64]) -> Vec<f64> {
        let n = self.n;
        (0..n)
            .map(|i| {
                let row = &a[i * n..(i + 1) * n];
                row.iter().zip(x).map(|(aij, xj)| aij * xj).sum()
            })
            .collect()
    }

    /// Runs under `model`: the parallel loop is over rows (paper-faithful
    /// [`KernelVariant::Reference`] body).
    pub fn run(&self, exec: &Executor, model: Model, a: &[f64], x: &[f64]) -> Vec<f64> {
        self.run_v(exec, model, KernelVariant::Reference, a, x)
    }

    /// Runs under `model` with the selected data-path `variant`.
    pub fn run_v(
        &self,
        exec: &Executor,
        model: Model,
        variant: KernelVariant,
        a: &[f64],
        x: &[f64],
    ) -> Vec<f64> {
        let n = self.n;
        let mut y = vec![0.0; n];
        {
            let out = UnsafeSlice::new(&mut y);
            match variant {
                KernelVariant::Reference => {
                    crate::util::pfor(exec, model, 0..n, &|chunk| {
                        for i in chunk {
                            let row = &a[i * n..(i + 1) * n];
                            let dot: f64 = row.iter().zip(x).map(|(aij, xj)| aij * xj).sum();
                            // SAFETY: disjoint chunks ⇒ disjoint rows.
                            unsafe { out.write(i, dot) };
                        }
                    });
                }
                KernelVariant::Optimized => {
                    crate::util::pfor(exec, model, 0..n, &|chunk| {
                        for i in chunk {
                            let dot = dot_opt(&a[i * n..(i + 1) * n], x);
                            // SAFETY: disjoint chunks ⇒ disjoint rows.
                            unsafe { out.write(i, dot) };
                        }
                    });
                }
            }
        }
        y
    }

    /// Simulator descriptor: one iteration = one row dot product
    /// (`n` mul-adds, `8n` bytes of matrix row streamed; `x` stays cached).
    pub fn sim_workload(&self) -> LoopWorkload {
        LoopWorkload {
            iters: self.n as u64,
            work_ns_per_iter: self.n as f64 * 0.4,
            bytes_per_iter: self.n as f64 * 8.0,
            imbalance: Imbalance::Uniform,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::max_abs_diff;

    #[test]
    fn all_six_versions_match_sequential() {
        let k = Matvec::native(97);
        let (a, x) = k.alloc();
        let expected = k.seq(&a, &x);
        let exec = Executor::new(3);
        for model in Model::ALL {
            let y = k.run(&exec, model, &a, &x);
            assert!(max_abs_diff(&y, &expected) < 1e-9, "{model}");
        }
    }

    #[test]
    fn optimized_variant_matches_reference_within_tolerance() {
        let k = Matvec::native(101); // odd: tail lanes exercised every row
        let (a, x) = k.alloc();
        let expected = k.seq(&a, &x);
        let exec = Executor::new(3);
        for model in Model::ALL {
            let y = k.run_v(&exec, model, KernelVariant::Optimized, &a, &x);
            tpm_core::approx::slices_close(&y, &expected, 1e-12)
                .unwrap_or_else(|e| panic!("{model}: {e}"));
        }
    }

    #[test]
    fn single_row_matrix() {
        let k = Matvec::native(1);
        let (a, x) = k.alloc();
        let exec = Executor::new(2);
        let y = k.run(&exec, Model::OmpFor, &a, &x);
        assert_eq!(y.len(), 1);
        assert!((y[0] - a[0] * x[0]).abs() < 1e-12);
    }
}
