//! Fibonacci: recursive task parallelism (Fig. 5).
//!
//! "Fibonacci uses recursive task parallelism ... thus cilk_for and omp_for
//! are not practical. In addition, for recursive implementation in C++, when
//! problem size increases to 20 or above, the system hangs ... Thus, for
//! this application, only the performance of cilk_spawn and omp_task for
//! problem size 40 are provided." The finding: `cilk_spawn` ≈ 20% faster
//! than `omp_task` (lock-free vs lock-based task deques), except at 1 core.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use tpm_actors::{ActorRuntime, Promise};
use tpm_forkjoin::{Ctx, Team};
use tpm_sim::FibWorkload;
use tpm_sync::SpinLock;
use tpm_worksteal::{join, Runtime, WorkerCtx};

/// Fibonacci problem instance.
#[derive(Debug, Clone, Copy)]
pub struct Fib {
    /// Argument (paper: 40).
    pub n: u64,
    /// Sequential cutoff for the task versions (tasks are spawned only above
    /// this argument; standard practice to bound task granularity).
    pub cutoff: u64,
}

impl Fib {
    /// The paper's configuration: fib(40).
    pub fn paper() -> Self {
        Self { n: 40, cutoff: 18 }
    }

    /// A scaled-down instance for native runs.
    pub fn native(n: u64) -> Self {
        Self {
            n,
            cutoff: n.saturating_sub(8).max(2),
        }
    }

    /// Sequential recursive reference (the same recurrence every version
    /// computes, so times are comparable).
    pub fn seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            Self::seq(n - 1) + Self::seq(n - 2)
        }
    }

    /// `omp_task` version: `parallel` + `single` + recursive `task`/`taskwait`.
    pub fn run_omp_task(&self, team: &Team) -> u64 {
        fn rec(ctx: &Ctx<'_>, n: u64, cutoff: u64) -> u64 {
            if n < 2 || n <= cutoff {
                return Fib::seq(n);
            }
            let mut a = 0;
            let mut b = 0;
            ctx.task_scope(|s| {
                s.spawn(|c| a = rec(c, n - 1, cutoff));
                b = rec(ctx, n - 2, cutoff);
            });
            a + b
        }
        let result = std::sync::atomic::AtomicU64::new(0);
        let (n, cutoff) = (self.n, self.cutoff);
        team.parallel(|ctx| {
            ctx.single(|| {
                result.store(rec(ctx, n, cutoff), std::sync::atomic::Ordering::Relaxed);
            });
        });
        result.into_inner()
    }

    /// `cilk_spawn` version: recursive `join` on the work-stealing runtime.
    pub fn run_cilk_spawn(&self, rt: &Runtime) -> u64 {
        fn rec(ctx: &WorkerCtx<'_>, n: u64, cutoff: u64) -> u64 {
            if n < 2 || n <= cutoff {
                return Fib::seq(n);
            }
            let (a, b) = join(ctx, |c| rec(c, n - 1, cutoff), |c| rec(c, n - 2, cutoff));
            a + b
        }
        let (n, cutoff) = (self.n, self.cutoff);
        rt.install(move |ctx| rec(ctx, n, cutoff))
    }

    /// C++11 `std::async` recursive version *with* cutoff (the workable one).
    pub fn run_cxx_async(&self) -> u64 {
        tpm_rawthreads::fib_with_cutoff(self.n, self.cutoff)
    }

    /// Actor-parcel version: continuation-passing join tree. Each node above
    /// the cutoff spawns its left child as a stealable activation and walks
    /// the right child inline; children complete promises whose
    /// continuations fold into a shared join cell, and the *last* child to
    /// arrive propagates the sum upward on its own thread — no worker ever
    /// blocks on a dependency (the HPX/Charm++ dataflow style, vs. the
    /// blocking `join` of `cilk_spawn`).
    pub fn run_actor_task(&self, rt: &ActorRuntime) -> u64 {
        struct JoinCell {
            sum: AtomicU64,
            pending: AtomicUsize,
            out: SpinLock<Option<Promise<u64>>>,
        }

        fn child(cell: Arc<JoinCell>) -> Promise<u64> {
            Promise::on_complete(move |v| {
                cell.sum.fetch_add(v, Ordering::Relaxed);
                if cell.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let out = cell.out.lock().take().expect("join emits once");
                    out.set(cell.sum.load(Ordering::Relaxed));
                }
            })
        }

        fn node(ctx: &tpm_actors::WorkerCtx<'_>, n: u64, cutoff: u64, out: Promise<u64>) {
            if n < 2 || n <= cutoff {
                out.set(Fib::seq(n));
                return;
            }
            let cell = Arc::new(JoinCell {
                sum: AtomicU64::new(0),
                pending: AtomicUsize::new(2),
                out: SpinLock::new(Some(out)),
            });
            let left = child(Arc::clone(&cell));
            ctx.spawn(move |c| node(c, n - 1, cutoff, left));
            let right = child(cell);
            node(ctx, n - 2, cutoff, right);
        }

        let (future, promise) = tpm_actors::future();
        let (n, cutoff) = (self.n, self.cutoff);
        rt.spawn(move |ctx| node(ctx, n, cutoff, promise));
        future.wait()
    }

    /// C++11 naive version (no cutoff): returns the paper's failure mode as
    /// an error when the thread budget would be exceeded.
    pub fn run_cxx_naive(
        &self,
        budget: &tpm_rawthreads::ThreadBudget,
    ) -> Result<u64, tpm_rawthreads::ThreadExplosion> {
        tpm_rawthreads::fib_thread_per_call(self.n, budget)
    }

    /// Simulator descriptor for the paper-scale run.
    pub fn sim_workload(&self) -> FibWorkload {
        FibWorkload {
            n: self.n,
            leaf_cutoff: self.cutoff,
            call_ns: 2.2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_versions_agree_with_sequential() {
        let k = Fib::native(22);
        let expected = Fib::seq(22);
        assert_eq!(expected, 17_711);
        let team = Team::new(4);
        assert_eq!(k.run_omp_task(&team), expected);
        let rt = Runtime::new(4);
        assert_eq!(k.run_cilk_spawn(&rt), expected);
        assert_eq!(k.run_cxx_async(), expected);
        let actors = ActorRuntime::new(4);
        assert_eq!(k.run_actor_task(&actors), expected);
    }

    #[test]
    fn actor_version_handles_base_cases_and_deep_trees() {
        let actors = ActorRuntime::new(2);
        assert_eq!(Fib { n: 0, cutoff: 0 }.run_actor_task(&actors), 0);
        assert_eq!(Fib { n: 1, cutoff: 0 }.run_actor_task(&actors), 1);
        // cutoff 0: every node above the leaves is a spawned activation.
        assert_eq!(Fib { n: 16, cutoff: 0 }.run_actor_task(&actors), 987);
        // Runtime stays healthy for a second tree.
        assert_eq!(Fib { n: 18, cutoff: 4 }.run_actor_task(&actors), 2584);
    }

    #[test]
    fn naive_cxx_explodes_like_the_paper_says() {
        let k = Fib { n: 20, cutoff: 0 };
        let budget = tpm_rawthreads::ThreadBudget::new(128);
        assert!(k.run_cxx_naive(&budget).is_err());
    }

    #[test]
    fn base_cases() {
        assert_eq!(Fib::seq(0), 0);
        assert_eq!(Fib::seq(1), 1);
        let team = Team::new(2);
        assert_eq!(Fib { n: 1, cutoff: 0 }.run_omp_task(&team), 1);
        let rt = Runtime::new(2);
        assert_eq!(Fib { n: 0, cutoff: 0 }.run_cilk_spawn(&rt), 0);
    }

    #[test]
    fn cutoff_does_not_change_the_value() {
        let rt = Runtime::new(2);
        for cutoff in [0, 5, 30] {
            assert_eq!(Fib { n: 18, cutoff }.run_cilk_spawn(&rt), Fib::seq(18));
        }
    }
}
