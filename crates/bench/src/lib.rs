//! # tpm-bench — Criterion benchmark targets
//!
//! One bench target per paper figure (native scale, fixed thread count, one
//! benchmark per variant) and per table (render cost + content assertions),
//! plus ablation benches for the design choices DESIGN.md calls out
//! (deque protocol, worksharing schedule, splitting grain, recursion cutoff,
//! task scheduling mode, simulator cost-model terms).
//!
//! All groups use small sample counts and short measurement windows so the
//! full suite completes on a single-core CI host; the *relative* ordering of
//! variants is what each bench documents.

use std::time::Duration;

/// Applies the suite-wide fast-bench settings to a group.
pub fn tune<M: criterion::measurement::Measurement>(g: &mut criterion::BenchmarkGroup<'_, M>) {
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
}

/// The fixed thread count native figure benches use.
pub const BENCH_THREADS: usize = 2;
