//! Fig. 4 (Matmul): native-scale comparison of all six variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_core::{Executor, Model};
use tpm_kernels::Matmul;

fn fig4(c: &mut Criterion) {
    let exec = Executor::new(BENCH_THREADS);
    let k = Matmul::native(64);
    let (a, b_in) = k.alloc();
    let mut g = c.benchmark_group("fig4_matmul");
    tune(&mut g);
    for model in Model::ALL {
        g.bench_function(model.name(), |b| {
            b.iter(|| black_box(k.run(&exec, model, &a, &b_in)))
        });
    }
    g.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
