//! Fig. 1 (Axpy): native-scale comparison of all six variants.

use criterion::{criterion_group, criterion_main, Criterion};
use tpm_bench::{tune, BENCH_THREADS};
use tpm_core::{Executor, Model};
use tpm_kernels::Axpy;

fn fig1(c: &mut Criterion) {
    let exec = Executor::new(BENCH_THREADS);
    let k = Axpy::native(200_000);
    let (x, y0) = k.alloc();
    let mut y = y0.clone();
    let mut g = c.benchmark_group("fig1_axpy");
    tune(&mut g);
    for model in Model::ALL {
        g.bench_function(model.name(), |b| {
            b.iter(|| {
                y.copy_from_slice(&y0);
                k.run(&exec, model, &x, &mut y);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
