//! Ablation: work-first vs breadth-first task scheduling (paper §III-B:
//! "task schedulers are based on work-first and breadth-first schedulers").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_forkjoin::{TaskMode, Team, TeamConfig};

fn run_tasks(team: &Team, tasks: usize, work: u64) -> u64 {
    let acc = std::sync::atomic::AtomicU64::new(0);
    team.parallel(|ctx| {
        ctx.single(|| {
            ctx.task_scope(|s| {
                for t in 0..tasks {
                    let acc = &acc;
                    s.spawn(move |_| {
                        let mut local = 0u64;
                        for i in 0..work {
                            local = local.wrapping_add(i ^ t as u64);
                        }
                        acc.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            });
        });
    });
    acc.into_inner()
}

fn taskmodes(c: &mut Criterion) {
    let wf = Team::with_config(
        BENCH_THREADS,
        TeamConfig {
            task_mode: TaskMode::WorkFirst,
            ..TeamConfig::default()
        },
    );
    let bf = Team::with_config(
        BENCH_THREADS,
        TeamConfig {
            task_mode: TaskMode::BreadthFirst,
            ..TeamConfig::default()
        },
    );
    let mut g = c.benchmark_group("ablation_taskmode/512_tasks");
    tune(&mut g);
    g.bench_function("work_first", |b| {
        b.iter(|| black_box(run_tasks(&wf, 512, 500)))
    });
    g.bench_function("breadth_first", |b| {
        b.iter(|| black_box(run_tasks(&bf, 512, 500)))
    });
    g.finish();
}

criterion_group!(benches, taskmodes);
criterion_main!(benches);
