//! Fig. 9 (Rodinia LavaMD): native-scale comparison of all six variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_core::{Executor, Model};
use tpm_rodinia::LavaMd;

fn fig9(c: &mut Criterion) {
    let exec = Executor::new(BENCH_THREADS);
    let l = LavaMd::native(3, 12);
    let particles = l.generate();
    let mut g = c.benchmark_group("fig9_lavamd");
    tune(&mut g);
    for model in Model::ALL {
        g.bench_function(model.name(), |b| {
            b.iter(|| black_box(l.run(&exec, model, &particles)))
        });
    }
    g.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
