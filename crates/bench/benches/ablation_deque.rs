//! Ablation: lock-based vs lock-free task deques — the mechanism behind the
//! paper's Fig. 5 gap ("lock-based deque ... increases more contention and
//! overhead than the workstealing protocol in Cilk Plus").
//!
//! Benchmarks the raw data structures under an owner/thief workload, and the
//! simulated fib(30) under both disciplines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::tune;
use tpm_sim::{DequeKind, FibWorkload, Simulator};
use tpm_sync::{chase_lev, LockedDeque};

fn raw_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_deque/raw_push_pop");
    tune(&mut g);
    g.bench_function("chase_lev", |b| {
        let (w, _s) = chase_lev::deque::<u64>(1024);
        b.iter(|| {
            for i in 0..256 {
                w.push(i);
            }
            while let Some(v) = w.pop() {
                black_box(v);
            }
        });
    });
    g.bench_function("locked", |b| {
        let d = LockedDeque::new();
        b.iter(|| {
            for i in 0..256u64 {
                d.push_bottom(i);
            }
            while let Some(v) = d.pop_bottom() {
                black_box(v);
            }
        });
    });
    g.finish();

    let mut g = c.benchmark_group("ablation_deque/owner_vs_thief");
    tune(&mut g);
    g.bench_function("chase_lev_contended", |b| {
        b.iter(|| {
            let (w, s) = chase_lev::deque::<u64>(1024);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let mut got = 0;
                    while got < 2_000 {
                        if let chase_lev::Steal::Success(v) = s.steal() {
                            black_box(v);
                            got += 1;
                        }
                    }
                });
                for i in 0..4_000u64 {
                    w.push(i);
                }
                let mut got = 0;
                while got < 2_000 {
                    if let Some(v) = w.pop() {
                        black_box(v);
                        got += 1;
                    }
                }
            });
        });
    });
    g.bench_function("locked_contended", |b| {
        b.iter(|| {
            let d = LockedDeque::new();
            std::thread::scope(|scope| {
                let d2 = d.clone();
                scope.spawn(move || {
                    let mut got = 0;
                    while got < 2_000 {
                        if let Some(v) = d2.steal_top() {
                            black_box(v);
                            got += 1;
                        }
                    }
                });
                for i in 0..4_000u64 {
                    d.push_bottom(i);
                }
                let mut got = 0;
                while got < 2_000 {
                    if let Some(v) = d.pop_bottom() {
                        black_box(v);
                        got += 1;
                    }
                }
            });
        });
    });
    g.finish();
}

fn simulated_fib(c: &mut Criterion) {
    let sim = Simulator::paper_testbed();
    let fw = FibWorkload {
        n: 30,
        leaf_cutoff: 16,
        call_ns: 2.2,
    };
    let mut g = c.benchmark_group("ablation_deque/sim_fib30_16t");
    tune(&mut g);
    for (name, kind) in [
        ("lockfree", DequeKind::LockFree),
        ("locked", DequeKind::Locked),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(sim.run_fib(kind, &fw, 16))));
    }
    g.finish();
}

criterion_group!(benches, raw_ops, simulated_fib);
criterion_main!(benches);
