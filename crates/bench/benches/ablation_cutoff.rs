//! Ablation: the recursion cutoff (BASE) in C++11-style task recursion —
//! "helps to control task creation and to avoid oversubscription" (paper
//! §IV-A). Thread-per-split cost makes fine cutoffs catastrophic.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::tune;
use tpm_rawthreads::{fib_with_cutoff, recursive_for};

fn cutoffs(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cutoff/recursive_for_64k");
    tune(&mut g);
    for (name, base) in [
        ("base_n_over_2", 32_768usize),
        ("base_n_over_8", 8_192),
        ("base_n_over_64", 1_024),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                recursive_for(0..65_536, base, &|chunk| {
                    let mut acc = 0u64;
                    for i in chunk {
                        acc = acc.wrapping_add(i as u64);
                    }
                    black_box(acc);
                });
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_cutoff/fib20");
    tune(&mut g);
    for (name, cutoff) in [("cutoff_18", 18u64), ("cutoff_14", 14), ("cutoff_10", 10)] {
        g.bench_function(name, |b| b.iter(|| black_box(fib_with_cutoff(20, cutoff))));
    }
    g.finish();
}

criterion_group!(benches, cutoffs);
criterion_main!(benches);
