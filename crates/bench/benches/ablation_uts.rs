//! Extension bench (paper §V related work, Olivier & Prins): Unbalanced
//! Tree Search — the workload where "only the Intel compiler illustrates
//! good load balancing". Compares the lock-free work-stealing traversal
//! against the lock-based-deque task traversal on identical trees.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_kernels::Uts;

fn uts(c: &mut Criterion) {
    let u = Uts::standard(7);
    let expected = u.seq();
    let rt = tpm_worksteal::Runtime::new(BENCH_THREADS);
    let team = tpm_forkjoin::Team::new(BENCH_THREADS);
    assert_eq!(u.run_worksteal(&rt), expected);
    assert_eq!(u.run_omp_task(&team), expected);
    let mut g = c.benchmark_group("ablation_uts");
    tune(&mut g);
    g.bench_function("sequential", |b| b.iter(|| black_box(u.seq())));
    g.bench_function("cilk_spawn", |b| b.iter(|| black_box(u.run_worksteal(&rt))));
    g.bench_function("omp_task", |b| b.iter(|| black_box(u.run_omp_task(&team))));
    g.finish();
}

criterion_group!(benches, uts);
criterion_main!(benches);
