//! Fig. 3 (Matvec): native-scale comparison of all six variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_core::{Executor, Model};
use tpm_kernels::Matvec;

fn fig3(c: &mut Criterion) {
    let exec = Executor::new(BENCH_THREADS);
    let k = Matvec::native(256);
    let (a, x) = k.alloc();
    let mut g = c.benchmark_group("fig3_matvec");
    tune(&mut g);
    for model in Model::ALL {
        g.bench_function(model.name(), |b| {
            b.iter(|| black_box(k.run(&exec, model, &a, &x)))
        });
    }
    g.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
