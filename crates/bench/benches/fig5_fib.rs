//! Fig. 5 (Fibonacci): the two task-parallel variants (the paper's C++11
//! recursive version explodes without a cutoff and is excluded, as in the
//! paper; the cutoff variant is benchmarked in `ablation_cutoff`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_core::Executor;
use tpm_kernels::Fib;

fn fig5(c: &mut Criterion) {
    let exec = Executor::new(BENCH_THREADS);
    let k = Fib::native(22);
    let mut g = c.benchmark_group("fig5_fib");
    tune(&mut g);
    g.bench_function("omp_task", |b| {
        b.iter(|| black_box(k.run_omp_task(exec.team())))
    });
    g.bench_function("cilk_spawn", |b| {
        b.iter(|| black_box(k.run_cilk_spawn(exec.worksteal())))
    });
    g.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
