//! Micro-benchmarks of the from-scratch primitives against their `std`
//! equivalents: the substrate costs every runtime comparison rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::tune;
use tpm_sync::{Barrier, Mutex, SpinLock};

fn locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives/uncontended_lock");
    tune(&mut g);
    let spin = SpinLock::new(0u64);
    g.bench_function("spinlock", |b| b.iter(|| *black_box(&spin).lock() += 1));
    let ours = Mutex::new(0u64);
    g.bench_function("tpm_mutex", |b| b.iter(|| *black_box(&ours).lock() += 1));
    let std_m = std::sync::Mutex::new(0u64);
    g.bench_function("std_mutex", |b| {
        b.iter(|| *black_box(&std_m).lock().unwrap() += 1)
    });
    g.finish();
}

fn barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives/barrier_2_threads");
    tune(&mut g);
    g.bench_function("tpm_barrier_100_phases", |b| {
        b.iter(|| {
            let bar = Barrier::new(2);
            std::thread::scope(|s| {
                s.spawn(|| {
                    for _ in 0..100 {
                        bar.wait();
                    }
                });
                for _ in 0..100 {
                    bar.wait();
                }
            });
        })
    });
    g.bench_function("std_barrier_100_phases", |b| {
        b.iter(|| {
            let bar = std::sync::Barrier::new(2);
            std::thread::scope(|s| {
                s.spawn(|| {
                    for _ in 0..100 {
                        bar.wait();
                    }
                });
                for _ in 0..100 {
                    bar.wait();
                }
            });
        })
    });
    g.finish();
}

fn oneshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives/oneshot");
    tune(&mut g);
    g.bench_function("send_recv_same_thread", |b| {
        b.iter(|| {
            let (tx, rx) = tpm_sync::oneshot::channel();
            tx.send(7u64);
            black_box(rx.recv().unwrap());
        })
    });
    g.finish();
}

criterion_group!(benches, locks, barriers, oneshot);
criterion_main!(benches);
