//! Ablation: static vs dynamic vs guided worksharing schedules, on a
//! uniform and a front-loaded (LUD-like) load.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_forkjoin::{Schedule, Team};

fn schedules(c: &mut Criterion) {
    let team = Team::new(BENCH_THREADS);
    let cases = [
        ("static", Schedule::Static { chunk: None }),
        ("static_16", Schedule::Static { chunk: Some(16) }),
        ("dynamic_16", Schedule::Dynamic { chunk: 16 }),
        ("guided_8", Schedule::Guided { min_chunk: 8 }),
    ];

    let mut g = c.benchmark_group("ablation_schedule/uniform");
    tune(&mut g);
    for (name, sched) in cases {
        g.bench_function(name, |b| {
            b.iter(|| {
                team.parallel_for_chunks(BENCH_THREADS, sched, 0..20_000, |chunk| {
                    let mut acc = 0u64;
                    for i in chunk {
                        acc = acc.wrapping_add((i as u64).wrapping_mul(0x9E37));
                    }
                    black_box(acc);
                });
            })
        });
    }
    g.finish();

    // Front-loaded: iteration i costs ~ (n - i) work units (triangular, the
    // LUD shape) — dynamic/guided should close the static imbalance.
    let mut g = c.benchmark_group("ablation_schedule/front_loaded");
    tune(&mut g);
    for (name, sched) in cases {
        g.bench_function(name, |b| {
            b.iter(|| {
                team.parallel_for_chunks(BENCH_THREADS, sched, 0..2_000, |chunk| {
                    let mut acc = 0u64;
                    for i in chunk {
                        for j in i..2_000 {
                            acc = acc.wrapping_add(j as u64);
                        }
                    }
                    black_box(acc);
                });
            })
        });
    }
    g.finish();
}

criterion_group!(benches, schedules);
criterion_main!(benches);
