//! Ablation: which simulator cost terms drive which paper conclusions.
//! Disabling the steal-locality derate erases the Fig. 1 cilk_for gap;
//! disabling the NUMA penalty shifts the bandwidth plateau.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::tune;
use tpm_kernels::Axpy;
use tpm_sim::{LoopPolicy, Simulator};

fn simcost(c: &mut Criterion) {
    let wl = Axpy::paper().sim_workload();
    let base = Simulator::paper_testbed();
    let mut no_locality = base;
    no_locality.cost.steal_locality_derate = 1.0;
    let mut no_numa = base;
    no_numa.machine.numa_bw_penalty = 1.0;

    // Report the figure-level effect once (this is the point of the bench).
    let gap = |sim: &Simulator| {
        let cilk = sim
            .run_loop(LoopPolicy::WorkstealingSplit { grain: 0 }, &wl, 16)
            .makespan_ns;
        let omp = sim
            .run_loop(LoopPolicy::WorksharingStatic, &wl, 16)
            .makespan_ns;
        cilk / omp
    };
    println!(
        "axpy cilk_for/omp_for gap @16t: calibrated {:.2}, no-locality-derate {:.2}, no-numa {:.2}",
        gap(&base),
        gap(&no_locality),
        gap(&no_numa)
    );

    let mut g = c.benchmark_group("ablation_simcost/axpy_sweep_runtime");
    tune(&mut g);
    for (name, sim) in [
        ("calibrated", base),
        ("no_locality_derate", no_locality),
        ("no_numa_penalty", no_numa),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                for p in [1usize, 8, 36] {
                    black_box(sim.run_loop(LoopPolicy::WorkstealingSplit { grain: 0 }, &wl, p));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, simcost);
criterion_main!(benches);
