//! Fig. 2 (Sum): native-scale reduction under all six variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_core::{Executor, Model};
use tpm_kernels::Sum;

fn fig2(c: &mut Criterion) {
    let exec = Executor::new(BENCH_THREADS);
    let k = Sum::native(200_000);
    let x = k.alloc();
    let mut g = c.benchmark_group("fig2_sum");
    tune(&mut g);
    for model in Model::ALL {
        g.bench_function(model.name(), |b| {
            b.iter(|| black_box(k.run(&exec, model, &x)))
        });
    }
    g.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
