//! Tables I-III: regeneration cost and content sanity (the tables are data;
//! this target exists so `cargo bench` exercises every table, per the
//! reproduction's experiment index).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::tune;

fn tables(c: &mut Criterion) {
    // Content sanity before timing anything.
    assert!(tpm_features::table1().contains("cilk_spawn/cilk_sync"));
    assert!(tpm_features::table2().contains("OMP_PLACES"));
    assert!(tpm_features::table3().contains("omp cancel"));
    let mut g = c.benchmark_group("tables");
    tune(&mut g);
    g.bench_function("table1_parallelism", |b| {
        b.iter(|| black_box(tpm_features::table1()))
    });
    g.bench_function("table2_memory_sync", |b| {
        b.iter(|| black_box(tpm_features::table2()))
    });
    g.bench_function("table3_misc", |b| {
        b.iter(|| black_box(tpm_features::table3()))
    });
    g.finish();
}

criterion_group!(benches, tables);
criterion_main!(benches);
