//! Ablation: `par_for` grain size — too fine pays steal/split overhead per
//! tiny leaf; too coarse starves workers (the cilk_for grainsize trade-off).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_worksteal::{par_for, Grain, Runtime};

fn grains(c: &mut Criterion) {
    let rt = Runtime::new(BENCH_THREADS);
    let mut g = c.benchmark_group("ablation_grain/par_for_100k");
    tune(&mut g);
    for (name, grain) in [
        ("grain_1", Grain::Fixed(1)),
        ("grain_64", Grain::Fixed(64)),
        ("grain_2048", Grain::Fixed(2048)),
        ("grain_50000", Grain::Fixed(50_000)),
        ("auto", Grain::Auto),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                rt.install(|ctx| {
                    par_for(ctx, 0..100_000, grain, &|chunk| {
                        let mut acc = 0u64;
                        for i in chunk {
                            acc = acc.wrapping_add(i as u64);
                        }
                        black_box(acc);
                    });
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, grains);
criterion_main!(benches);
