//! Fig. 8 (Rodinia LUD): native-scale comparison of all six variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_core::{Executor, Model};
use tpm_rodinia::Lud;

fn fig8(c: &mut Criterion) {
    let exec = Executor::new(BENCH_THREADS);
    let l = Lud::native(64);
    let a = l.generate();
    let mut g = c.benchmark_group("fig8_lud");
    tune(&mut g);
    for model in Model::ALL {
        g.bench_function(model.name(), |b| {
            b.iter(|| black_box(l.run(&exec, model, &a)))
        });
    }
    g.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
