//! Fig. 6 (Rodinia BFS): native-scale comparison of all six variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_core::{Executor, Model};
use tpm_rodinia::Bfs;

fn fig6(c: &mut Criterion) {
    let exec = Executor::new(BENCH_THREADS);
    let bfs = Bfs::native(20_000);
    let graph = bfs.generate();
    let mut g = c.benchmark_group("fig6_bfs");
    tune(&mut g);
    for model in Model::ALL {
        g.bench_function(model.name(), |b| {
            b.iter(|| black_box(bfs.run(&exec, model, &graph)))
        });
    }
    g.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
