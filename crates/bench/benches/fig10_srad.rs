//! Fig. 10 (Rodinia SRAD): native-scale comparison of all six variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_core::{Executor, Model};
use tpm_rodinia::Srad;

fn fig10(c: &mut Criterion) {
    let exec = Executor::new(BENCH_THREADS);
    let s = Srad::native(64, 2);
    let img = s.generate();
    let mut g = c.benchmark_group("fig10_srad");
    tune(&mut g);
    for model in Model::ALL {
        g.bench_function(model.name(), |b| {
            b.iter(|| black_box(s.run(&exec, model, &img)))
        });
    }
    g.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
