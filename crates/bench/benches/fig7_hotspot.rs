//! Fig. 7 (Rodinia HotSpot): native-scale comparison of all six variants.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpm_bench::{tune, BENCH_THREADS};
use tpm_core::{Executor, Model};
use tpm_rodinia::HotSpot;

fn fig7(c: &mut Criterion) {
    let exec = Executor::new(BENCH_THREADS);
    let h = HotSpot::native(96, 4);
    let (t, p) = h.generate();
    let mut g = c.benchmark_group("fig7_hotspot");
    tune(&mut g);
    for model in Model::ALL {
        g.bench_function(model.name(), |b| {
            b.iter(|| black_box(h.run(&exec, model, &t, &p)))
        });
    }
    g.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
