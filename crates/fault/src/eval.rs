//! Per-instance plan evaluation, independent of the `inject` feature.
//!
//! The process-global prober ([`crate::probe`]) is the right shape for the
//! real runtimes: probes are sprinkled through hot paths, and the active
//! plan is ambient state. The deterministic simulator needs the opposite:
//! an *owned* evaluator it can instantiate per run (thousands of seeds in
//! one process, no global installs, no feature flag) that still makes
//! byte-identical decisions to the global prober for the same plan and hit
//! sequence — one plan file drives both the chaos harness and `tpm-desim`.

use crate::plan::{mix, prob_threshold};
use crate::{FaultKind, FaultPlan, FiredFault, Site};

/// What a rule decided for one hit, as returned by [`PlanEval::decide`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The fault that fired.
    pub kind: FaultKind,
    /// The rule's `delay_us` (delay length, or partition duration for
    /// [`FaultKind::Partition`]).
    pub delay_us: u64,
    /// Index of the firing rule in the plan.
    pub rule: usize,
    /// Zero-based hit index at the site.
    pub hit: u64,
}

struct EvalRule {
    site: Site,
    kind: FaultKind,
    nth: Option<u64>,
    threshold: u64,
    max_fires: u64,
    delay_us: u64,
    fires: u64,
}

/// An owned, single-threaded evaluator over a [`FaultPlan`].
///
/// Unlike the global prober it needs no `inject` feature and no
/// installation: callers ask [`decide`](PlanEval::decide) at their own
/// injection points and interpret the returned [`Decision`] themselves.
/// Decisions are the same pure function of `(seed, site, rule index, hit
/// index)` the prober uses, so replaying a workload replays its faults.
pub struct PlanEval {
    seed: u64,
    rules: Vec<EvalRule>,
    hits: [u64; Site::ALL.len()],
    fired: Vec<FiredFault>,
}

impl PlanEval {
    /// An evaluator over `plan`, using the plan's own seed.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        Self::with_seed(plan, plan.seed)
    }

    /// An evaluator over `plan`'s rules with `seed` overriding the plan
    /// seed — how a seed sweep reuses one rule set across thousands of
    /// runs.
    #[must_use]
    pub fn with_seed(plan: &FaultPlan, seed: u64) -> Self {
        Self {
            seed,
            rules: plan
                .rules
                .iter()
                .map(|r| EvalRule {
                    site: r.site,
                    kind: r.kind,
                    nth: r.nth,
                    threshold: prob_threshold(r.probability),
                    max_fires: r.max_fires,
                    delay_us: r.delay_us,
                    fires: 0,
                })
                .collect(),
            hits: [0; Site::ALL.len()],
            fired: Vec::new(),
        }
    }

    /// Counts one hit at `site` and returns the first rule that fires for
    /// it, if any. First-match semantics, hit counting, `nth`, probability
    /// hashing, and `max_fires` all match the global prober.
    pub fn decide(&mut self, site: Site) -> Option<Decision> {
        let hit = self.hits[site as usize];
        self.hits[site as usize] += 1;
        for (rule_idx, rule) in self.rules.iter_mut().enumerate() {
            if rule.site != site {
                continue;
            }
            let decides = match rule.nth {
                Some(n) => hit + 1 == n,
                None => {
                    rule.threshold > 0
                        && mix(self.seed, site as u64, rule_idx as u64, hit) <= rule.threshold
                }
            };
            if !decides {
                continue;
            }
            if rule.max_fires > 0 && rule.fires >= rule.max_fires {
                continue;
            }
            rule.fires += 1;
            self.fired.push(FiredFault {
                site,
                kind: rule.kind,
                hit,
            });
            return Some(Decision {
                kind: rule.kind,
                delay_us: rule.delay_us,
                rule: rule_idx,
                hit,
            });
        }
        None
    }

    /// Every fault that fired so far, in firing order.
    #[must_use]
    pub fn fired(&self) -> &[FiredFault] {
        &self.fired
    }

    /// Total hits counted at `site`.
    #[must_use]
    pub fn hits(&self, site: Site) -> u64 {
        self.hits[site as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteRule;

    #[test]
    fn nth_rule_fires_on_exactly_that_hit() {
        let plan = FaultPlan::single(SiteRule::nth(Site::NetDeliver, FaultKind::TaskDrop, 3));
        let mut eval = PlanEval::new(&plan);
        let fired: Vec<bool> = (0..5)
            .map(|_| eval.decide(Site::NetDeliver).is_some())
            .collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        assert_eq!(eval.hits(Site::NetDeliver), 5);
        assert_eq!(eval.fired().len(), 1);
        assert_eq!(eval.fired()[0].hit, 2);
    }

    #[test]
    fn same_seed_replays_identically_and_seeds_differ() {
        let plan = FaultPlan {
            seed: 99,
            rules: vec![SiteRule::prob(Site::NetDeliver, FaultKind::Duplicate, 0.3)],
        };
        let run = |seed: u64| {
            let mut eval = PlanEval::with_seed(&plan, seed);
            (0..200)
                .map(|_| eval.decide(Site::NetDeliver).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(7), "different seeds should diverge");
        assert!(run(99).iter().any(|&f| f), "p=0.3 over 200 hits must fire");
        assert!(
            run(99).iter().filter(|&&f| f).count() < 200,
            "p=0.3 must also miss"
        );
    }

    #[test]
    fn max_fires_caps_and_first_match_wins() {
        let mut capped = SiteRule::prob(Site::WorkerPickup, FaultKind::Panic, 1.0);
        capped.max_fires = 2;
        let fallback = SiteRule::prob(Site::WorkerPickup, FaultKind::Delay, 1.0);
        let plan = FaultPlan {
            seed: 0,
            rules: vec![capped, fallback],
        };
        let mut eval = PlanEval::new(&plan);
        let kinds: Vec<FaultKind> = (0..4)
            .map(|_| eval.decide(Site::WorkerPickup).unwrap().kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::Panic,
                FaultKind::Panic,
                FaultKind::Delay,
                FaultKind::Delay
            ]
        );
    }

    #[cfg(feature = "inject")]
    #[test]
    fn matches_the_global_prober_decision_for_decision() {
        use crate::{probe, Action, FaultSession};
        let _g = crate::session_serial();
        let plan = FaultPlan {
            seed: 4242,
            rules: vec![SiteRule::prob(
                Site::JobAdmission,
                FaultKind::StealMiss,
                0.2,
            )],
        };
        let session = FaultSession::install(&plan);
        let global: Vec<bool> = (0..300)
            .map(|_| probe(Site::JobAdmission) == Action::StealMiss)
            .collect();
        drop(session.report());
        let mut eval = PlanEval::new(&plan);
        let local: Vec<bool> = (0..300)
            .map(|_| eval.decide(Site::JobAdmission).is_some())
            .collect();
        assert_eq!(global, local);
    }
}
