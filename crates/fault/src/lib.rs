//! # tpm-fault — deterministic fault injection for the threadcmp runtimes
//!
//! The paper's Table II singles out *error handling* as the weakest feature
//! dimension across threading models; this crate makes it a measurable axis
//! of ours. The runtimes call [`probe`] at a handful of well-defined
//! injection points ([`Site`]); an installed [`FaultPlan`] decides — purely
//! from `(seed, site, hit index)` — whether that probe fires a fault
//! ([`FaultKind`]): a panic, a delay, a forced steal miss, or a dropped unit
//! of work.
//!
//! Mirroring `tpm-trace`'s `capture` feature, everything here is compiled
//! out unless the **`inject`** feature is enabled: without it, [`probe`] is
//! a `const`-foldable no-op and the injection sites add zero code to the
//! hot paths. Enable it with:
//!
//! ```text
//! cargo test --features inject --test chaos
//! cargo run -p tpm-harness --features inject -- chaos --fault-plan plan.json
//! ```
//!
//! ## Determinism
//!
//! Each site keeps a global hit counter; a rule's decision for hit `h` is a
//! pure function of the plan seed, the site, the rule index, and `h`
//! (a SplitMix64-style avalanche hash compared against the rule's
//! probability, or an exact `nth == h + 1` match). Two runs of a workload
//! that drive the same number of hits per site therefore fire the identical
//! fault set — which is the case for chunk claims, barrier entries, and
//! task executions of a fixed workload. Steal-attempt hit counts are
//! timing-dependent, so probabilistic steal rules are deterministic *per
//! hit* but the total fired count can vary with interleaving; use `nth`
//! rules when exact replay matters.
//!
//! ## Safety contract for `Panic` faults
//!
//! A `panic` fault is only honored where the enclosing runtime guarantees
//! containment (a `catch_unwind` layer that keeps latches and barriers
//! sound). Call sites that cannot tolerate an unwind — e.g. a steal probe
//! made while an unfinished stack job is still queued — must call
//! [`probe_no_panic`], at which panic rules are inert (left armed for the
//! next panic-safe probe of the same site).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod eval;
mod plan;

pub use eval::{Decision, PlanEval};
pub use plan::{FaultKind, FaultPlan, PlanError, Site, SiteRule};

/// What the caller of [`probe`] must do. `Delay` faults are handled inside
/// the probe (it sleeps), so callers only see the three actionable kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an injected fault action must be acted on"]
pub enum Action {
    /// No fault fired; continue normally.
    None,
    /// Panic now. Use [`injected_panic`] so payloads are uniform.
    Panic,
    /// Report this steal attempt as a miss.
    StealMiss,
    /// Drop this unit of work (runtimes surface the drop as a contained
    /// panic so it is observable, never silent).
    TaskDrop,
}

/// One fault that actually fired, as recorded in a [`FaultReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// Where it fired.
    pub site: Site,
    /// What fired.
    pub kind: FaultKind,
    /// Zero-based hit index at that site.
    pub hit: u64,
}

/// Everything a finished [`FaultSession`] observed.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Faults that fired, in firing order (per-site order is deterministic;
    /// cross-site interleaving follows execution).
    pub fired: Vec<FiredFault>,
    /// Total probe hits per site, indexed like [`Site::ALL`].
    pub hits: [u64; Site::ALL.len()],
}

impl FaultReport {
    /// The fired faults sorted `(site, hit)` — the canonical form for
    /// replay-identity comparisons, independent of thread interleaving.
    pub fn fired_sorted(&self) -> Vec<FiredFault> {
        let mut v = self.fired.clone();
        v.sort_by_key(|f| (f.site as u8, f.hit));
        v
    }
}

/// True when this build carries the injection probes (`inject` feature).
pub const fn compiled_in() -> bool {
    cfg!(feature = "inject")
}

/// Panics with the uniform injected-fault payload for `site`.
///
/// The payload always starts with `"injected"`, which tests and operators
/// use to tell injected faults from genuine bugs.
pub fn injected_panic(site: Site) -> ! {
    panic!("injected panic at {}", site.name())
}

/// Panics with the uniform task-drop payload for `site` (the runtimes turn
/// `TaskDrop` into a contained panic so dropped work is observable).
pub fn injected_drop(site: Site) -> ! {
    panic!("injected task-drop at {}", site.name())
}

/// True if a panic payload (as formatted into an error message) came from
/// this crate's injected faults.
pub fn is_injected_message(message: &str) -> bool {
    message.starts_with("injected")
}

#[cfg(feature = "inject")]
mod active {
    use super::{Action, FaultKind, FaultPlan, FaultReport, FiredFault, Site};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    /// Fast-path gate: true only while a plan is installed.
    static ENABLED: AtomicBool = AtomicBool::new(false);

    fn slot() -> &'static Mutex<Option<Arc<ActivePlan>>> {
        static SLOT: OnceLock<Mutex<Option<Arc<ActivePlan>>>> = OnceLock::new();
        SLOT.get_or_init(|| Mutex::new(None))
    }

    struct CompiledRule {
        kind: FaultKind,
        nth: Option<u64>,
        /// Probability threshold in hash-output space (top bits compared
        /// directly, avoiding per-probe float conversion).
        threshold: u64,
        max_fires: u64,
        delay_us: u64,
        fires: AtomicU64,
    }

    struct ActivePlan {
        seed: u64,
        /// Rules grouped per site, preserving plan order.
        by_site: [Vec<(usize, CompiledRule)>; Site::ALL.len()],
        hits: [AtomicU64; Site::ALL.len()],
        fired: Mutex<Vec<FiredFault>>,
    }

    use crate::plan::mix;

    pub(super) fn install(plan: &FaultPlan) {
        let mut by_site: [Vec<(usize, CompiledRule)>; Site::ALL.len()] = Default::default();
        for (idx, r) in plan.rules.iter().enumerate() {
            by_site[r.site as usize].push((
                idx,
                CompiledRule {
                    kind: r.kind,
                    nth: r.nth,
                    threshold: crate::plan::prob_threshold(r.probability),
                    max_fires: r.max_fires,
                    delay_us: r.delay_us,
                    fires: AtomicU64::new(0),
                },
            ));
        }
        let active = Arc::new(ActivePlan {
            seed: plan.seed,
            by_site,
            hits: Default::default(),
            fired: Mutex::new(Vec::new()),
        });
        *slot().lock().unwrap() = Some(active);
        ENABLED.store(true, Ordering::Release);
    }

    pub(super) fn uninstall() -> FaultReport {
        ENABLED.store(false, Ordering::Release);
        let taken = slot().lock().unwrap().take();
        match taken {
            Some(active) => FaultReport {
                fired: std::mem::take(&mut active.fired.lock().unwrap()),
                hits: std::array::from_fn(|i| active.hits[i].load(Ordering::Relaxed)),
            },
            None => FaultReport::default(),
        }
    }

    pub(super) fn probe(site: Site, allow_panic: bool) -> Action {
        if !ENABLED.load(Ordering::Acquire) {
            return Action::None;
        }
        let Some(active) = slot().lock().unwrap().clone() else {
            return Action::None;
        };
        let hit = active.hits[site as usize].fetch_add(1, Ordering::Relaxed);
        for (rule_idx, rule) in &active.by_site[site as usize] {
            let decides = match rule.nth {
                Some(n) => hit + 1 == n,
                None => {
                    rule.threshold > 0
                        && mix(active.seed, site as u64, *rule_idx as u64, hit) <= rule.threshold
                }
            };
            if !decides {
                continue;
            }
            // A panic rule is inert at probes that cannot tolerate an
            // unwind: it is neither consumed nor logged, so it stays armed
            // for the next panic-safe probe of this site (e.g. the worksteal
            // worker-loop top level).
            if rule.kind == FaultKind::Panic && !allow_panic {
                continue;
            }
            // Network-only kinds have no in-process meaning; they are
            // evaluated by the simulator's `PlanEval`, never by the global
            // prober.
            if matches!(rule.kind, FaultKind::Duplicate | FaultKind::Partition) {
                continue;
            }
            if rule.max_fires > 0 && rule.fires.fetch_add(1, Ordering::Relaxed) >= rule.max_fires {
                continue;
            }
            active.fired.lock().unwrap().push(FiredFault {
                site,
                kind: rule.kind,
                hit,
            });
            return match rule.kind {
                FaultKind::Panic => Action::Panic,
                FaultKind::Delay => {
                    if rule.delay_us > 0 {
                        std::thread::sleep(std::time::Duration::from_micros(rule.delay_us));
                    }
                    Action::None
                }
                FaultKind::StealMiss => Action::StealMiss,
                FaultKind::TaskDrop => Action::TaskDrop,
                // Filtered out above before the rule can fire.
                FaultKind::Duplicate | FaultKind::Partition => Action::None,
            };
        }
        Action::None
    }
}

/// Asks the installed plan whether a fault fires at `site` for this hit.
///
/// With the `inject` feature disabled this is a no-op that always returns
/// [`Action::None`] — the call compiles away entirely. `Delay` faults sleep
/// inside the probe and then return `Action::None`.
#[inline]
pub fn probe(site: Site) -> Action {
    #[cfg(feature = "inject")]
    {
        active::probe(site, true)
    }
    #[cfg(not(feature = "inject"))]
    {
        let _ = site;
        Action::None
    }
}

/// Like [`probe`], but for call sites where unwinding is not safe (e.g. a
/// steal probe made while an unfinished stack job is queued): `Panic` rules
/// are skipped without being consumed, so they stay armed for the next
/// panic-safe probe of the same site.
#[inline]
pub fn probe_no_panic(site: Site) -> Action {
    #[cfg(feature = "inject")]
    {
        active::probe(site, false)
    }
    #[cfg(not(feature = "inject"))]
    {
        let _ = site;
        Action::None
    }
}

/// RAII guard over an installed [`FaultPlan`]. Installing replaces any
/// previously active plan process-wide; [`FaultSession::report`] (or drop)
/// uninstalls it and returns what fired.
///
/// Sessions are process-global — tests that install plans must serialize
/// (the chaos suite holds a lock across each session).
#[derive(Debug)]
pub struct FaultSession {
    done: bool,
}

impl FaultSession {
    /// Installs `plan` as the process-wide active plan. With the `inject`
    /// feature disabled this is a no-op shell (probes never fire) so caller
    /// code needs no feature gates.
    pub fn install(plan: &FaultPlan) -> Self {
        #[cfg(feature = "inject")]
        active::install(plan);
        #[cfg(not(feature = "inject"))]
        let _ = plan;
        FaultSession { done: false }
    }

    /// Uninstalls the plan and returns everything that fired.
    pub fn report(mut self) -> FaultReport {
        self.done = true;
        Self::take_report()
    }

    fn take_report() -> FaultReport {
        #[cfg(feature = "inject")]
        {
            active::uninstall()
        }
        #[cfg(not(feature = "inject"))]
        {
            FaultReport::default()
        }
    }
}

impl Drop for FaultSession {
    fn drop(&mut self) {
        if !self.done {
            let _ = Self::take_report();
        }
    }
}

/// Acquires the process-wide fault-session serialization lock.
///
/// Plans are process-global, so concurrently running tests that each install
/// a session would stomp each other's plans and mis-attribute fired faults.
/// Every test (here and in downstream runtime crates) that installs a plan
/// holds this guard for the whole session. Poisoning is ignored: a panicking
/// chaos test is expected, not a reason to fail the next one.
pub fn session_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    match LOCK.get_or_init(|| std::sync::Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Plans are process-global; serialize the tests that install them.
    fn session_lock() -> MutexGuard<'static, ()> {
        session_serial()
    }

    #[test]
    fn no_plan_means_no_action() {
        let _g = session_lock();
        assert_eq!(probe(Site::ChunkClaim), Action::None);
        assert_eq!(probe_no_panic(Site::StealAttempt), Action::None);
    }

    #[test]
    fn compiled_out_probes_do_nothing() {
        if compiled_in() {
            return;
        }
        let _g = session_lock();
        let plan = FaultPlan::single(SiteRule::prob(Site::ChunkClaim, FaultKind::Panic, 1.0));
        let session = FaultSession::install(&plan);
        assert_eq!(probe(Site::ChunkClaim), Action::None);
        let report = session.report();
        assert!(report.fired.is_empty());
        assert_eq!(report.hits, [0; Site::ALL.len()]);
    }

    #[cfg(feature = "inject")]
    mod injecting {
        use super::*;

        #[test]
        fn nth_rule_fires_exactly_once_on_the_nth_hit() {
            let _g = session_lock();
            let plan = FaultPlan::single(SiteRule::nth(Site::ChunkClaim, FaultKind::Panic, 3));
            let session = FaultSession::install(&plan);
            let actions: Vec<Action> = (0..5).map(|_| probe(Site::ChunkClaim)).collect();
            let report = session.report();
            assert_eq!(
                actions,
                vec![
                    Action::None,
                    Action::None,
                    Action::Panic,
                    Action::None,
                    Action::None
                ]
            );
            assert_eq!(
                report.fired,
                vec![FiredFault {
                    site: Site::ChunkClaim,
                    kind: FaultKind::Panic,
                    hit: 2
                }]
            );
            assert_eq!(report.hits[Site::ChunkClaim as usize], 5);
        }

        #[test]
        fn probability_one_always_fires_and_zero_point_never() {
            let _g = session_lock();
            let plan = FaultPlan {
                seed: 9,
                rules: vec![SiteRule::prob(Site::TaskExec, FaultKind::TaskDrop, 1.0)],
            };
            let session = FaultSession::install(&plan);
            for _ in 0..10 {
                assert_eq!(probe(Site::TaskExec), Action::TaskDrop);
            }
            assert_eq!(session.report().fired.len(), 10);
        }

        #[test]
        fn decisions_replay_identically_for_the_same_seed() {
            let _g = session_lock();
            let plan = FaultPlan {
                seed: 1234,
                rules: vec![SiteRule::prob(
                    Site::StealAttempt,
                    FaultKind::StealMiss,
                    0.3,
                )],
            };
            let run = |plan: &FaultPlan| {
                let session = FaultSession::install(plan);
                for _ in 0..200 {
                    let _ = probe(Site::StealAttempt);
                }
                session.report().fired_sorted()
            };
            let a = run(&plan);
            let b = run(&plan);
            assert_eq!(a, b);
            assert!(!a.is_empty(), "p=0.3 over 200 hits should fire");
            let other = FaultPlan { seed: 77, ..plan };
            assert_ne!(run(&other), a, "a different seed should differ");
        }

        #[test]
        fn max_fires_caps_a_probability_rule() {
            let _g = session_lock();
            let mut rule = SiteRule::prob(Site::JobAdmission, FaultKind::StealMiss, 1.0);
            rule.max_fires = 2;
            let session = FaultSession::install(&FaultPlan::single(rule));
            let hits: Vec<Action> = (0..5).map(|_| probe(Site::JobAdmission)).collect();
            assert_eq!(
                hits.iter().filter(|a| **a == Action::StealMiss).count(),
                2,
                "{hits:?}"
            );
            assert_eq!(session.report().fired.len(), 2);
        }

        #[test]
        fn panic_rules_are_inert_at_no_panic_probes() {
            let _g = session_lock();
            let mut rule = SiteRule::prob(Site::StealAttempt, FaultKind::Panic, 1.0);
            rule.max_fires = 1;
            let session = FaultSession::install(&FaultPlan::single(rule));
            // Unwind-unsafe probes neither fire nor consume the rule…
            assert_eq!(probe_no_panic(Site::StealAttempt), Action::None);
            assert_eq!(probe_no_panic(Site::StealAttempt), Action::None);
            // …so it stays armed for the next panic-safe probe.
            assert_eq!(probe(Site::StealAttempt), Action::Panic);
            let report = session.report();
            assert_eq!(report.fired.len(), 1);
            assert_eq!(report.fired[0].kind, FaultKind::Panic);
        }

        #[test]
        fn delay_is_absorbed_inside_the_probe() {
            let _g = session_lock();
            let mut rule = SiteRule::nth(Site::BarrierEntry, FaultKind::Delay, 1);
            rule.delay_us = 100;
            let session = FaultSession::install(&FaultPlan::single(rule));
            let t0 = std::time::Instant::now();
            assert_eq!(probe(Site::BarrierEntry), Action::None);
            assert!(t0.elapsed() >= std::time::Duration::from_micros(100));
            assert_eq!(session.report().fired.len(), 1);
        }

        #[test]
        fn sessions_are_replaceable_and_report_uninstalls() {
            let _g = session_lock();
            let p1 = FaultPlan::single(SiteRule::nth(Site::ChunkClaim, FaultKind::Panic, 1));
            let s1 = FaultSession::install(&p1);
            let _ = s1.report();
            // After report the plan is gone.
            assert_eq!(probe(Site::ChunkClaim), Action::None);
        }
    }

    #[test]
    fn injected_payloads_are_recognizable() {
        let msg = format!("injected panic at {}", Site::ChunkClaim);
        assert!(is_injected_message(&msg));
        assert!(!is_injected_message("index out of bounds"));
    }
}
