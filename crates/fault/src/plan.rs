//! Fault-plan model and its JSON representation.
//!
//! A [`FaultPlan`] is a seed plus a list of [`SiteRule`]s. Rules are matched
//! against probe *hit indices* (the per-site count of times execution passed
//! the injection point), so a plan's decisions depend only on
//! `(seed, site, hit index)` — never on wall-clock time or thread
//! interleaving. Replaying the same workload under the same plan fires the
//! same faults.
//!
//! The serve crate's JSON parser is deliberately flat (its wire protocol is
//! one object per line); plans are nested (an array of rule objects), so this
//! module carries its own small recursive-descent parser that reports
//! `line:column` on every error — both syntax errors and semantic ones like
//! an unknown site name.

use std::fmt;

/// An injection point in the runtimes or the service path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Site {
    /// A worksharing/splitting loop chunk is about to run its body
    /// (forkjoin `ws_for` chunks, worksteal split leaves, rawthreads
    /// sub-chunks).
    ChunkClaim = 0,
    /// A worker is about to probe a victim deque (worksteal `steal_work`,
    /// forkjoin task stealing, and the worksteal worker-loop top level —
    /// the only place a `panic` fault is honored for this site).
    StealAttempt = 1,
    /// A thread is about to arrive at a region barrier (forkjoin
    /// `Ctx::barrier`).
    BarrierEntry = 2,
    /// A spawned task body is about to execute (forkjoin task scope,
    /// worksteal scope spawns).
    TaskExec = 3,
    /// The job service is about to admit a parsed request to its queue.
    JobAdmission = 4,
    /// A service worker just picked a job off the admission queue and is
    /// about to run it. A `panic` here escapes the job's `catch_unwind`
    /// layer, so it kills the worker thread itself (exercising the
    /// death/respawn path and the reply backstop), unlike `task-exec`
    /// which is contained by the runtimes.
    WorkerPickup = 5,
    /// A message is about to be delivered across the (virtual) network —
    /// only probed by the `tpm-desim` simulator, where `drop`/`delay`/
    /// `duplicate`/`partition` faults act on the in-flight message.
    NetDeliver = 6,
}

impl Site {
    /// Every site, in discriminant order.
    pub const ALL: [Site; 7] = [
        Site::ChunkClaim,
        Site::StealAttempt,
        Site::BarrierEntry,
        Site::TaskExec,
        Site::JobAdmission,
        Site::WorkerPickup,
        Site::NetDeliver,
    ];

    /// Stable kebab-case name (used in plan JSON and reports).
    pub fn name(self) -> &'static str {
        match self {
            Site::ChunkClaim => "chunk-claim",
            Site::StealAttempt => "steal-attempt",
            Site::BarrierEntry => "barrier-entry",
            Site::TaskExec => "task-exec",
            Site::JobAdmission => "job-admission",
            Site::WorkerPickup => "worker-pickup",
            Site::NetDeliver => "net-deliver",
        }
    }

    /// Inverse of [`Site::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Site::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic at the injection point (payload starts with `"injected"`).
    Panic,
    /// Sleep for the rule's `delay_us` before continuing normally.
    Delay,
    /// Report the steal attempt as a miss (only meaningful at
    /// [`Site::StealAttempt`]; elsewhere it is a no-op for runtimes and a
    /// load-shed for [`Site::JobAdmission`]).
    StealMiss,
    /// Drop the unit of work instead of running it. Runtimes surface the
    /// drop as a contained panic with an `"injected task-drop"` payload so
    /// it can never silently corrupt a result. At [`Site::NetDeliver`] the
    /// dropped unit is the in-flight message (a lost packet).
    TaskDrop,
    /// Deliver the in-flight message twice (only meaningful at
    /// [`Site::NetDeliver`]; inert at in-process probes).
    Duplicate,
    /// Sever the link both ways for `delay_us` microseconds of virtual
    /// time: messages already in flight and messages sent while severed
    /// are lost (only meaningful at [`Site::NetDeliver`]; inert at
    /// in-process probes).
    Partition,
}

impl FaultKind {
    /// Every kind, in a stable order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Panic,
        FaultKind::Delay,
        FaultKind::StealMiss,
        FaultKind::TaskDrop,
        FaultKind::Duplicate,
        FaultKind::Partition,
    ];

    /// Stable kebab-case name (used in plan JSON and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Delay => "delay",
            FaultKind::StealMiss => "steal-miss",
            FaultKind::TaskDrop => "task-drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Partition => "partition",
        }
    }

    /// Inverse of [`FaultKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injection rule: where, what, and when it triggers.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRule {
    /// Injection point this rule applies to.
    pub site: Site,
    /// Fault raised when the rule fires.
    pub kind: FaultKind,
    /// Fire on exactly the `nth` probe hit at this site (1-based). When set,
    /// `probability` is ignored — this is the fully deterministic trigger.
    pub nth: Option<u64>,
    /// Per-hit fire probability in `[0, 1]`, decided by a seeded hash of the
    /// hit index (so a given `(seed, hit)` always decides the same way).
    pub probability: f64,
    /// Cap on how many times this rule may fire (`0` = unlimited).
    pub max_fires: u64,
    /// Sleep duration for [`FaultKind::Delay`], in microseconds.
    pub delay_us: u64,
}

impl SiteRule {
    /// A rule that fires once, on the `nth` hit of `site`.
    pub fn nth(site: Site, kind: FaultKind, nth: u64) -> Self {
        Self {
            site,
            kind,
            nth: Some(nth.max(1)),
            probability: 0.0,
            max_fires: 1,
            delay_us: 0,
        }
    }

    /// A rule that fires with `probability` on every hit of `site`.
    pub fn prob(site: Site, kind: FaultKind, probability: f64) -> Self {
        Self {
            site,
            kind,
            nth: None,
            probability: probability.clamp(0.0, 1.0),
            max_fires: 0,
            delay_us: 0,
        }
    }
}

/// A complete, installable fault plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    /// The injection rules; several rules may target the same site.
    pub rules: Vec<SiteRule>,
}

impl FaultPlan {
    /// A plan with one rule.
    pub fn single(rule: SiteRule) -> Self {
        Self {
            seed: 0,
            rules: vec![rule],
        }
    }

    /// Serializes the plan to the same JSON shape [`FaultPlan::parse_json`]
    /// accepts.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"seed\": {}, \"rules\": [", self.seed));
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"site\": \"{}\", \"kind\": \"{}\"",
                r.site.name(),
                r.kind.name()
            ));
            if let Some(n) = r.nth {
                out.push_str(&format!(", \"nth\": {n}"));
            }
            if r.probability > 0.0 {
                out.push_str(&format!(", \"probability\": {}", r.probability));
            }
            if r.max_fires > 0 {
                out.push_str(&format!(", \"max_fires\": {}", r.max_fires));
            }
            if r.delay_us > 0 {
                out.push_str(&format!(", \"delay_us\": {}", r.delay_us));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// A human-readable dump: one line per rule, preceded by the seed.
    /// Chaos and desim failure reports embed this so a failing seed is
    /// diagnosable from the log alone.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "fault plan: seed {}, {} rule{}\n",
            self.seed,
            self.rules.len(),
            if self.rules.len() == 1 { "" } else { "s" }
        );
        for (i, r) in self.rules.iter().enumerate() {
            out.push_str(&format!("  [{i}] {} at {}", r.kind.name(), r.site.name()));
            match r.nth {
                Some(n) => out.push_str(&format!(" on hit {n}")),
                None => out.push_str(&format!(" with p={}", r.probability)),
            }
            if r.delay_us > 0 {
                let what = match r.kind {
                    FaultKind::Partition => "severed for",
                    _ => "delay",
                };
                out.push_str(&format!(", {what} {}us", r.delay_us));
            }
            if r.max_fires > 0 {
                let plural = if r.max_fires == 1 { "" } else { "s" };
                out.push_str(&format!(", max {} fire{plural}", r.max_fires));
            }
            out.push('\n');
        }
        out
    }

    /// Parses a plan from JSON like:
    ///
    /// ```json
    /// {
    ///   "seed": 42,
    ///   "rules": [
    ///     {"site": "chunk-claim", "kind": "panic", "nth": 3},
    ///     {"site": "steal-attempt", "kind": "steal-miss", "probability": 0.25},
    ///     {"site": "task-exec", "kind": "delay", "probability": 0.1, "delay_us": 500}
    ///   ]
    /// }
    /// ```
    ///
    /// Unknown keys, unknown site/kind names, and malformed syntax are all
    /// rejected with the `line:column` where the problem sits.
    pub fn parse_json(text: &str) -> Result<Self, PlanError> {
        Parser::new(text).parse_plan()
    }
}

/// SplitMix64 finalizer over the (seed, site, rule, hit) tuple: a cheap
/// avalanche hash whose output is uniform enough for per-hit coin flips.
/// Shared by the process-global prober and [`crate::PlanEval`] so both
/// make identical decisions for the same plan and hit sequence.
pub(crate) fn mix(seed: u64, site: u64, rule: u64, hit: u64) -> u64 {
    let mut z = seed
        ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ rule.wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ hit.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `probability` mapped into hash-output space (top bits compared
/// directly, avoiding per-probe float conversion). `p == 1.0` must always
/// fire; saturate instead of rounding.
pub(crate) fn prob_threshold(probability: f64) -> u64 {
    if probability >= 1.0 {
        u64::MAX
    } else {
        (probability * (u64::MAX as f64)) as u64
    }
}

/// A fault-plan parse error with its position in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for PlanError {}

/// Schema-directed recursive-descent JSON parser for [`FaultPlan`]. Being
/// schema-directed (rather than parsing to a generic value tree) means every
/// semantic error — unknown key, wrong type, bad site name — is reported at
/// the exact token position.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, PlanError> {
        Err(PlanError {
            line: self.line,
            col: self.pos - self.line_start + 1,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), PlanError> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => self.err(format!("expected '{}', found '{}'", b as char, c as char)),
            None => self.err(format!("expected '{}', found end of input", b as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, PlanError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(other) => {
                            return self.err(format!("unsupported escape '\\{}'", other as char));
                        }
                        None => return self.err("unterminated string"),
                    }
                    self.pos += 1;
                }
                Some(b'\n') | None => return self.err("unterminated string"),
                Some(b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, PlanError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return self.err("expected a number");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(v) => Ok(v),
            Err(_) => self.err(format!("invalid number '{text}'")),
        }
    }

    fn parse_u64(&mut self, what: &str) -> Result<u64, PlanError> {
        let v = self.parse_number()?;
        if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
            return self.err(format!("{what} must be a non-negative integer"));
        }
        Ok(v as u64)
    }

    fn parse_plan(&mut self) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan::default();
        let mut saw_rules = false;
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                let key = self.parse_string()?;
                self.expect(b':')?;
                match key.as_str() {
                    "seed" => plan.seed = self.parse_u64("seed")?,
                    "rules" => {
                        saw_rules = true;
                        plan.rules = self.parse_rules()?;
                    }
                    other => return self.err(format!("unknown plan key \"{other}\"")),
                }
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return self.err("expected ',' or '}' in plan object"),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.err("trailing characters after plan object");
        }
        if !saw_rules {
            return self.err("plan is missing the \"rules\" array");
        }
        Ok(plan)
    }

    fn parse_rules(&mut self) -> Result<Vec<SiteRule>, PlanError> {
        let mut rules = Vec::new();
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(rules);
        }
        loop {
            rules.push(self.parse_rule()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(rules);
                }
                _ => return self.err("expected ',' or ']' in rules array"),
            }
        }
    }

    fn parse_rule(&mut self) -> Result<SiteRule, PlanError> {
        let mut site = None;
        let mut kind = None;
        let mut nth = None;
        let mut probability = 0.0f64;
        let mut max_fires = 0u64;
        let mut delay_us = 0u64;
        self.expect(b'{')?;
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "site" => {
                    let name = self.parse_string()?;
                    site = Some(match Site::from_name(&name) {
                        Some(s) => s,
                        None => return self.err(format!("unknown site \"{name}\"")),
                    });
                }
                "kind" => {
                    let name = self.parse_string()?;
                    kind = Some(match FaultKind::from_name(&name) {
                        Some(k) => k,
                        None => return self.err(format!("unknown fault kind \"{name}\"")),
                    });
                }
                "nth" => {
                    let n = self.parse_u64("nth")?;
                    if n == 0 {
                        return self.err("nth is 1-based and must be >= 1");
                    }
                    nth = Some(n);
                }
                "probability" => {
                    let p = self.parse_number()?;
                    if !(0.0..=1.0).contains(&p) {
                        return self.err("probability must be within [0, 1]");
                    }
                    probability = p;
                }
                "max_fires" => max_fires = self.parse_u64("max_fires")?,
                "delay_us" => delay_us = self.parse_u64("delay_us")?,
                other => return self.err(format!("unknown rule key \"{other}\"")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return self.err("expected ',' or '}' in rule object"),
            }
        }
        let Some(site) = site else {
            return self.err("rule is missing \"site\"");
        };
        let Some(kind) = kind else {
            return self.err("rule is missing \"kind\"");
        };
        if nth.is_none() && probability == 0.0 {
            return self.err("rule needs \"nth\" or a non-zero \"probability\" to ever fire");
        }
        Ok(SiteRule {
            site,
            kind,
            nth,
            probability,
            max_fires,
            delay_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_and_kind_names_round_trip() {
        for s in Site::ALL {
            assert_eq!(Site::from_name(s.name()), Some(s));
        }
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(Site::from_name("nope"), None);
        assert_eq!(FaultKind::from_name("nope"), None);
    }

    #[test]
    fn parses_a_full_plan() {
        let text = r#"{
  "seed": 42,
  "rules": [
    {"site": "chunk-claim", "kind": "panic", "nth": 3},
    {"site": "steal-attempt", "kind": "steal-miss", "probability": 0.25, "max_fires": 10},
    {"site": "task-exec", "kind": "delay", "probability": 0.1, "delay_us": 500}
  ]
}"#;
        let plan = FaultPlan::parse_json(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].site, Site::ChunkClaim);
        assert_eq!(plan.rules[0].nth, Some(3));
        assert_eq!(plan.rules[1].probability, 0.25);
        assert_eq!(plan.rules[1].max_fires, 10);
        assert_eq!(plan.rules[2].delay_us, 500);
    }

    #[test]
    fn json_round_trips() {
        let plan = FaultPlan {
            seed: 7,
            rules: vec![
                SiteRule::nth(Site::BarrierEntry, FaultKind::Panic, 2),
                SiteRule::prob(Site::StealAttempt, FaultKind::Delay, 0.5),
            ],
        };
        let round = FaultPlan::parse_json(&plan.to_json()).unwrap();
        assert_eq!(round, plan);
    }

    #[test]
    fn unknown_site_reports_position() {
        let text = "{\"seed\": 1,\n  \"rules\": [{\"site\": \"warp-core\", \"kind\": \"panic\", \"nth\": 1}]}";
        let err = FaultPlan::parse_json(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("warp-core"), "{err}");
    }

    #[test]
    fn syntax_error_reports_line_and_col() {
        let err = FaultPlan::parse_json("{\n\"rules\": [}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 1);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        assert!(FaultPlan::parse_json("{\"rules\": [], \"extra\": 1}")
            .unwrap_err()
            .message
            .contains("unknown plan key"));
        let never = "{\"rules\": [{\"site\": \"chunk-claim\", \"kind\": \"panic\"}]}";
        assert!(FaultPlan::parse_json(never)
            .unwrap_err()
            .message
            .contains("to ever fire"));
        let zeroth = "{\"rules\": [{\"site\": \"chunk-claim\", \"kind\": \"panic\", \"nth\": 0}]}";
        assert!(FaultPlan::parse_json(zeroth)
            .unwrap_err()
            .message
            .contains("1-based"));
        let badp =
            "{\"rules\": [{\"site\": \"chunk-claim\", \"kind\": \"panic\", \"probability\": 1.5}]}";
        assert!(FaultPlan::parse_json(badp)
            .unwrap_err()
            .message
            .contains("[0, 1]"));
    }

    #[test]
    fn missing_rules_is_an_error() {
        let err = FaultPlan::parse_json("{\"seed\": 1}").unwrap_err();
        assert!(err.message.contains("rules"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let err = FaultPlan::parse_json("{\"rules\": []} x").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }
}
