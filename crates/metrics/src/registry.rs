//! Named instrument registry with Prometheus rendering and snapshots.
//!
//! The registry is the only locked structure in the crate, and the lock is
//! only taken at registration and scrape time — never while recording.
//! Instruments are handed out as `Arc`s; the hot path holds the `Arc` and
//! touches atomics only.

use std::sync::Arc;

use tpm_sync::SpinLock;

use crate::cell::{Counter, Gauge};
use crate::histogram::{bucket_upper_bound, Histogram, HistogramSnapshot, NUM_BUCKETS};
use crate::hll::Hll;

/// Label set: ordered `(key, value)` pairs. Order is preserved as
/// registered; two series with the same pairs in different orders are
/// considered different (keep label order consistent at call sites).
pub type Labels = Vec<(String, String)>;

enum Kind {
    Counter { c: Arc<Counter>, scale: f64 },
    CounterFn(Box<dyn Fn() -> f64 + Send + Sync>),
    Gauge(Arc<Gauge>),
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
    Histogram { h: Arc<Histogram>, scale: f64 },
    Hll(Arc<Hll>),
}

impl Kind {
    /// Prometheus `# TYPE` keyword for this instrument.
    fn type_str(&self) -> &'static str {
        match self {
            Kind::Counter { .. } | Kind::CounterFn(_) => "counter",
            Kind::Gauge(_) | Kind::GaugeFn(_) | Kind::Hll(_) => "gauge",
            Kind::Histogram { .. } => "histogram",
        }
    }

    /// Whether this series accumulates (deltas between snapshots make
    /// sense) or is a level (deltas don't).
    fn cumulative(&self) -> bool {
        matches!(
            self,
            Kind::Counter { .. } | Kind::CounterFn(_) | Kind::Histogram { .. }
        )
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Labels,
    kind: Kind,
}

/// A collection of named instruments that can be rendered as Prometheus
/// text exposition or captured as a structured [`Snapshot`].
pub struct Registry {
    entries: SpinLock<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("entries", &self.entries.lock().len())
            .finish()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            entries: SpinLock::new(Vec::new()),
        }
    }

    /// The process-wide registry, for instrumentation without a natural
    /// owner. Components with a lifecycle (like a server instance) should
    /// own their own `Registry` so tests stay isolated.
    pub fn global() -> &'static Registry {
        use std::sync::OnceLock;
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Registers (or re-fetches) a counter series. Registration is
    /// idempotent: the same `name`+`labels` returns the same cells, so two
    /// components can "register" the series and share it.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter_scaled(name, help, labels, 1.0)
    }

    /// A counter whose exposed value is `count * scale` (e.g. a
    /// nanosecond-accumulating counter exposed in seconds with `scale =
    /// 1e-9`).
    pub fn counter_scaled(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Arc<Counter> {
        let labels = owned_labels(labels);
        let mut entries = self.entries.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Kind::Counter { c, .. } = &e.kind {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind: Kind::Counter {
                c: Arc::clone(&c),
                scale,
            },
        });
        c
    }

    /// Registers a counter computed at scrape time (for totals that already
    /// live elsewhere, like a runtime's global spawn counter). The closure
    /// must not call back into this registry.
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.push_fn(name, help, labels, Kind::CounterFn(Box::new(f)));
    }

    /// Registers (or re-fetches) an up/down gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let labels = owned_labels(labels);
        let mut entries = self.entries.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Kind::Gauge(g) = &e.kind {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind: Kind::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Registers a gauge sampled at scrape time (queue depths, pool sizes —
    /// levels that already exist and just need reading). The closure must
    /// not call back into this registry.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.push_fn(name, help, labels, Kind::GaugeFn(Box::new(f)));
    }

    /// Registers (or re-fetches) a histogram series recording raw `u64`s.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_scaled(name, help, labels, 1.0)
    }

    /// A histogram recording raw `u64`s but exposed with bucket bounds and
    /// sum multiplied by `scale` (record nanoseconds, expose seconds).
    pub fn histogram_scaled(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Arc<Histogram> {
        let labels = owned_labels(labels);
        let mut entries = self.entries.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Kind::Histogram { h, .. } = &e.kind {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Histogram::new());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind: Kind::Histogram {
                h: Arc::clone(&h),
                scale,
            },
        });
        h
    }

    /// Registers (or re-fetches) a distinct-count sketch, exposed as a
    /// gauge holding the current cardinality estimate.
    pub fn hll(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Hll> {
        let labels = owned_labels(labels);
        let mut entries = self.entries.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Kind::Hll(h) = &e.kind {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Hll::new());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind: Kind::Hll(Arc::clone(&h)),
        });
        h
    }

    /// Inserts or replaces a scrape-time closure entry.
    fn push_fn(&self, name: &str, help: &str, labels: &[(&str, &str)], kind: Kind) {
        let labels = owned_labels(labels);
        let mut entries = self.entries.lock();
        if let Some(e) = entries
            .iter_mut()
            .find(|e| e.name == name && e.labels == labels)
        {
            e.kind = kind;
            e.help = help.to_string();
        } else {
            entries.push(Entry {
                name: name.to_string(),
                help: help.to_string(),
                labels,
                kind,
            });
        }
    }

    /// Series names currently registered, in registration order, deduped.
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.lock();
        let mut out: Vec<String> = Vec::new();
        for e in entries.iter() {
            if !out.contains(&e.name) {
                out.push(e.name.clone());
            }
        }
        out
    }

    /// Renders every series in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per metric name, one
    /// sample line per series, histograms as cumulative `_bucket{le=...}`
    /// plus `_sum`/`_count`. Empty histogram buckets are elided (the `+Inf`
    /// bucket is always present, which keeps the format valid and the
    /// output small).
    pub fn render(&self) -> String {
        let entries = self.entries.lock();
        let mut out = String::with_capacity(4096);
        // Group by name in first-seen order so HELP/TYPE appear once.
        let mut seen: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if seen.contains(&e.name.as_str()) {
                continue;
            }
            seen.push(&e.name);
            let group: Vec<&Entry> = entries.iter().filter(|x| x.name == e.name).collect();
            out.push_str("# HELP ");
            out.push_str(&e.name);
            out.push(' ');
            out.push_str(&e.help.replace('\\', "\\\\").replace('\n', "\\n"));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&e.name);
            out.push(' ');
            out.push_str(e.kind.type_str());
            out.push('\n');
            for g in group {
                render_entry(&mut out, g);
            }
        }
        out
    }

    /// Captures every series as structured values (see [`Snapshot`]).
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock();
        let series = entries
            .iter()
            .map(|e| {
                let value = match &e.kind {
                    Kind::Counter { c, scale } => SeriesValue::Float(c.get() as f64 * scale),
                    Kind::CounterFn(f) => SeriesValue::Float(f()),
                    Kind::Gauge(g) => SeriesValue::Float(g.get() as f64),
                    Kind::GaugeFn(f) => SeriesValue::Float(f()),
                    Kind::Histogram { h, scale } => SeriesValue::Histogram {
                        counts: h.snapshot(),
                        scale: *scale,
                    },
                    Kind::Hll(h) => SeriesValue::Float(h.estimate().round()),
                };
                Series {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    cumulative: e.kind.cumulative(),
                    value,
                }
            })
            .collect();
        Snapshot { series }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Formats a sample value: integral floats print without a fraction so
/// counters look like counts.
fn fmt_value(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Writes `name{labels} value` (merging `extra` after the series labels).
fn render_sample(out: &mut String, name: &str, labels: &Labels, extra: &[(&str, &str)], v: f64) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, val) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(val));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&fmt_value(v));
    out.push('\n');
}

fn render_entry(out: &mut String, e: &Entry) {
    match &e.kind {
        Kind::Counter { c, scale } => {
            render_sample(out, &e.name, &e.labels, &[], c.get() as f64 * scale);
        }
        Kind::CounterFn(f) => render_sample(out, &e.name, &e.labels, &[], f()),
        Kind::Gauge(g) => render_sample(out, &e.name, &e.labels, &[], g.get() as f64),
        Kind::GaugeFn(f) => render_sample(out, &e.name, &e.labels, &[], f()),
        Kind::Hll(h) => render_sample(out, &e.name, &e.labels, &[], h.estimate().round()),
        Kind::Histogram { h, scale } => {
            let snap = h.snapshot();
            let bucket = format!("{}_bucket", e.name);
            let mut cum = 0u64;
            for i in 0..NUM_BUCKETS {
                if snap.buckets[i] == 0 {
                    continue;
                }
                cum += snap.buckets[i];
                let le = if i + 1 >= NUM_BUCKETS {
                    f64::INFINITY
                } else {
                    bucket_upper_bound(i) as f64 * scale
                };
                if le.is_finite() {
                    let le = format!("{le}");
                    render_sample(out, &bucket, &e.labels, &[("le", &le)], cum as f64);
                }
            }
            render_sample(out, &bucket, &e.labels, &[("le", "+Inf")], cum as f64);
            render_sample(
                out,
                &format!("{}_sum", e.name),
                &e.labels,
                &[],
                snap.sum as f64 * scale,
            );
            render_sample(
                out,
                &format!("{}_count", e.name),
                &e.labels,
                &[],
                cum as f64,
            );
        }
    }
}

/// One series in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Metric name.
    pub name: String,
    /// Label pairs.
    pub labels: Labels,
    /// True for counters/histograms (deltas meaningful), false for levels.
    pub cumulative: bool,
    /// The captured value.
    pub value: SeriesValue,
}

/// The value captured for a series.
#[derive(Debug, Clone)]
pub enum SeriesValue {
    /// A scalar (counter, gauge, or sketch estimate), already scaled.
    Float(f64),
    /// A histogram's raw bucket counts plus the exposition scale.
    Histogram {
        /// Raw (unscaled) bucket counts/sum/max.
        counts: HistogramSnapshot,
        /// Multiplier applied to values at exposition time.
        scale: f64,
    },
}

/// A point-in-time structured capture of a [`Registry`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All series, in registration order.
    pub series: Vec<Series>,
}

impl Snapshot {
    /// The scalar value of the series matching `name` and exactly `labels`
    /// (histograms report their observation count).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.series
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels.iter())
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|s| match &s.value {
                SeriesValue::Float(v) => *v,
                SeriesValue::Histogram { counts, .. } => counts.count() as f64,
            })
    }

    /// Series-wise difference from an earlier snapshot: cumulative series
    /// subtract, levels keep their current value. Series absent from `prev`
    /// pass through unchanged.
    pub fn delta(&self, prev: &Snapshot) -> Snapshot {
        let series = self
            .series
            .iter()
            .map(|s| {
                if !s.cumulative {
                    return s.clone();
                }
                let old = prev
                    .series
                    .iter()
                    .find(|p| p.name == s.name && p.labels == s.labels);
                let value = match (&s.value, old.map(|o| &o.value)) {
                    (SeriesValue::Float(a), Some(SeriesValue::Float(b))) => {
                        SeriesValue::Float((a - b).max(0.0))
                    }
                    (
                        SeriesValue::Histogram { counts, scale },
                        Some(SeriesValue::Histogram { counts: old, .. }),
                    ) => SeriesValue::Histogram {
                        counts: counts.delta(old),
                        scale: *scale,
                    },
                    (v, _) => v.clone(),
                };
                Series { value, ..s.clone() }
            })
            .collect();
        Snapshot { series }
    }

    /// Renders the snapshot as one line of JSON — the shutdown dump format.
    /// Histograms report `count`, `sum`, `p50`, `p90`, `p99`, `max` (all
    /// scaled) instead of raw buckets.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                if v == v.trunc() && v.abs() < 1e15 {
                    format!("{}", v as i64)
                } else {
                    format!("{v}")
                }
            } else {
                "0".to_string()
            }
        }
        let mut out = String::from("{\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(&esc(&s.name));
            out.push_str("\",\"labels\":{");
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&esc(k));
                out.push_str("\":\"");
                out.push_str(&esc(v));
                out.push('"');
            }
            out.push_str("},");
            match &s.value {
                SeriesValue::Float(v) => {
                    out.push_str("\"value\":");
                    out.push_str(&num(*v));
                }
                SeriesValue::Histogram { counts, scale } => {
                    out.push_str(&format!(
                        "\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}",
                        counts.count(),
                        num(counts.sum as f64 * scale),
                        num(counts.quantile(0.50) * scale),
                        num(counts.quantile(0.90) * scale),
                        num(counts.quantile(0.99) * scale),
                        num(counts.max as f64 * scale),
                    ));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("hits_total", "Hits.", &[("k", "v")]);
        let b = reg.counter("hits_total", "Hits.", &[("k", "v")]);
        a.inc();
        assert_eq!(b.get(), 1, "same name+labels must share cells");
        let c = reg.counter("hits_total", "Hits.", &[("k", "other")]);
        c.add(5);
        assert_eq!(b.get(), 1, "different labels are a different series");
    }

    #[test]
    fn render_groups_help_and_type_once() {
        let reg = Registry::new();
        reg.counter("req_total", "Requests.", &[("outcome", "ok")])
            .add(3);
        reg.counter("req_total", "Requests.", &[("outcome", "err")])
            .add(1);
        let text = reg.render();
        assert_eq!(text.matches("# HELP req_total").count(), 1);
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
        assert!(text.contains("req_total{outcome=\"ok\"} 3"));
        assert!(text.contains("req_total{outcome=\"err\"} 1"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "Latency.", &[]);
        h.record(5);
        h.record(5);
        h.record(100);
        let text = reg.render();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"6\"} 2"), "text:\n{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum 110"));
        assert!(text.contains("lat_count 3"));
    }

    #[test]
    fn scaled_histogram_scales_bounds_and_sum() {
        let reg = Registry::new();
        let h = reg.histogram_scaled("dur_seconds", "Duration.", &[], 1e-9);
        h.record(1_000_000_000); // 1s in ns
        let text = reg.render();
        assert!(text.contains("dur_seconds_sum 1\n"), "text:\n{text}");
        assert!(text.contains("dur_seconds_count 1"));
    }

    #[test]
    fn gauge_fn_sampled_at_scrape() {
        let reg = Registry::new();
        let level = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(7));
        let l2 = std::sync::Arc::clone(&level);
        reg.gauge_fn("depth", "Queue depth.", &[], move || {
            l2.load(std::sync::atomic::Ordering::Relaxed) as f64
        });
        assert!(reg.render().contains("depth 7"));
        level.store(9, std::sync::atomic::Ordering::Relaxed);
        assert!(reg.render().contains("depth 9"));
    }

    #[test]
    fn snapshot_delta_subtracts_counters_keeps_gauges() {
        let reg = Registry::new();
        let c = reg.counter("c_total", "C.", &[]);
        let g = reg.gauge("g", "G.", &[]);
        c.add(10);
        g.add(5);
        let s1 = reg.snapshot();
        c.add(7);
        g.add(1);
        let s2 = reg.snapshot();
        let d = s2.delta(&s1);
        assert_eq!(d.get("c_total", &[]), Some(7.0));
        assert_eq!(d.get("g", &[]), Some(6.0), "gauges keep the current level");
    }

    #[test]
    fn snapshot_to_json_is_flat_and_parsable_shape() {
        let reg = Registry::new();
        reg.counter("c_total", "C.", &[("a", "b")]).inc();
        reg.histogram("h", "H.", &[]).record(42);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("{\"series\":["));
        assert!(json.contains("\"name\":\"c_total\""));
        assert!(json.contains("\"labels\":{\"a\":\"b\"}"));
        assert!(json.contains("\"count\":1"));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn hll_renders_as_gauge() {
        let reg = Registry::new();
        let h = reg.hll("clients", "Distinct clients.", &[]);
        for i in 0..20u64 {
            h.insert_u64(i);
        }
        let text = reg.render();
        assert!(text.contains("# TYPE clients gauge"));
        assert!(text.contains("clients 20"), "text:\n{text}");
    }
}
