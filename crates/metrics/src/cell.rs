//! Sharded counter and gauge cells.
//!
//! A single shared `AtomicU64` is correct but contended: every increment
//! bounces the cache line between cores. Sharding gives each thread its own
//! cache-line-padded cell — the increment is a relaxed RMW on a line no other
//! core writes — and the (rare) reader sums the shards. This is the same
//! trade the scheduler stats in `tpm-sync` make, generalized to instruments
//! that are shared by name rather than owned by a worker index.

use std::cell::Cell as StdCell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

use tpm_sync::CachePadded;

/// Number of shards per instrument. A power of two so the thread-to-shard
/// map is a mask. 16 padded cells is 2 KiB per instrument — cheap enough for
/// a few hundred instruments, wide enough that a 16-thread writer storm sees
/// almost no line sharing.
pub(crate) const SHARDS: usize = 16;

/// The calling thread's shard index, assigned round-robin on first use and
/// cached in a thread-local. Threads created in order get distinct shards
/// until wrap-around, so the common case (a pool of N ≤ 16 workers) is one
/// private cell per worker.
#[inline]
pub(crate) fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: StdCell<usize> = const { StdCell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            s.set(v);
        }
        v
    })
}

/// A monotonically increasing counter, sharded per thread.
///
/// `inc`/`add` are a single relaxed `fetch_add` on the caller's private
/// shard; `get` sums all shards (exact once writers are quiescent, and never
/// loses increments — each lands in exactly one shard).
#[derive(Debug)]
pub struct Counter {
    shards: Box<[CachePadded<AtomicU64>]>,
}

// False-sharing audit: the whole point of sharding is that each shard owns
// its line pair; a CachePadded regression would silently serialise every
// instrument in the process, so pin it at build time here too.
tpm_sync::assert_cache_isolated!(CachePadded<AtomicU64>);
tpm_sync::assert_cache_isolated!(CachePadded<std::sync::atomic::AtomicI64>);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Zeroes every shard.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A value that can go up and down, sharded per thread.
///
/// `add`/`sub` are relaxed RMWs on the caller's shard; `get` sums shards.
/// Because an `add` on one thread may be matched by a `sub` on another,
/// individual shards can go negative — only the sum is meaningful.
#[derive(Debug)]
pub struct Gauge {
    shards: Box<[CachePadded<AtomicI64>]>,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| CachePadded::new(AtomicI64::new(0)))
                .collect(),
        }
    }

    /// Adds `n` (e.g. on enqueue / job start).
    #[inline]
    pub fn add(&self, n: i64) {
        self.shards[shard_index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (e.g. on dequeue / job end).
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Sets the gauge to `v`.
    ///
    /// Implemented as "store `v` in shard 0, zero the rest" — only sound for
    /// single-writer gauges (a sampled level). Concurrent `add`/`sub` racing
    /// a `set` can be partially overwritten; mixed-use gauges should stick to
    /// `add`/`sub`, and sampled values are usually better served by
    /// [`Registry::gauge_fn`](crate::Registry::gauge_fn).
    pub fn set(&self, v: i64) {
        self.shards[0].store(v, Ordering::Relaxed);
        for s in self.shards.iter().skip(1) {
            s.store(0, Ordering::Relaxed);
        }
    }

    /// Sum of all shards.
    pub fn get(&self) -> i64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_up_down_and_set() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-5);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn shard_index_is_stable_per_thread() {
        let a = shard_index();
        let b = shard_index();
        assert_eq!(a, b);
        assert!(a < SHARDS);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..25_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 200_000);
    }

    #[test]
    fn concurrent_gauge_balances_to_zero() {
        let g = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        g.add(3);
                        g.sub(3);
                    }
                });
            }
        });
        assert_eq!(g.get(), 0);
    }
}
