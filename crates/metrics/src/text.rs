//! Prometheus text exposition parsing and validation.
//!
//! The wire format the registry renders is also consumed inside this
//! workspace: `tpm-harness top` scrapes a running server and diffs
//! successive scrapes to show rates, and the test suite asserts
//! format validity by round-tripping through this parser. Keeping the
//! parser next to the renderer means a format change breaks a unit test
//! here before it breaks an external scraper.

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name as it appears on the line (histogram series appear as
    /// `<base>_bucket`, `<base>_sum`, `<base>_count`).
    pub name: String,
    /// Label pairs in line order.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf` parses as infinity).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True if every `(key, value)` pair in `want` appears in this sample's
    /// labels (subset match; extra labels like `le` are allowed).
    pub fn labels_match(&self, want: &[(&str, &str)]) -> bool {
        want.iter().all(|(k, v)| self.label(k) == Some(*v))
    }
}

/// A parsed scrape: all sample lines plus the `# TYPE` declarations.
#[derive(Debug, Clone, Default)]
pub struct Scrape {
    /// Sample lines in order.
    pub samples: Vec<Sample>,
    /// `(metric name, type)` pairs from `# TYPE` lines, in order.
    pub types: Vec<(String, String)>,
}

impl Scrape {
    /// Parses exposition text. Returns an error naming the first malformed
    /// line; comment (`#`) and blank lines are skipped (but `# TYPE` lines
    /// are collected).
    pub fn parse(text: &str) -> Result<Scrape, String> {
        let mut scrape = Scrape::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim_start();
                if let Some(decl) = rest.strip_prefix("TYPE ") {
                    let mut it = decl.split_whitespace();
                    match (it.next(), it.next()) {
                        (Some(name), Some(ty)) => {
                            scrape.types.push((name.to_string(), ty.to_string()))
                        }
                        _ => return Err(format!("line {}: malformed TYPE", lineno + 1)),
                    }
                }
                continue;
            }
            scrape
                .samples
                .push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        Ok(scrape)
    }

    /// Declared type of metric `name`, if any.
    pub fn type_of(&self, name: &str) -> Option<&str> {
        self.types
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }

    /// The first sample named `name` whose labels contain all of `labels`.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels_match(labels))
    }

    /// Value of the first matching sample.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.find(name, labels).map(|s| s.value)
    }

    /// Sum of all samples named `name` (e.g. a counter across label values).
    pub fn sum(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Estimates quantile `q` of histogram `name` (base name, without the
    /// `_bucket` suffix) restricted to series matching `labels`, from the
    /// cumulative bucket samples — the same computation PromQL's
    /// `histogram_quantile` does.
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        let bucket_name = format!("{name}_bucket");
        let mut buckets: Vec<(f64, f64)> = self
            .samples
            .iter()
            .filter(|s| s.name == bucket_name && s.labels_match(labels))
            .filter_map(|s| {
                let le = s.label("le")?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().ok()?
                };
                Some((bound, s.value))
            })
            .collect();
        if buckets.is_empty() {
            return None;
        }
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let total = buckets.last()?.1;
        if total <= 0.0 {
            return Some(0.0);
        }
        let rank = q.clamp(0.0, 1.0) * total;
        let mut prev_bound = 0.0;
        let mut prev_cum = 0.0;
        for &(bound, cum) in &buckets {
            if cum >= rank {
                if bound.is_infinite() {
                    return Some(prev_bound);
                }
                let in_bucket = cum - prev_cum;
                if in_bucket <= 0.0 {
                    return Some(bound);
                }
                return Some(prev_bound + (bound - prev_bound) * (rank - prev_cum) / in_bucket);
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        Some(prev_bound)
    }

    /// Sample-wise `self - prev`, clamped at zero — the rate numerator for
    /// a dashboard tick. Only meaningful for cumulative series; gauges
    /// should be read from the current scrape directly.
    ///
    /// Histogram buckets get the cumulative treatment: a bound the earlier
    /// scrape didn't render (the renderer elides never-hit buckets) still
    /// had a cumulative count there — that of the largest earlier bound
    /// below it — so a newly-appearing bucket doesn't inflate the interval.
    pub fn delta(&self, prev: &Scrape) -> Scrape {
        let samples = self
            .samples
            .iter()
            .map(|s| Sample {
                value: (s.value - prev_value(prev, s)).max(0.0),
                ..s.clone()
            })
            .collect();
        Scrape {
            samples,
            types: self.types.clone(),
        }
    }
}

/// The value sample `s` had in `prev`, for delta purposes: an exact
/// name+labels match, or — for cumulative `_bucket` samples — the earlier
/// cumulative count at the largest bound not above `s`'s (0 if none).
fn prev_value(prev: &Scrape, s: &Sample) -> f64 {
    if let Some(p) = prev
        .samples
        .iter()
        .find(|p| p.name == s.name && p.labels == s.labels)
    {
        return p.value;
    }
    if !s.name.ends_with("_bucket") {
        return 0.0;
    }
    let Some(le) = s.label("le") else { return 0.0 };
    let bound = match le {
        "+Inf" => f64::INFINITY,
        _ => match le.parse::<f64>() {
            Ok(b) => b,
            Err(_) => return 0.0,
        },
    };
    let mut want: Vec<(&str, &str)> = s
        .labels
        .iter()
        .filter(|(k, _)| k != "le")
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    want.sort();
    let mut best: Option<(f64, f64)> = None; // (bound, cumulative value)
    for p in prev.samples.iter().filter(|p| p.name == s.name) {
        let Some(ple) = p.label("le") else { continue };
        let pb = match ple {
            "+Inf" => f64::INFINITY,
            _ => match ple.parse::<f64>() {
                Ok(b) => b,
                Err(_) => continue,
            },
        };
        if pb > bound {
            continue;
        }
        let mut got: Vec<(&str, &str)> = p
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        got.sort();
        if got != want {
            continue;
        }
        if best.is_none_or(|(bb, _)| pb > bb) {
            best = Some((pb, p.value));
        }
    }
    best.map_or(0.0, |(_, v)| v)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    // name[{k="v",...}] value
    if let Some(brace) = line.find('{') {
        let close = line.rfind('}').ok_or("unclosed label brace")?;
        if close < brace {
            return Err("mismatched braces".into());
        }
        Ok(Sample {
            name: validate_name(&line[..brace])?,
            labels: parse_labels(&line[brace + 1..close])?,
            value: parse_value(line[close + 1..].trim())?,
        })
    } else {
        let mut it = line.split_whitespace();
        let name = it.next().ok_or("empty line")?;
        let value = it.next().ok_or("missing value")?;
        // A third token would be a timestamp (legal in the format, never
        // emitted by our renderer); ignore it.
        Ok(Sample {
            name: validate_name(name)?,
            labels: Vec::new(),
            value: parse_value(value)?,
        })
    }
}

fn validate_name(name: &str) -> Result<String, String> {
    if name.is_empty() {
        return Err("empty metric name".into());
    }
    let ok = name.chars().enumerate().all(|(i, c)| {
        c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
    });
    if !ok {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(name.to_string())
}

fn parse_value(v: &str) -> Result<f64, String> {
    match v {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => v.parse().map_err(|_| format!("invalid value {v:?}")),
    }
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err("empty label key".into());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key}: expected opening quote"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("label {key}: unterminated value"));
        }
        labels.push((key, value));
    }
    Ok(labels)
}

/// Structural validation beyond line-level parsing: every sample's base
/// metric has a `# TYPE`, histogram buckets are cumulative (non-decreasing
/// with `le`), every histogram has a `+Inf` bucket, and `_count` equals the
/// `+Inf` bucket. Returns the first violation.
pub fn validate(text: &str) -> Result<Scrape, String> {
    let scrape = Scrape::parse(text)?;
    for s in &scrape.samples {
        let base = base_name(&s.name, &scrape);
        if scrape.type_of(base).is_none() {
            return Err(format!("sample {} has no TYPE declaration", s.name));
        }
    }
    // Check histogram invariants per (base, labels-minus-le) series.
    let hist_names: Vec<&str> = scrape
        .types
        .iter()
        .filter(|(_, t)| t == "histogram")
        .map(|(n, _)| n.as_str())
        .collect();
    for name in hist_names {
        let bucket_name = format!("{name}_bucket");
        // Collect the distinct label sets (without `le`).
        let mut keysets: Vec<Vec<(String, String)>> = Vec::new();
        for s in scrape.samples.iter().filter(|s| s.name == bucket_name) {
            let mut ls: Vec<(String, String)> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            ls.sort();
            if !keysets.contains(&ls) {
                keysets.push(ls);
            }
        }
        for ls in keysets {
            let series: Vec<&Sample> = scrape
                .samples
                .iter()
                .filter(|s| {
                    if s.name != bucket_name {
                        return false;
                    }
                    let mut got: Vec<(String, String)> = s
                        .labels
                        .iter()
                        .filter(|(k, _)| k != "le")
                        .cloned()
                        .collect();
                    got.sort();
                    got == ls
                })
                .collect();
            let mut bounded: Vec<(f64, f64)> = Vec::new();
            for s in &series {
                let le = s
                    .label("le")
                    .ok_or_else(|| format!("{bucket_name}: bucket without le"))?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("{bucket_name}: bad le {le:?}"))?
                };
                bounded.push((bound, s.value));
            }
            bounded.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            if !bounded.last().is_some_and(|(b, _)| b.is_infinite()) {
                return Err(format!("{bucket_name}{ls:?}: missing +Inf bucket"));
            }
            for w in bounded.windows(2) {
                if w[1].1 < w[0].1 {
                    return Err(format!(
                        "{bucket_name}{ls:?}: cumulative counts decrease at le={}",
                        w[1].0
                    ));
                }
            }
            let inf = bounded.last().unwrap().1;
            let count_name = format!("{name}_count");
            if let Some(c) = scrape.samples.iter().find(|s| {
                s.name == count_name && {
                    let mut got: Vec<(String, String)> = s.labels.clone();
                    got.sort();
                    got == ls
                }
            }) {
                if (c.value - inf).abs() > f64::EPSILON {
                    return Err(format!(
                        "{count_name}{ls:?}: count {} != +Inf bucket {inf}",
                        c.value
                    ));
                }
            }
        }
    }
    Ok(scrape)
}

/// Strips histogram suffixes so samples map back to their TYPE name.
fn base_name<'a>(sample_name: &'a str, scrape: &Scrape) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if scrape.type_of(base) == Some("histogram") {
                return base;
            }
        }
    }
    sample_name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn parses_plain_and_labeled_samples() {
        let s = Scrape::parse("a_total 3\nb{x=\"1\",y=\"two\"} 4.5\n").unwrap();
        assert_eq!(s.get("a_total", &[]), Some(3.0));
        assert_eq!(s.get("b", &[("y", "two")]), Some(4.5));
        assert_eq!(s.find("b", &[]).unwrap().label("x"), Some("1"));
    }

    #[test]
    fn parses_escapes_and_inf() {
        let s = Scrape::parse("m{msg=\"say \\\"hi\\\"\\nok\"} +Inf\n").unwrap();
        assert_eq!(
            s.find("m", &[]).unwrap().label("msg"),
            Some("say \"hi\"\nok")
        );
        assert!(s.get("m", &[]).unwrap().is_infinite());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Scrape::parse("no-dashes-allowed 1\n").is_err());
        assert!(Scrape::parse("m{x=\"unterminated} 1\n").is_err());
        assert!(Scrape::parse("m notanumber\n").is_err());
        assert!(Scrape::parse("m\n").is_err());
    }

    #[test]
    fn render_parse_round_trip() {
        let reg = Registry::new();
        reg.counter("req_total", "Requests.", &[("outcome", "ok")])
            .add(12);
        reg.gauge("depth", "Depth.", &[]).add(3);
        let h = reg.histogram_scaled("dur_seconds", "Duration.", &[("kernel", "sum")], 1e-9);
        h.record(5_000_000);
        h.record(9_000_000);
        let text = reg.render();
        let scrape = validate(&text).expect("rendered output must validate");
        assert_eq!(scrape.get("req_total", &[("outcome", "ok")]), Some(12.0));
        assert_eq!(scrape.get("depth", &[]), Some(3.0));
        assert_eq!(
            scrape.get("dur_seconds_count", &[("kernel", "sum")]),
            Some(2.0)
        );
        assert_eq!(scrape.type_of("dur_seconds"), Some("histogram"));
        let p50 = scrape
            .histogram_quantile("dur_seconds", &[("kernel", "sum")], 0.5)
            .unwrap();
        assert!(p50 > 0.001 && p50 < 0.02, "p50 {p50}");
    }

    #[test]
    fn validate_catches_missing_type_and_broken_cumulative() {
        assert!(validate("orphan 1\n").is_err());
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n";
        assert!(validate(bad).unwrap_err().contains("decrease"));
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n";
        assert!(validate(no_inf).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn histogram_quantile_matches_interpolation() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"10\"} 50
h_bucket{le=\"20\"} 100
h_bucket{le=\"+Inf\"} 100
h_sum 1500
h_count 100
";
        let s = Scrape::parse(text).unwrap();
        let p50 = s.histogram_quantile("h", &[], 0.5).unwrap();
        assert!((p50 - 10.0).abs() < 1e-9, "p50 {p50}");
        let p75 = s.histogram_quantile("h", &[], 0.75).unwrap();
        assert!((p75 - 15.0).abs() < 1e-9, "p75 {p75}");
    }

    #[test]
    fn delta_subtracts_matching_samples() {
        let a = Scrape::parse("c_total 10\ng 5\n").unwrap();
        let b = Scrape::parse("c_total 17\ng 4\n").unwrap();
        let d = b.delta(&a);
        assert_eq!(d.get("c_total", &[]), Some(7.0));
        assert_eq!(d.get("g", &[]), Some(0.0), "clamped at zero");
    }

    #[test]
    fn delta_treats_new_buckets_as_cumulative_not_zero() {
        // 100 fast observations, then 100 slow ones: the slow bucket first
        // appears in the later scrape. Its earlier cumulative count at that
        // bound was 100 (all fast obs are below it), not 0.
        let before =
            Scrape::parse("h_bucket{le=\"12\"} 100\nh_bucket{le=\"+Inf\"} 100\nh_count 100\n")
                .unwrap();
        let after = Scrape::parse(
            "h_bucket{le=\"12\"} 100\nh_bucket{le=\"1024\"} 200\nh_bucket{le=\"+Inf\"} 200\nh_count 200\n",
        )
        .unwrap();
        let d = after.delta(&before);
        assert_eq!(d.get("h_bucket", &[("le", "12")]), Some(0.0));
        assert_eq!(d.get("h_bucket", &[("le", "1024")]), Some(100.0));
        assert_eq!(d.get("h_bucket", &[("le", "+Inf")]), Some(100.0));
        // All 100 interval observations sit in (12, 1024]: the interval p50
        // interpolates inside that bucket instead of below it.
        let p50 = d.histogram_quantile("h", &[], 0.5).unwrap();
        assert!(p50 > 500.0, "p50 {p50}");
    }

    #[test]
    fn sum_totals_across_label_values() {
        let s = Scrape::parse("r{o=\"ok\"} 7\nr{o=\"err\"} 2\n").unwrap();
        assert!((s.sum("r") - 9.0).abs() < 1e-12);
    }
}
