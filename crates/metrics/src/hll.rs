//! HyperLogLog distinct-element sketch.
//!
//! Counting distinct clients/tenants exactly needs a hash set that grows
//! with cardinality — unbounded memory on a hot path. HyperLogLog (Flajolet
//! et al. 2007) estimates the count in fixed memory: hash each element, use
//! the top `P` bits to pick one of `2^P` registers, and keep per register
//! the maximum number of leading zeros (+1) seen in the remaining bits. Rare
//! long runs of zeros imply many distinct hashes; the harmonic mean across
//! registers turns that into an estimate with standard error
//! `1.04 / sqrt(2^P)` — about **0.8%** at `P = 14` for 16 KiB of state.
//!
//! Insertion is one relaxed `fetch_max` on an `AtomicU8`, so the sketch is
//! safe to share across threads with no locking, and merging two sketches is
//! a register-wise max (useful for sharded tiers later).

use std::sync::atomic::{AtomicU8, Ordering};

use crate::{hash_bytes, mix64};

/// Register-index bits. `2^14 = 16384` registers ⇒ ~0.8% standard error.
const P: u32 = 14;
/// Number of registers.
const M: usize = 1 << P;

/// A concurrent HyperLogLog sketch with `2^14` one-byte registers.
pub struct Hll {
    registers: Box<[AtomicU8]>,
}

impl std::fmt::Debug for Hll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hll")
            .field("estimate", &self.estimate())
            .finish()
    }
}

impl Hll {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self {
            registers: (0..M).map(|_| AtomicU8::new(0)).collect(),
        }
    }

    /// Inserts an already-uniform 64-bit hash.
    #[inline]
    pub fn insert_hash(&self, h: u64) {
        let idx = (h >> (64 - P)) as usize;
        let rest = h << P;
        // Rank = position of the first 1-bit in the remaining 50 bits,
        // counted from 1; all-zero remainder saturates the register.
        let rank = (rest.leading_zeros() + 1).min(64 - P + 1) as u8;
        self.registers[idx].fetch_max(rank, Ordering::Relaxed);
    }

    /// Inserts an integer key (mixed to a uniform hash first).
    #[inline]
    pub fn insert_u64(&self, x: u64) {
        self.insert_hash(mix64(x));
    }

    /// Inserts a string key (e.g. a client id or peer address).
    #[inline]
    pub fn insert_str(&self, s: &str) {
        self.insert_hash(hash_bytes(s.as_bytes()));
    }

    /// Estimated number of distinct elements inserted so far.
    ///
    /// Uses the bias-corrected harmonic-mean estimator, switching to linear
    /// counting (`m · ln(m / zero_registers)`) in the small range where the
    /// raw estimator is biased — which also makes small exact counts (0, 1,
    /// a handful) come out essentially exact.
    pub fn estimate(&self) -> f64 {
        let m = M as f64;
        let mut inv_sum = 0.0f64;
        let mut zeros = 0usize;
        for r in self.registers.iter() {
            let v = r.load(Ordering::Relaxed);
            if v == 0 {
                zeros += 1;
            }
            inv_sum += f64::powi(2.0, -(v as i32));
        }
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / inv_sum;
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// `estimate()` rounded to the nearest integer (for exposition).
    pub fn estimate_u64(&self) -> u64 {
        self.estimate().round().max(0.0) as u64
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.registers
            .iter()
            .all(|r| r.load(Ordering::Relaxed) == 0)
    }

    /// Folds `other` into `self` (register-wise max). The merged sketch
    /// estimates the cardinality of the union of both insert streams.
    pub fn merge(&self, other: &Hll) {
        for (a, b) in self.registers.iter().zip(other.registers.iter()) {
            a.fetch_max(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Clears the sketch.
    pub fn reset(&self) {
        for r in self.registers.iter() {
            r.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Hll {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let h = Hll::new();
        assert!(h.is_empty());
        assert_eq!(h.estimate_u64(), 0);
    }

    #[test]
    fn small_counts_are_near_exact() {
        let h = Hll::new();
        for i in 0..100u64 {
            h.insert_u64(i);
        }
        let est = h.estimate_u64();
        assert!((95..=105).contains(&est), "estimate {est} for 100 distinct");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let h = Hll::new();
        for _ in 0..10 {
            for i in 0..50u64 {
                h.insert_str(&format!("client-{i}"));
            }
        }
        let est = h.estimate_u64();
        assert!((45..=55).contains(&est), "estimate {est} for 50 distinct");
    }

    #[test]
    fn hundred_thousand_within_five_percent() {
        let h = Hll::new();
        let n = 100_000u64;
        for i in 0..n {
            h.insert_u64(i);
        }
        let est = h.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "estimate {est} vs {n} (rel err {rel:.4})");
    }

    #[test]
    fn merge_unions_streams() {
        let a = Hll::new();
        let b = Hll::new();
        for i in 0..5_000u64 {
            a.insert_u64(i);
            b.insert_u64(i + 2_500); // half overlapping
        }
        a.merge(&b);
        let est = a.estimate();
        let rel = (est - 7_500.0).abs() / 7_500.0;
        assert!(rel < 0.05, "merged estimate {est} vs 7500 (rel {rel:.4})");
    }

    #[test]
    fn concurrent_inserts_match_serial_estimate() {
        let h = Hll::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.insert_u64(t * 10_000 + i);
                    }
                });
            }
        });
        let est = h.estimate();
        let rel = (est - 40_000.0).abs() / 40_000.0;
        assert!(rel < 0.05, "estimate {est} vs 40000 (rel {rel:.4})");
    }
}
