//! Log-linear latency histogram with quantile estimation.
//!
//! Latencies span six-plus orders of magnitude (a cache-hit `sum` job is
//! microseconds; a large `matmul` is seconds), so linear buckets are
//! hopeless and exact reservoirs are too expensive for an always-on path.
//! Log2 buckets subdivided linearly (4 sub-buckets per octave, the HDR
//! histogram idea at its coarsest useful setting) bound the relative error
//! of any reported quantile by the sub-bucket width: at most 1/4 ≈ 25% of
//! the value, in practice far less because the estimate interpolates inside
//! the bucket and clamps to the observed maximum.
//!
//! Recording is three relaxed RMWs (bucket count, running sum, max) on fixed
//! storage — no locks, no allocation. Values are raw `u64`s; callers pick
//! the unit (the service records nanoseconds and renders seconds via a
//! `1e-9` scale at the registry).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 8 exact small-value buckets (0..8) plus 4 sub-buckets
/// per octave for octaves 3..=63, capped to fit. Indexes above the last
/// octave clamp into the final bucket.
pub const NUM_BUCKETS: usize = 8 + (64 - 3) * 4;

/// Index of the bucket that counts `v`.
///
/// Values below 8 get exact buckets; otherwise the octave is `floor(log2 v)`
/// and the top two bits below the leading bit pick one of 4 linear
/// sub-buckets.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // 3..=63
        let sub = ((v >> (exp - 2)) & 3) as usize;
        (8 + (exp - 3) * 4 + sub).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` (the smallest value it counts).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < 8 {
        i as u64
    } else {
        let exp = 3 + (i - 8) / 4;
        let sub = ((i - 8) % 4) as u64;
        (1u64 << exp) + (sub << (exp - 2))
    }
}

/// Exclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(i + 1)
    }
}

/// A fixed-size concurrent histogram.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counts. Not atomic across buckets — a
    /// scrape racing writers can be off by the writes in flight, which is
    /// fine for monitoring (counts are cumulative and catch up next scrape).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counts (tests/benchmarks; not used on the live path).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Immutable copy of a histogram's state, with quantile estimation and
/// delta arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (length [`NUM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by walking the
    /// cumulative counts and interpolating linearly inside the target
    /// bucket. The estimate is clamped to the recorded maximum, so `q = 1`
    /// returns `max` exactly and high quantiles never overshoot the data.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 0-based fractional rank of the order statistic we want.
        let rank = q * (count - 1) as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let first = cum as f64; // rank of the first observation here
            cum += c;
            let last = cum as f64 - 1.0; // rank of the last observation here
            if rank <= last {
                let lo = bucket_lower_bound(i) as f64;
                let hi = bucket_upper_bound(i).min(self.max.max(1)) as f64;
                let frac = if c <= 1 {
                    0.5
                } else {
                    (rank - first) / (c as f64 - 1.0)
                };
                let v = lo + frac * (hi - lo).max(0.0);
                return v.min(self.max as f64);
            }
        }
        self.max as f64
    }

    /// Counts recorded since `prev` (which must be an earlier snapshot of
    /// the same histogram). `max` cannot be deltaed — the result keeps the
    /// current max, which is the max *so far*, not of the interval.
    pub fn delta(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(prev.buckets.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(prev.sum),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's lower bound must map back to that bucket, and
        // bounds must be strictly increasing.
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert!(bucket_lower_bound(i + 1) > lo);
            }
        }
        // And every value maps to the bucket whose range contains it.
        for &v in &[0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 123_456_789, u64::MAX] {
            let i = bucket_index(v);
            assert!(v >= bucket_lower_bound(i));
            assert!(v < bucket_upper_bound(i) || i == NUM_BUCKETS - 1);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for v in 0..8usize {
            assert_eq!(s.buckets[v], 1);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.sum, 28);
        assert_eq!(s.max, 7);
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let mut prev = -1.0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let x = s.quantile(q);
            assert!(x >= prev, "quantile({q}) = {x} < {prev}");
            assert!(x <= 1000.0, "quantile({q}) = {x} exceeds max");
            prev = x;
        }
        assert_eq!(s.quantile(1.0), 1000.0);
    }

    #[test]
    fn quantile_relative_error_is_bounded_on_uniform() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for q in [0.5, 0.9, 0.99] {
            let exact = q * 100_000.0;
            let est = s.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.25, "q={q}: est {est} vs exact {exact} (rel {rel})");
        }
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn delta_subtracts_counts() {
        let h = Histogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(10);
        h.record(20);
        let after = h.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum, 30);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 977);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
