//! # tpm-metrics — always-on, lock-free runtime/service metrics
//!
//! `tpm-trace` (PR 1) is *capture-mode* observability: you opt in, record a
//! bounded event window, and analyze after the fact. That is the wrong shape
//! for a long-running service: the interesting window is always the one you
//! didn't capture, and tracing overhead is too high to leave on. This crate
//! is the complementary *always-on* layer — counters, gauges, latency
//! histograms, and a distinct-element sketch cheap enough to run
//! unconditionally, scraped live over the wire without restarting anything.
//!
//! Design rules, in order:
//!
//! 1. **The hot path is one uncontended relaxed RMW.** [`Counter`] and
//!    [`Gauge`] are sharded across cache-line-padded cells; each thread picks
//!    a shard once and increments only that cell. Aggregation happens on
//!    read, which is rare (a scrape every second or two).
//! 2. **Fixed memory, no allocation after registration.** [`Histogram`] is a
//!    fixed array of log2-spaced buckets; [`Hll`] is a fixed register file.
//!    Recording never allocates, never locks, never syscalls.
//! 3. **`std`-only.** Like the rest of the workspace, no external crates:
//!    the sketch, the buckets, and the exposition format are built from
//!    scratch.
//!
//! The [`Registry`] names every instrument and renders them in Prometheus
//! text exposition format ([`Registry::render`]); [`text::Scrape`] parses
//! that same format back (for the `tpm-harness top` dashboard and for
//! format-validity tests), and [`Registry::snapshot`] gives a structured
//! [`Snapshot`] with delta semantics for programmatic use.
//!
//! # Example
//!
//! ```
//! use tpm_metrics::{Registry, text::Scrape};
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache_hits_total", "Cache hits.", &[]);
//! let lat = reg.histogram_scaled(
//!     "lookup_seconds", "Lookup latency.", &[("tier", "l1")], 1e-9);
//! hits.inc();
//! lat.record(1_500); // ns; rendered in seconds via the 1e-9 scale
//! let text = reg.render();
//! let scrape = Scrape::parse(&text).unwrap();
//! assert_eq!(scrape.get("cache_hits_total", &[]), Some(1.0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cell;
mod histogram;
mod hll;
mod registry;
pub mod text;

pub use cell::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use hll::Hll;
pub use registry::{Registry, Series, SeriesValue, Snapshot};

/// Whether metrics recording is enabled for this process.
///
/// Metrics are **on by default** (they are designed to be always-on); set
/// `TPM_METRICS=0` (or `off`/`false`) to disable recording at the
/// instrumentation sites that consult this gate. Registration and rendering
/// still work when disabled — series simply stay at zero — which is what the
/// metrics-on/metrics-off overhead benchmark (BENCH_6) compares.
///
/// The value is read once and cached for the life of the process.
pub fn enabled() -> bool {
    use std::sync::OnceLock;
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("TPM_METRICS").as_deref(),
            Ok("0") | Ok("off") | Ok("false") | Ok("no")
        )
    })
}

/// A stateless 64-bit mixer (SplitMix64 finalizer): turns sequential or
/// low-entropy inputs into uniformly distributed hashes. Used by [`Hll`] and
/// handy for tests that need a cheap hash.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a hash of a byte string, mixed through [`mix64`]. The sketch needs
/// all 64 bits to be uniform; FNV alone is weak in the high bits.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_spreads_sequential_inputs() {
        // Consecutive integers must land in different high bits (the HLL
        // register index is taken from the top 14 bits).
        let a = mix64(1) >> 50;
        let b = mix64(2) >> 50;
        let c = mix64(3) >> 50;
        assert!(a != b || b != c);
    }

    #[test]
    fn hash_bytes_differs_on_small_changes() {
        assert_ne!(hash_bytes(b"client-1"), hash_bytes(b"client-2"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn enabled_defaults_on() {
        // The test runner doesn't set TPM_METRICS; the default must be on.
        assert!(enabled());
    }
}
