//! Optional core-affinity pinning for runtime worker threads.
//!
//! All three runtimes consult the same two knobs when they spawn workers: the
//! `TPM_PIN` environment variable (`1`/`true`/`on`) or an explicit builder
//! flag. Pinning worker `i` to core `i % cores` removes OS-migration noise
//! from the overhead measurements the paper's figures are about — on a
//! multi-core host, a migrated worker drags its working set across caches
//! mid-benchmark.
//!
//! The workspace builds offline with no `libc`, so the Linux implementation
//! issues the `sched_setaffinity` syscall directly; everywhere else (and on
//! non-x86_64 Linux) pinning is a documented no-op returning `false`.

/// True when the `TPM_PIN` environment variable requests pinning.
pub fn pin_from_env() -> bool {
    matches!(
        std::env::var("TPM_PIN").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// Pins the calling thread to core `index % available cores`. Returns whether
/// the pin took effect (always `false` on unsupported platforms).
pub fn pin_current_thread(index: usize) -> bool {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    set_affinity(index % cores)
}

/// Bits in one `cpu_set_t` word.
const WORD_BITS: usize = u64::BITS as usize;
/// Mask words passed to the kernel (1024 CPUs, glibc's `CPU_SETSIZE`).
const MASK_WORDS: usize = 1024 / WORD_BITS;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn set_affinity(cpu: usize) -> bool {
    // sched_setaffinity(pid = 0 (self), cpusetsize, mask) — syscall 203 on
    // x86_64. Issued directly because the workspace has no libc binding.
    let mut mask = [0u64; MASK_WORDS];
    mask[(cpu / WORD_BITS) % MASK_WORDS] |= 1 << (cpu % WORD_BITS);
    let ret: isize;
    // SAFETY: the syscall only reads `mask` (valid for MASK_WORDS * 8 bytes)
    // and affects scheduling of the current thread; registers rcx/r11 are
    // declared clobbered per the x86_64 syscall ABI.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, readonly),
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn set_affinity(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_flag_parses() {
        // Avoid mutating the test process environment (other tests read it):
        // exercise only the current state, which must not panic.
        let _ = pin_from_env();
    }

    #[test]
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn pinning_succeeds_on_linux() {
        assert!(pin_current_thread(0), "pin to core 0");
        // Out-of-range indices wrap instead of failing.
        assert!(pin_current_thread(usize::MAX - 1));
    }

    #[test]
    fn pin_reports_outcome_without_panicking() {
        let _ = pin_current_thread(1);
    }
}
