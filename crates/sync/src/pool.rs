//! Shared worker-pool configuration.
//!
//! Every pooled runtime in the workspace (`tpm-forkjoin`'s `Team`,
//! `tpm-worksteal`'s `Runtime`, `tpm-actors`' `ActorRuntime`) exposes the
//! same four construction knobs — worker count, core pinning, NUMA-aware
//! victim ordering, and the idle escalation policy. [`PoolConfig`] is the
//! one place those knobs and their environment-variable defaults live, so
//! the per-crate builders delegate here instead of re-implementing (and
//! drifting on) the defaults.

use crate::IdleStrategy;

/// Construction knobs common to every pooled runtime.
///
/// # Examples
///
/// ```
/// use tpm_sync::PoolConfig;
///
/// let cfg = PoolConfig::from_env().threads(4).pin(false);
/// assert_eq!(cfg.threads, 4);
/// assert!(!cfg.pin);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads (>= 1).
    pub threads: usize,
    /// Pin worker `i` to core `i % cores` (no-op without
    /// `sched_setaffinity`).
    pub pin: bool,
    /// Node-aware victim/placement ordering; `None` lets each runtime decide
    /// from `TPM_NUMA` and the probed topology.
    pub numa: Option<bool>,
    /// Idle escalation `(spin_rounds, yield_rounds)` before parking (see
    /// [`IdleStrategy::new`]).
    pub idle: (u32, u32),
}

impl PoolConfig {
    /// The defaults every runtime builder starts from: one worker, pinning
    /// from `TPM_PIN`, NUMA left to the topology probe, the shared runtime
    /// idle budget.
    pub fn from_env() -> Self {
        PoolConfig {
            threads: 1,
            pin: crate::affinity::pin_from_env(),
            numa: None,
            idle: (
                IdleStrategy::RUNTIME_DEFAULT_SPIN,
                IdleStrategy::RUNTIME_DEFAULT_YIELD,
            ),
        }
    }

    /// Sets the worker count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Sets core pinning.
    pub fn pin(mut self, pin: bool) -> Self {
        self.pin = pin;
        self
    }

    /// Forces NUMA-aware ordering on or off (instead of auto-detection).
    pub fn numa(mut self, numa: bool) -> Self {
        self.numa = Some(numa);
        self
    }

    /// Sets the idle escalation policy.
    pub fn idle(mut self, spin_rounds: u32, yield_rounds: u32) -> Self {
        self.idle = (spin_rounds, yield_rounds);
        self
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_set_fields() {
        let cfg = PoolConfig::from_env()
            .threads(8)
            .pin(true)
            .numa(false)
            .idle(5, 7);
        assert_eq!(cfg.threads, 8);
        assert!(cfg.pin);
        assert_eq!(cfg.numa, Some(false));
        assert_eq!(cfg.idle, (5, 7));
    }

    #[test]
    fn default_matches_from_env() {
        assert_eq!(PoolConfig::default(), PoolConfig::from_env());
    }
}
