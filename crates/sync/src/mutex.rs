//! A spin-then-park mutex built from scratch (Chapter 9 of *Rust Atomics and
//! Locks*, with the futex replaced by an explicit parked-thread queue, since
//! we stay inside `std`).
//!
//! The three-state protocol is the classic futex one:
//!
//! * `0` — unlocked
//! * `1` — locked, no waiters
//! * `2` — locked, possibly contended (an unlocker must wake someone)
//!
//! `futex_wait` is emulated by pushing the current thread handle onto a
//! spin-locked queue and parking; `futex_wake` pops one handle and unparks it.
//! Spurious wakeups are tolerated everywhere by re-checking the state.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU8, Ordering};
use std::thread::{self, Thread};

use crate::{Backoff, SpinLock};

const UNLOCKED: u8 = 0;
const LOCKED: u8 = 1;
const CONTENDED: u8 = 2;

/// How many acquisition attempts to spin before parking. Spinning covers the
/// common short-critical-section case without a syscall.
const SPIN_TRIES: u32 = 32;

/// A mutual-exclusion lock with parking, analogous to `omp_lock_t` /
/// `std::mutex` in the paper's Table III row for mutual exclusion.
///
/// Unlike `std::sync::Mutex` there is no poisoning: the paper's runtimes
/// (OpenMP, Cilk) treat a panic inside a critical section as program error,
/// and the runtimes in this workspace propagate panics separately.
///
/// # Examples
///
/// ```
/// use tpm_sync::Mutex;
///
/// let m = Mutex::new(Vec::new());
/// std::thread::scope(|s| {
///     for i in 0..4 {
///         let m = &m;
///         s.spawn(move || m.lock().push(i));
///     }
/// });
/// assert_eq!(m.into_inner().len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    state: AtomicU8,
    /// Parked waiters. The spin lock is held only for queue manipulation.
    waiters: SpinLock<VecDeque<Thread>>,
    data: UnsafeCell<T>,
}

// SAFETY: exclusive access is mediated by the lock protocol.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}

/// RAII guard for [`Mutex`]; releases the lock on drop.
#[must_use = "dropping the guard immediately unlocks the Mutex"]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(data: T) -> Self {
        Self {
            state: AtomicU8::new(UNLOCKED),
            waiters: SpinLock::new(VecDeque::new()),
            data: UnsafeCell::new(data),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking (parking) if necessary.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if self
            .state
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return MutexGuard { lock: self };
        }
        self.lock_contended();
        MutexGuard { lock: self }
    }

    #[cold]
    fn lock_contended(&self) {
        let backoff = Backoff::new();
        let mut tries = 0u32;
        // Phase 1: optimistic spinning.
        while tries < SPIN_TRIES {
            if self.state.load(Ordering::Relaxed) == UNLOCKED
                && self
                    .state
                    .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            backoff.snooze();
            tries += 1;
        }
        // Phase 2: announce contention and park. `swap(CONTENDED)` both
        // attempts the acquisition (previous == UNLOCKED) and forces the
        // current owner's unlock onto the wake path.
        while self.state.swap(CONTENDED, Ordering::Acquire) != UNLOCKED {
            // Emulated futex_wait(state, CONTENDED):
            {
                let mut q = self.waiters.lock();
                // Re-check under the queue lock; if the state changed we must
                // not park (the wakeup may already have happened).
                if self.state.load(Ordering::Relaxed) != CONTENDED {
                    continue;
                }
                q.push_back(thread::current());
            }
            // Park until some unlock unparks us (or spuriously; the outer
            // loop re-checks).
            thread::park();
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self
            .state
            .compare_exchange(UNLOCKED, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(MutexGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns a mutable reference without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    fn unlock(&self) {
        if self.state.swap(UNLOCKED, Ordering::Release) == CONTENDED {
            // Emulated futex_wake(1).
            let waiter = self.waiters.lock().pop_front();
            if let Some(t) = waiter {
                t.unpark();
            }
        }
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// The mutex this guard locks. Used by [`crate::Condvar`] to re-acquire
    /// after waiting.
    pub(crate) fn mutex(&self) -> &'a Mutex<T> {
        self.lock
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves the lock is held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_correctly_under_heavy_contention() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..20_000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 160_000);
    }

    #[test]
    fn try_lock_semantics() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn waiters_are_eventually_woken() {
        // One thread holds the lock long enough to force parkers, then
        // releases; all parked threads must complete.
        let m = Arc::new(Mutex::new(0u32));
        let g = m.lock();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                *m.lock() += 1;
            }));
        }
        thread::sleep(std::time::Duration::from_millis(50));
        drop(g);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("intentional");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
