//! A counting semaphore (Chapter 10 of *Rust Atomics and Locks*, "Ideas and
//! Inspiration"), used to bound concurrency — e.g. limiting live OS threads
//! in the C++11 model the way a sane implementation of the paper's
//! recursive `std::async` code would.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::Backoff;

/// A counting semaphore with `acquire`/`release` and RAII permits.
///
/// # Examples
///
/// ```
/// use tpm_sync::Semaphore;
///
/// let sem = Semaphore::new(2);
/// let a = sem.acquire();
/// let b = sem.acquire();
/// assert!(sem.try_acquire().is_none()); // both permits out
/// drop(a);
/// assert!(sem.try_acquire().is_some());
/// # drop(b);
/// ```
#[derive(Debug)]
pub struct Semaphore {
    permits: AtomicUsize,
}

/// An RAII permit; released on drop.
#[must_use = "dropping the permit releases it immediately"]
#[derive(Debug)]
pub struct Permit<'a> {
    sem: &'a Semaphore,
}

impl Semaphore {
    /// Creates a semaphore with `permits` available permits.
    pub const fn new(permits: usize) -> Self {
        Self {
            permits: AtomicUsize::new(permits),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.permits.load(Ordering::Relaxed)
    }

    /// Acquires a permit, spinning (with yield) until one is available.
    pub fn acquire(&self) -> Permit<'_> {
        let backoff = Backoff::new();
        loop {
            if let Some(p) = self.try_acquire() {
                return p;
            }
            backoff.snooze();
        }
    }

    /// Attempts to take a permit without blocking.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut cur = self.permits.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return None;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit { sem: self }),
                Err(now) => cur = now,
            }
        }
    }

    fn release(&self) {
        self.permits.fetch_add(1, Ordering::Release);
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_bound_concurrency() {
        use std::sync::atomic::AtomicUsize;
        const LIMIT: usize = 3;
        let sem = Semaphore::new(LIMIT);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let sem = &sem;
                let live = &live;
                let peak = &peak;
                s.spawn(move || {
                    for _ in 0..200 {
                        let _p = sem.acquire();
                        let n = live.fetch_add(1, Ordering::Relaxed) + 1;
                        peak.fetch_max(n, Ordering::Relaxed);
                        live.fetch_sub(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(peak.load(Ordering::Relaxed) <= LIMIT);
        assert_eq!(sem.available(), LIMIT);
    }

    #[test]
    fn try_acquire_respects_count() {
        let sem = Semaphore::new(1);
        let p = sem.try_acquire().unwrap();
        assert!(sem.try_acquire().is_none());
        drop(p);
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn zero_permit_semaphore_blocks_until_release() {
        let sem = std::sync::Arc::new(Semaphore::new(0));
        let s2 = std::sync::Arc::clone(&sem);
        let h = std::thread::spawn(move || {
            let _p = s2.acquire();
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Manufacture a release by adding a permit.
        sem.permits.fetch_add(1, Ordering::Release);
        assert!(h.join().unwrap());
    }
}
