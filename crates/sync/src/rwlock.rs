//! A reader-writer lock built from one atomic (Chapter 9 of *Rust Atomics
//! and Locks*), with writer preference to avoid writer starvation.
//!
//! State encoding: `0` = free, `u32::MAX` = write-locked, otherwise the
//! reader count. A separate `writers_waiting` counter makes new readers back
//! off while a writer queues.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, Ordering};

use crate::Backoff;

const WRITE_LOCKED: u32 = u32::MAX;

/// A reader-writer lock: many readers or one writer.
///
/// # Examples
///
/// ```
/// use tpm_sync::RwLock;
///
/// let lock = RwLock::new(5);
/// {
///     let a = lock.read();
///     let b = lock.read(); // concurrent readers are fine
///     assert_eq!(*a + *b, 10);
/// }
/// *lock.write() += 1;
/// assert_eq!(*lock.read(), 6);
/// ```
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    state: AtomicU32,
    writers_waiting: AtomicU32,
    data: UnsafeCell<T>,
}

// SAFETY: standard reader-writer exclusion discipline.
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}

/// Shared read guard.
#[must_use = "dropping the guard releases the read lock"]
pub struct ReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

/// Exclusive write guard.
#[must_use = "dropping the guard releases the write lock"]
pub struct WriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    pub const fn new(data: T) -> Self {
        Self {
            state: AtomicU32::new(0),
            writers_waiting: AtomicU32::new(0),
            data: UnsafeCell::new(data),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Readers defer to queued writers.
    pub fn read(&self) -> ReadGuard<'_, T> {
        let backoff = Backoff::new();
        loop {
            // Writer preference: don't join while a writer is waiting.
            if self.writers_waiting.load(Ordering::Relaxed) == 0 {
                let s = self.state.load(Ordering::Relaxed);
                if s != WRITE_LOCKED
                    && s < WRITE_LOCKED - 1
                    && self
                        .state
                        .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    return ReadGuard { lock: self };
                }
            }
            backoff.snooze();
        }
    }

    /// Attempts a shared read lock without blocking.
    pub fn try_read(&self) -> Option<ReadGuard<'_, T>> {
        let s = self.state.load(Ordering::Relaxed);
        if s != WRITE_LOCKED
            && self
                .state
                .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            Some(ReadGuard { lock: self })
        } else {
            None
        }
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> WriteGuard<'_, T> {
        self.writers_waiting.fetch_add(1, Ordering::Relaxed);
        let backoff = Backoff::new();
        loop {
            if self
                .state
                .compare_exchange_weak(0, WRITE_LOCKED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.writers_waiting.fetch_sub(1, Ordering::Relaxed);
                return WriteGuard { lock: self };
            }
            backoff.snooze();
        }
    }

    /// Attempts the write lock without blocking.
    pub fn try_write(&self) -> Option<WriteGuard<'_, T>> {
        if self
            .state
            .compare_exchange(0, WRITE_LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(WriteGuard { lock: self })
        } else {
            None
        }
    }

    /// Mutable access without locking (`&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: ?Sized> Deref for ReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: read guard ⇒ no writer.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.state.fetch_sub(1, Ordering::Release);
    }
}

impl<T: ?Sized> Deref for WriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: write guard ⇒ exclusive.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for WriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.state.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_share_writers_exclude() {
        let l = RwLock::new(1);
        let r1 = l.read();
        let r2 = l.read();
        assert!(l.try_write().is_none());
        drop((r1, r2));
        let w = l.write();
        assert!(l.try_read().is_none());
        drop(w);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn concurrent_reads_and_writes_are_consistent() {
        // Writers keep the pair (a, 2a); readers must never observe a torn
        // pair.
        let l = std::sync::Arc::new(RwLock::new((0u64, 0u64)));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let l = std::sync::Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let mut g = l.write();
                    g.0 = i;
                    g.1 = 2 * i;
                }
            }));
        }
        for _ in 0..2 {
            let l = std::sync::Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    let g = l.read();
                    assert_eq!(g.1, 2 * g.0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn writers_are_not_starved() {
        use std::sync::atomic::AtomicBool;
        let l = std::sync::Arc::new(RwLock::new(0u32));
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let l = std::sync::Arc::clone(&l);
            let done = std::sync::Arc::clone(&done);
            readers.push(std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let _ = *l.read();
                }
            }));
        }
        // The writer must get in despite the reader churn.
        {
            let mut g = l.write();
            *g = 42;
        }
        done.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 42);
    }

    #[test]
    fn get_mut_and_into_inner() {
        let mut l = RwLock::new(3);
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 4);
    }
}
