//! Unbounded lock-free multi-producer single-consumer queue.
//!
//! The mailbox substrate for `tpm-actors`: any thread may
//! [`push`](MpscQueue::push), while exactly one consumer at a time may
//! [`pop`](MpscQueue::pop). This is Vyukov's intrusive MPSC construction
//! rebuilt over `std` atomics: producers swap themselves onto the head and
//! link the previous node forward, so a push is one `swap` + one `store`
//! (wait-free for producers); the consumer chases `next` pointers from a
//! stub node.
//!
//! The "single consumer" side is a *protocol* obligation, not a type-level
//! one: the actor scheduler guarantees at most one activation of a mailbox
//! runs at a time (see `tpm-actors`' IDLE/SCHEDULED state machine), which is
//! exactly the exclusivity `pop` needs. [`is_empty`](MpscQueue::is_empty) is
//! safe from any thread and approximate by nature.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: Option<T>,
}

impl<T> Node<T> {
    fn boxed(value: Option<T>) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value,
        }))
    }
}

/// An unbounded MPSC queue (see the module docs for the protocol contract).
///
/// # Examples
///
/// ```
/// use tpm_sync::MpscQueue;
///
/// let q = MpscQueue::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
pub struct MpscQueue<T> {
    /// Producers swap themselves in here (newest node).
    head: AtomicPtr<Node<T>>,
    /// Consumer-owned cursor (oldest node, always a consumed stub). Written
    /// only by the current consumer; read by `is_empty` from any thread, so
    /// it is an atomic rather than a plain cell.
    tail: AtomicPtr<Node<T>>,
}

// SAFETY: values are moved in by producers and out by the (externally
// serialized) consumer; all shared pointers are atomics.
unsafe impl<T: Send> Send for MpscQueue<T> {}
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> MpscQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let stub = Node::boxed(None);
        MpscQueue {
            head: AtomicPtr::new(stub),
            tail: AtomicPtr::new(stub),
        }
    }

    /// Enqueues `value`. Callable from any thread; wait-free (one `swap`,
    /// one `store`).
    pub fn push(&self, value: T) {
        let node = Node::boxed(Some(value));
        // Publish ourselves as the newest node, then link the previous
        // newest to us. Between the two steps the chain is momentarily
        // broken; `pop` detects that window and spins it out.
        let prev = self.head.swap(node, Ordering::AcqRel);
        // SAFETY: `prev` was the head; only this producer links its `next`.
        unsafe { (*prev).next.store(node, Ordering::Release) };
    }

    /// Dequeues the oldest value, or `None` when the queue is (momentarily)
    /// empty. MUST only be called by one thread at a time — the scheduler's
    /// serialization protocol, not this type, enforces that.
    pub fn pop(&self) -> Option<T> {
        let tail = self.tail.load(Ordering::Relaxed);
        // SAFETY: `tail` is the consumer-owned stub; we are the unique
        // consumer by protocol.
        let mut next = unsafe { (*tail).next.load(Ordering::Acquire) };
        if next.is_null() {
            if self.head.load(Ordering::Acquire) == tail {
                return None; // truly empty
            }
            // A producer swapped the head but has not linked `next` yet
            // (the momentary inconsistency window) — it is one `store` away,
            // so spin rather than report empty and lose FIFO order.
            loop {
                next = unsafe { (*tail).next.load(Ordering::Acquire) };
                if !next.is_null() {
                    break;
                }
                std::hint::spin_loop();
            }
        }
        // SAFETY: `next` is fully linked; it becomes the new stub and its
        // value moves out. The old stub is ours to free.
        unsafe {
            let value = (*next).value.take();
            self.tail.store(next, Ordering::Release);
            drop(Box::from_raw(tail));
            Some(value.expect("non-stub node holds a value"))
        }
    }

    /// Whether the queue looks empty. Safe from any thread (pure pointer
    /// comparison — the head equals the consumed stub exactly when nothing
    /// is in flight); the answer can be stale by the time the caller acts on
    /// it, so callers close that race with the IDLE/SCHEDULED handshake,
    /// not with this predicate.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }
}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        // Unique access: drain values, then free the final stub.
        while self.pop().is_some() {}
        let stub = self.tail.load(Ordering::Relaxed);
        // SAFETY: after draining, `tail` is the sole remaining node.
        unsafe { drop(Box::from_raw(stub)) };
    }
}

impl<T> std::fmt::Debug for MpscQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscQueue")
            .field("empty", &self.is_empty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_producer() {
        let q = MpscQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let q = MpscQueue::new();
        q.push(1);
        assert_eq!(q.pop(), Some(1));
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(2));
        q.push(4);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn multi_producer_exactly_once() {
        const PRODUCERS: usize = 4;
        const PER: usize = 5_000;
        let q = Arc::new(MpscQueue::new());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push(p * PER + i);
                    }
                })
            })
            .collect();
        let mut seen = vec![false; PRODUCERS * PER];
        let mut got = 0;
        while got < PRODUCERS * PER {
            if let Some(v) = q.pop() {
                assert!(!seen[v], "value {v} delivered twice");
                seen[v] = true;
                got += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.pop(), None);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn per_producer_order_is_preserved() {
        const PER: usize = 2_000;
        let q = Arc::new(MpscQueue::new());
        let handles: Vec<_> = (0..3usize)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        q.push((p, i));
                    }
                })
            })
            .collect();
        let mut last = [0usize; 3];
        let mut counts = [0usize; 3];
        let mut got = 0;
        while got < 3 * PER {
            if let Some((p, i)) = q.pop() {
                if counts[p] > 0 {
                    assert!(i > last[p], "producer {p} reordered: {i} after {}", last[p]);
                }
                last[p] = i;
                counts[p] += 1;
                got += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counts, [PER; 3]);
    }

    #[test]
    fn drop_frees_undelivered_values() {
        let q = MpscQueue::new();
        let payload = Arc::new(());
        for _ in 0..10 {
            q.push(Arc::clone(&payload));
        }
        assert_eq!(Arc::strong_count(&payload), 11);
        drop(q);
        assert_eq!(Arc::strong_count(&payload), 1);
    }
}
