//! Exponential backoff for spin loops.
//!
//! Contended CAS loops and spin-wait conditions burn bus bandwidth if they
//! retry back-to-back. The standard remedy is exponential backoff: a few
//! `spin_loop` hints first (cheap, keeps the thread on-core), then yields to
//! the OS scheduler once the wait looks long. On this crate's oversubscribed
//! single-core CI hosts the yield phase is what makes spin-based primitives
//! usable at all, so `Backoff` is deliberately yield-happy compared to
//! server-tuned implementations.

use std::hint;
use std::thread;

/// Maximum exponent for the pure-spin phase: up to `2^SPIN_LIMIT` spin hints.
const SPIN_LIMIT: u32 = 6;
/// Exponent at which [`Backoff::snooze`] starts yielding to the OS.
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff helper for spin loops.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use tpm_sync::Backoff;
///
/// let flag = AtomicBool::new(true); // already set; loop exits immediately
/// let backoff = Backoff::new();
/// while !flag.load(Ordering::Acquire) {
///     backoff.snooze();
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    /// Creates a backoff counter at the cheapest (pure spin) stage.
    pub const fn new() -> Self {
        Self {
            step: std::cell::Cell::new(0),
        }
    }

    /// Resets to the initial stage (call after making progress).
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off for a failed compare-and-swap: spin only, never yields.
    ///
    /// Use between CAS retries where the owner is expected to finish in a few
    /// instructions.
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..(1u32 << step) {
            hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off while waiting for a condition owned by another thread:
    /// spins first, then yields to the OS scheduler.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..(1u32 << step) {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// True once the waiter has backed off long enough that blocking (parking)
    /// would be cheaper than continuing to spin.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_after_enough_snoozes() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let b = Backoff::new();
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_never_completes() {
        let b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        assert!(!b.is_completed());
    }
}
