//! Compile-time layout assertions for false-sharing-sensitive types.
//!
//! The false-sharing audit (see `docs` in the README's "Memory system"
//! section) fixed the layouts of the hot shared structs — Chase–Lev deque
//! ends, cancellation tokens, barrier/latch words, per-worker stats. A
//! refactor that quietly repacks one of them reintroduces MESI ping-pong
//! with no functional symptom, so the fixed layouts are pinned by `const`
//! assertions that fail the *build*, not a benchmark three PRs later:
//!
//! * [`assert_cache_isolated!`] — the type owns its cache line(s): aligned
//!   to at least [`PAD_LINE`] and sized in whole multiples of its
//!   alignment, so adjacent values (e.g. array elements) never share.
//! * [`assert_line_aligned!`] — weaker: alignment at least [`CACHE_LINE`],
//!   for heap singletons that only need isolation from allocator
//!   neighbours.
//! * [`assert_fields_separated!`] — two named fields sit at least
//!   [`CACHE_LINE`] apart, for producer/consumer field pairs inside one
//!   struct (deque `top` vs `bottom`).
//!
//! [`assert_cache_isolated!`]: crate::assert_cache_isolated
//! [`assert_line_aligned!`]: crate::assert_line_aligned
//! [`assert_fields_separated!`]: crate::assert_fields_separated

/// The conservative cache-line size layouts are audited against (64 bytes
/// on every x86-64 and most AArch64 parts).
pub const CACHE_LINE: usize = 64;

/// The padding quantum [`crate::CachePadded`] uses: a 128-byte line *pair*,
/// covering x86-64 adjacent-line prefetch and 128-byte-line AArch64 parts.
pub const PAD_LINE: usize = 128;

/// Build-failing check that `$ty` owns its cache line(s): alignment at
/// least [`PAD_LINE`] and size a whole multiple of the alignment.
#[macro_export]
macro_rules! assert_cache_isolated {
    ($ty:ty) => {
        const _: () = {
            assert!(
                core::mem::align_of::<$ty>() >= $crate::layout::PAD_LINE,
                concat!(
                    stringify!($ty),
                    ": alignment fell below the padded-line quantum; a neighbour can share its cache line"
                ),
            );
            assert!(
                core::mem::size_of::<$ty>() % core::mem::align_of::<$ty>() == 0,
                concat!(stringify!($ty), ": size is not a multiple of its alignment"),
            );
        };
    };
}

/// Build-failing check that `$ty` starts on its own cache line (alignment
/// at least [`CACHE_LINE`]).
#[macro_export]
macro_rules! assert_line_aligned {
    ($ty:ty) => {
        const _: () = assert!(
            core::mem::align_of::<$ty>() >= $crate::layout::CACHE_LINE,
            concat!(stringify!($ty), ": lost its cache-line alignment"),
        );
    };
}

/// Build-failing check that two fields of `$ty` are at least
/// [`CACHE_LINE`] bytes apart (writers of one never invalidate readers of
/// the other).
#[macro_export]
macro_rules! assert_fields_separated {
    ($ty:ty, $a:ident, $b:ident) => {
        const _: () = {
            let a = core::mem::offset_of!($ty, $a);
            let b = core::mem::offset_of!($ty, $b);
            let gap = if a > b { a - b } else { b - a };
            assert!(
                gap >= $crate::layout::CACHE_LINE,
                concat!(
                    stringify!($ty),
                    ": fields ",
                    stringify!($a),
                    " and ",
                    stringify!($b),
                    " share a cache line"
                ),
            );
        };
    };
}

#[cfg(test)]
mod tests {
    use crate::{Barrier, CachePadded, CancelToken, CountLatch, SpinLatch};
    use std::mem::{align_of, size_of};

    // The macros themselves, exercised against the canonical padded type.
    crate::assert_cache_isolated!(CachePadded<u64>);
    crate::assert_line_aligned!(CachePadded<[u8; 3]>);

    struct TwoEnds {
        owner: CachePadded<u64>,
        thief: CachePadded<u64>,
    }
    crate::assert_fields_separated!(TwoEnds, owner, thief);

    /// The `#[repr(align(64))]` audit from ISSUE 8: every hot shared struct
    /// the runtimes hammer holds its audited alignment. Sizes are asserted
    /// as *bounds* (not exact) so portable layout changes don't break the
    /// test, while an accidental de-padding does.
    #[test]
    fn hot_shared_structs_keep_their_audited_layout() {
        // CachePadded is the padding quantum everything else leans on.
        assert_eq!(align_of::<CachePadded<u64>>(), 128);
        assert_eq!(size_of::<CachePadded<u64>>(), 128);

        // Synchronisation words arriving threads spin on: isolated from
        // allocator/stack neighbours.
        assert!(align_of::<Barrier>() >= 64, "Barrier lost its alignment");
        assert!(
            align_of::<SpinLatch>() >= 64,
            "SpinLatch lost its alignment"
        );
        assert!(
            align_of::<CountLatch>() >= 64,
            "CountLatch lost its alignment"
        );

        // The token handle itself is a pointer; the shared heap node behind
        // it carries the alignment (asserted at its definition site in
        // cancel.rs — here we pin the handle staying pointer-sized).
        assert_eq!(size_of::<CancelToken>(), size_of::<usize>());

        let _ = TwoEnds {
            owner: CachePadded::new(0),
            thief: CachePadded::new(0),
        };
    }

    #[test]
    fn worker_stats_do_not_share_lines_when_padded() {
        let shards: Vec<CachePadded<crate::WorkerStats>> = (0..4)
            .map(|_| CachePadded::new(Default::default()))
            .collect();
        for pair in shards.windows(2) {
            let a = &*pair[0] as *const _ as usize;
            let b = &*pair[1] as *const _ as usize;
            assert!(b.abs_diff(a) >= 128);
        }
    }
}
