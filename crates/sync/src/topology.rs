//! NUMA node topology: sysfs probe, placement helpers, and huge-page hints.
//!
//! Extends [`crate::affinity`] with the *where* of placement. The probe
//! reads `/sys/devices/system/node/node*/cpulist` (no libc, no syscalls —
//! plain file reads), so it works in any unprivileged container; hosts
//! without the sysfs tree (or non-Linux platforms) collapse to a single
//! node, which makes every NUMA-aware policy degrade to the existing
//! behaviour.
//!
//! Two environment knobs, mirroring `TPM_PIN`:
//!
//! * `TPM_NUMA` — `1`/`true`/`on` forces node-aware victim ordering in the
//!   worksteal runtime, `0`/`false`/`off` disables it; unset means "on when
//!   the probed topology actually has multiple nodes".
//! * `TPM_NUMA_NODES` — overrides the probe with an explicit topology spec,
//!   e.g. `0-3,8-11;4-7,12-15` (nodes separated by `;`, each a cpulist).
//!   This is how the 1-core CI container tests multi-node policies.

use std::sync::OnceLock;

/// One probed (or specified) NUMA topology: which CPUs live on which node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaTopology {
    /// CPU ids per node, ascending within each node.
    nodes: Vec<Vec<usize>>,
    /// CPU id → node index (CPUs not listed map to node 0).
    node_of: Vec<usize>,
}

impl NumaTopology {
    /// The machine's topology: `TPM_NUMA_NODES` override first, then the
    /// sysfs probe, then a single-node fallback covering every CPU.
    ///
    /// Probed once per process (the result is immutable for the process
    /// lifetime); repeated calls are a cached clone.
    pub fn probe() -> NumaTopology {
        static PROBE: OnceLock<NumaTopology> = OnceLock::new();
        PROBE
            .get_or_init(|| {
                if let Ok(spec) = std::env::var("TPM_NUMA_NODES") {
                    if let Some(t) = Self::parse_spec(&spec) {
                        return t;
                    }
                }
                Self::probe_sysfs().unwrap_or_else(|| {
                    Self::single_node(
                        std::thread::available_parallelism()
                            .map(|n| n.get())
                            .unwrap_or(1),
                    )
                })
            })
            .clone()
    }

    /// A degenerate one-node topology over `cpus` CPUs.
    pub fn single_node(cpus: usize) -> NumaTopology {
        let cpus = cpus.max(1);
        Self::from_nodes(vec![(0..cpus).collect()])
    }

    /// Parses a `TPM_NUMA_NODES`-style spec: cpulists separated by `;`,
    /// e.g. `0-3,8-11;4-7,12-15`. Returns `None` on any malformed part or
    /// if no node ends up with a CPU.
    pub fn parse_spec(spec: &str) -> Option<NumaTopology> {
        let mut nodes = Vec::new();
        for part in spec.split(';') {
            let cpus = parse_cpulist(part)?;
            if !cpus.is_empty() {
                nodes.push(cpus);
            }
        }
        if nodes.is_empty() {
            None
        } else {
            Some(Self::from_nodes(nodes))
        }
    }

    fn from_nodes(mut nodes: Vec<Vec<usize>>) -> NumaTopology {
        let mut max_cpu = 0;
        for cpus in &mut nodes {
            cpus.sort_unstable();
            cpus.dedup();
            max_cpu = max_cpu.max(cpus.last().copied().unwrap_or(0));
        }
        let mut node_of = vec![0; max_cpu + 1];
        for (node, cpus) in nodes.iter().enumerate() {
            for &cpu in cpus {
                node_of[cpu] = node;
            }
        }
        NumaTopology { nodes, node_of }
    }

    /// Reads `/sys/devices/system/node/`; `None` when the tree is missing
    /// or describes fewer than one populated node.
    fn probe_sysfs() -> Option<NumaTopology> {
        let mut numbered: Vec<(usize, Vec<usize>)> = Vec::new();
        let entries = std::fs::read_dir("/sys/devices/system/node").ok()?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(idx) = name
                .strip_prefix("node")
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            let list = std::fs::read_to_string(entry.path().join("cpulist")).ok()?;
            let cpus = parse_cpulist(list.trim())?;
            if !cpus.is_empty() {
                numbered.push((idx, cpus));
            }
        }
        if numbered.is_empty() {
            return None;
        }
        numbered.sort_unstable_by_key(|(idx, _)| *idx);
        Some(Self::from_nodes(
            numbered.into_iter().map(|(_, cpus)| cpus).collect(),
        ))
    }

    /// Number of nodes (always at least 1).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node a CPU lives on (node 0 for unknown CPUs, so worker-index
    /// arithmetic never panics).
    pub fn node_of_cpu(&self, cpu: usize) -> usize {
        self.node_of.get(cpu).copied().unwrap_or(0)
    }

    /// CPUs of one node (empty for out-of-range nodes).
    pub fn cpus_of(&self, node: usize) -> &[usize] {
        self.nodes.get(node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total CPUs across all nodes.
    pub fn num_cpus(&self) -> usize {
        self.nodes.iter().map(Vec::len).sum()
    }
}

/// Parses a kernel cpulist (`0-17,36-53`) into CPU ids. CPUs above 4095
/// are rejected (a malformed sysfs read must not allocate unbounded maps).
fn parse_cpulist(list: &str) -> Option<Vec<usize>> {
    const MAX_CPU: usize = 4095;
    let mut cpus = Vec::new();
    for part in list.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = part.split_once('-') {
            let lo: usize = lo.trim().parse().ok()?;
            let hi: usize = hi.trim().parse().ok()?;
            if lo > hi || hi > MAX_CPU {
                return None;
            }
            cpus.extend(lo..=hi);
        } else {
            let cpu: usize = part.parse().ok()?;
            if cpu > MAX_CPU {
                return None;
            }
            cpus.push(cpu);
        }
    }
    Some(cpus)
}

/// True when `TPM_NUMA` requests node-aware scheduling, false when it
/// forbids it; unset defers to `default` (callers pass "topology has
/// multiple nodes").
pub fn numa_from_env(default: bool) -> bool {
    match std::env::var("TPM_NUMA").as_deref() {
        Ok("1") | Ok("true") | Ok("on") => true,
        Ok("0") | Ok("false") | Ok("off") => false,
        _ => default,
    }
}

/// Advises the kernel to back `[ptr, ptr + len)` with transparent huge
/// pages (`madvise(MADV_HUGEPAGE)`, issued as a raw syscall — no libc).
///
/// The range is shrunk inward to page boundaries, because `madvise`
/// demands page-aligned addresses; a range smaller than one page is a
/// no-op. Returns whether the kernel accepted the hint (`false` on
/// unsupported platforms, THP-disabled kernels, or empty ranges) — callers
/// treat it as strictly best-effort.
pub fn advise_hugepages(ptr: *const u8, len: usize) -> bool {
    const PAGE: usize = 4096;
    let addr = ptr as usize;
    let start = addr.checked_add(PAGE - 1).map(|a| a & !(PAGE - 1));
    let Some(start) = start else { return false };
    let end = (addr + len) & !(PAGE - 1);
    if end <= start {
        return false;
    }
    madvise_hugepage(start, end - start)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn madvise_hugepage(addr: usize, len: usize) -> bool {
    const SYS_MADVISE: isize = 28;
    const MADV_HUGEPAGE: usize = 14;
    let ret: isize;
    // SAFETY: madvise(MADV_HUGEPAGE) never invalidates memory contents; the
    // worst outcome is EINVAL for an unsupported range. Registers rcx/r11
    // are clobbered per the x86_64 syscall ABI.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MADVISE => ret,
            in("rdi") addr,
            in("rsi") len,
            in("rdx") MADV_HUGEPAGE,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn madvise_hugepage(_addr: usize, _len: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_parsing_handles_ranges_singles_and_garbage() {
        assert_eq!(parse_cpulist("0-3").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpulist("5").unwrap(), vec![5]);
        assert_eq!(
            parse_cpulist("0-2,8,10-11").unwrap(),
            vec![0, 1, 2, 8, 10, 11]
        );
        assert_eq!(parse_cpulist("").unwrap(), Vec::<usize>::new());
        assert!(parse_cpulist("3-1").is_none(), "inverted range");
        assert!(parse_cpulist("a-b").is_none());
        assert!(parse_cpulist("0-99999").is_none(), "absurd range rejected");
    }

    #[test]
    fn spec_parsing_builds_multi_node_topologies() {
        let t = NumaTopology::parse_spec("0-3,8-11;4-7,12-15").unwrap();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_cpus(), 16);
        assert_eq!(t.cpus_of(0), &[0, 1, 2, 3, 8, 9, 10, 11]);
        assert_eq!(t.node_of_cpu(5), 1);
        assert_eq!(t.node_of_cpu(9), 0);
        assert_eq!(t.node_of_cpu(999), 0, "unknown CPUs map to node 0");
        assert!(NumaTopology::parse_spec(";;").is_none());
        assert!(NumaTopology::parse_spec("0-3;oops").is_none());
    }

    #[test]
    fn single_node_fallback_covers_every_cpu() {
        let t = NumaTopology::single_node(4);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.cpus_of(0), &[0, 1, 2, 3]);
        assert_eq!(t.node_of_cpu(3), 0);
        let t = NumaTopology::single_node(0);
        assert_eq!(t.num_cpus(), 1, "clamped to one CPU");
    }

    #[test]
    fn probe_never_panics_and_is_nonempty() {
        let t = NumaTopology::probe();
        assert!(t.num_nodes() >= 1);
        assert!(t.num_cpus() >= 1);
        // Cached: a second probe observes the identical topology.
        assert_eq!(NumaTopology::probe(), t);
    }

    #[test]
    fn numa_env_parse_defaults() {
        // Only exercise the current process state (no env mutation — other
        // tests run concurrently); both defaults must pass through when the
        // variable is unset or unrecognised.
        if std::env::var("TPM_NUMA").is_err() {
            assert!(numa_from_env(true));
            assert!(!numa_from_env(false));
        }
    }

    #[test]
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn hugepage_hint_on_a_real_mapping_does_not_crash() {
        // 4 MiB so at least one aligned 4 KiB page is inside regardless of
        // the allocation's offset; the kernel may still refuse (THP off),
        // so only the no-crash property is asserted.
        let buf = vec![0u8; 4 << 20];
        let _ = advise_hugepages(buf.as_ptr(), buf.len());
        assert!(buf.iter().all(|&b| b == 0), "madvise must not alter data");
    }

    #[test]
    fn hugepage_hint_rejects_tiny_ranges() {
        let buf = [0u8; 64];
        assert!(!advise_hugepages(buf.as_ptr(), buf.len()));
        assert!(!advise_hugepages(std::ptr::null(), 0));
    }
}
