//! The shared idle policy for runtime worker loops.
//!
//! Before this existed, each runtime hand-rolled its own escalation sequence
//! (spin counts, yield thresholds, park timings) in its worker loop; the
//! sequences drifted apart and their constants were tuned independently.
//! [`IdleStrategy`] centralizes the policy: **spin** briefly (cheapest
//! wakeup, for work that arrives within nanoseconds), then **yield** the
//! timeslice (for work that arrives within a scheduler quantum), then tell
//! the caller to **park** (so a long-idle worker consumes no CPU).
//!
//! Parking itself stays in the caller: each runtime has its own wakeup
//! protocol (sleeper flags, condvars, latches), and waiters without a wakeup
//! path simply treat the park signal as another yield.

use std::cell::Cell;

/// Escalating spin → yield → park idle policy for a worker's idle loop.
///
/// Not `Sync` — one instance belongs to one worker thread.
///
/// # Examples
///
/// ```
/// use tpm_sync::IdleStrategy;
///
/// let idle = IdleStrategy::runtime_default();
/// // In a worker loop: found work → reset; found nothing → snooze, and
/// // park (runtime-specific) once snooze says so.
/// if idle.snooze() {
///     // park_timeout / condvar wait / plain yield, per runtime
/// }
/// idle.reset();
/// ```
#[derive(Debug)]
pub struct IdleStrategy {
    spin_rounds: u32,
    yield_rounds: u32,
    rounds: Cell<u32>,
}

impl IdleStrategy {
    /// A policy that spins for `spin_rounds` rounds (exponentially longer
    /// each round), yields for `yield_rounds`, then signals parking.
    pub const fn new(spin_rounds: u32, yield_rounds: u32) -> Self {
        Self {
            spin_rounds,
            yield_rounds,
            rounds: Cell::new(0),
        }
    }

    /// Spin rounds of [`runtime_default`](Self::runtime_default) (exposed so
    /// runtime builders can use the shared policy as their default).
    pub const RUNTIME_DEFAULT_SPIN: u32 = 6;
    /// Yield rounds of [`runtime_default`](Self::runtime_default).
    pub const RUNTIME_DEFAULT_YIELD: u32 = 58;

    /// The policy worker loops share: a short spin phase and a yield phase
    /// totalling 64 idle rounds before parking — the same budget the
    /// runtimes used before the policy was centralized.
    pub const fn runtime_default() -> Self {
        Self::new(Self::RUNTIME_DEFAULT_SPIN, Self::RUNTIME_DEFAULT_YIELD)
    }

    /// Restarts the escalation; call when work was found.
    pub fn reset(&self) {
        self.rounds.set(0);
    }

    /// One idle episode. Spins or yields according to the current phase and
    /// returns `false`; once both phases are exhausted, does nothing and
    /// returns `true` — the caller's cue to park (or to yield, for waiters
    /// with no wakeup path). Stays `true` until [`reset`](Self::reset).
    pub fn snooze(&self) -> bool {
        let r = self.rounds.get();
        if r < self.spin_rounds {
            self.rounds.set(r + 1);
            for _ in 0..(1u32 << r.min(16)) {
                std::hint::spin_loop();
            }
            false
        } else if r < self.spin_rounds + self.yield_rounds {
            self.rounds.set(r + 1);
            std::thread::yield_now();
            false
        } else {
            true
        }
    }

    /// Like [`snooze`](Self::snooze), for waiters that cannot park (no one
    /// would unpark them): the park phase degrades to yielding.
    pub fn snooze_no_park(&self) {
        if self.snooze() {
            std::thread::yield_now();
        }
    }

    /// True once the next [`snooze`](Self::snooze) would signal parking.
    pub fn is_parking(&self) -> bool {
        self.rounds.get() >= self.spin_rounds + self.yield_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_through_phases_and_resets() {
        let idle = IdleStrategy::new(2, 3);
        for round in 0..5 {
            assert!(!idle.snooze(), "round {round} should not park yet");
        }
        assert!(idle.is_parking());
        assert!(idle.snooze(), "phase exhausted: park signal");
        assert!(idle.snooze(), "park signal is sticky");
        idle.reset();
        assert!(!idle.is_parking());
        assert!(!idle.snooze());
    }

    #[test]
    fn no_park_variant_never_signals() {
        let idle = IdleStrategy::new(1, 1);
        for _ in 0..10 {
            idle.snooze_no_park(); // must not hang or panic past the phases
        }
        assert!(idle.is_parking());
    }

    #[test]
    fn runtime_default_parks_after_64_rounds() {
        let idle = IdleStrategy::runtime_default();
        let mut rounds = 0;
        while !idle.snooze() {
            rounds += 1;
        }
        assert_eq!(rounds, 64);
    }
}
