//! A mutex-protected work-stealing deque.
//!
//! The paper attributes `omp task`'s deficit against `cilk_spawn` (Fig. 5,
//! ~20%) to the Intel OpenMP runtime using "lock-based deque for pushing,
//! popping and stealing tasks in the deque, which increases more contention
//! and overhead than the workstealing protocol in Cilk Plus". This module is
//! that lock-based deque: same owner-LIFO/thief-FIFO discipline as
//! [`crate::chase_lev`], but every operation takes a [`crate::SpinLock`].
//! The `ablation_deque` bench measures the two against each other.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::SpinLock;

/// A lock-based deque handle. Cloneable; all clones share the deque.
///
/// Owner operations ([`push_bottom`](Self::push_bottom),
/// [`pop_bottom`](Self::pop_bottom)) and thief operations
/// ([`steal_top`](Self::steal_top)) may be called from any thread — the lock
/// serializes everything, which is precisely the overhead being modeled.
///
/// # Examples
///
/// ```
/// use tpm_sync::LockedDeque;
///
/// let d = LockedDeque::new();
/// d.push_bottom(1);
/// d.push_bottom(2);
/// assert_eq!(d.pop_bottom(), Some(2));   // LIFO for the owner
/// assert_eq!(d.steal_top(), Some(1));    // FIFO for thieves
/// ```
#[derive(Debug)]
pub struct LockedDeque<T> {
    inner: Arc<SpinLock<VecDeque<T>>>,
}

impl<T> Clone for LockedDeque<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> LockedDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(SpinLock::new(VecDeque::new())),
        }
    }

    /// Creates an empty deque with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Arc::new(SpinLock::new(VecDeque::with_capacity(cap))),
        }
    }

    /// Owner push (newest end).
    pub fn push_bottom(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Owner pop (newest end, LIFO — depth-first execution order).
    pub fn pop_bottom(&self) -> Option<T> {
        self.inner.lock().pop_back()
    }

    /// Thief steal (oldest end, FIFO — steals the largest remaining subtree
    /// under recursive decomposition).
    pub fn steal_top(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// FIFO pop from the oldest end by the owner; used by breadth-first task
    /// scheduling.
    pub fn pop_top(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T: Send> Default for LockedDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ends_behave_as_documented() {
        let d = LockedDeque::new();
        for i in 0..4 {
            d.push_bottom(i);
        }
        assert_eq!(d.steal_top(), Some(0));
        assert_eq!(d.pop_bottom(), Some(3));
        assert_eq!(d.pop_top(), Some(1));
        assert_eq!(d.pop_bottom(), Some(2));
        assert!(d.is_empty());
    }

    #[test]
    fn concurrent_producers_and_thieves_conserve_elements() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        const N: usize = 20_000;
        let d = LockedDeque::new();
        let consumed = AtomicUsize::new(0);
        let collected = SpinLock::new(Vec::new());
        std::thread::scope(|s| {
            {
                let d = d.clone();
                s.spawn(move || {
                    for i in 0..N {
                        d.push_bottom(i);
                    }
                });
            }
            for _ in 0..4 {
                let d = d.clone();
                let consumed = &consumed;
                let collected = &collected;
                s.spawn(move || {
                    let mut local = Vec::new();
                    while consumed.load(Ordering::Relaxed) < N {
                        if let Some(v) = d.steal_top() {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            local.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    collected.lock().extend(local);
                });
            }
        });
        let all = collected.into_inner();
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), N);
        assert_eq!(set.len(), N);
    }
}
