//! Hierarchical, lock-free cancellation tokens with deadline support.
//!
//! The paper's Table III singles out error handling as the axis where the
//! threading models diverge most — and none of them has *cancellation*: once
//! a parallel loop is dispatched, it runs to completion. A request-serving
//! system needs the opposite guarantee: a job must stop within one grain of
//! work once its client gives up or its deadline passes. [`CancelToken`] is
//! the primitive the three runtimes check at their chunk boundaries
//! (fork-join worksharing loops, work-stealing `par_for` leaves, rawthreads
//! recursive chunks) to provide that guarantee.
//!
//! Tokens form a tree: [`CancelToken::child`] derives a token that observes
//! its parent's cancellation (and deadline) but can be cancelled — or given
//! a tighter deadline — independently, so one server-wide shutdown token
//! fans out to per-request tokens. All operations are lock-free: a token is
//! an `Arc` chain of atomic flags plus immutable deadlines, so checking one
//! from a hot loop costs a few relaxed loads (plus one clock read when a
//! deadline is set).
//!
//! ```
//! use tpm_sync::{CancelToken, CancelReason};
//!
//! let root = CancelToken::new();
//! let req = root.child();
//! assert!(req.check().is_ok());
//! root.cancel();
//! assert_eq!(req.check(), Err(CancelReason::Cancelled));
//!
//! let timed = CancelToken::with_deadline(std::time::Duration::ZERO);
//! assert_eq!(timed.check(), Err(CancelReason::DeadlineExpired));
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called on the token or an ancestor.
    Cancelled,
    /// The token's (or an ancestor's) deadline passed.
    DeadlineExpired,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Cancelled => f.write_str("cancelled"),
            CancelReason::DeadlineExpired => f.write_str("deadline expired"),
        }
    }
}

/// Aligned to a cache line: every task on the runtime polls `cancelled`
/// on its hot path, so the flag word must not share a line with whatever
/// the allocator places next to this node (false-sharing audit, ISSUE 8).
#[derive(Debug)]
#[repr(align(64))]
struct Inner {
    /// Set once by [`CancelToken::cancel`]; never cleared.
    cancelled: AtomicBool,
    /// Latched once a check observes the deadline in the past, so later
    /// checks skip the clock read.
    expired: AtomicBool,
    /// Immutable after construction.
    deadline: Option<Instant>,
    /// Parent link; checks walk to the root.
    parent: Option<Arc<Inner>>,
}

crate::assert_line_aligned!(Inner);

impl Inner {
    fn new(deadline: Option<Instant>, parent: Option<Arc<Inner>>) -> Arc<Self> {
        Arc::new(Self {
            cancelled: AtomicBool::new(false),
            expired: AtomicBool::new(false),
            deadline,
            parent,
        })
    }

    /// This node's own state (not ancestors'), latching deadline expiry.
    fn own_reason(&self, now: &mut Option<Instant>) -> Option<CancelReason> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Some(CancelReason::Cancelled);
        }
        if self.expired.load(Ordering::Relaxed) {
            return Some(CancelReason::DeadlineExpired);
        }
        if let Some(d) = self.deadline {
            let t = *now.get_or_insert_with(Instant::now);
            if t >= d {
                self.expired.store(true, Ordering::Relaxed);
                return Some(CancelReason::DeadlineExpired);
            }
        }
        None
    }
}

/// A cooperative cancellation token: hierarchical, lock-free, with optional
/// deadlines. Cloning shares the token (both clones observe and trigger the
/// same state); [`child`](CancelToken::child) derives a dependent token.
///
/// # Examples
///
/// ```
/// use tpm_sync::CancelToken;
///
/// let token = CancelToken::new();
/// let worker = token.clone();
/// assert!(!worker.is_cancelled());
/// token.cancel();
/// assert!(worker.is_cancelled());
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A root token with no deadline.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Inner::new(None, None),
        }
    }

    /// A root token that expires `timeout` from now.
    #[must_use]
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + timeout)
    }

    /// A root token that expires at `deadline`.
    #[must_use]
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Self {
            inner: Inner::new(Some(deadline), None),
        }
    }

    /// Derives a child token: it observes this token's cancellation and
    /// deadline, and can additionally be cancelled on its own without
    /// affecting the parent.
    #[must_use]
    pub fn child(&self) -> Self {
        Self {
            inner: Inner::new(None, Some(Arc::clone(&self.inner))),
        }
    }

    /// Derives a child token with its own deadline `timeout` from now (the
    /// effective deadline is the tighter of child and ancestors).
    #[must_use]
    pub fn child_with_deadline(&self, timeout: Duration) -> Self {
        self.child_with_deadline_at(Instant::now() + timeout)
    }

    /// Derives a child token expiring at `deadline`.
    #[must_use]
    pub fn child_with_deadline_at(&self, deadline: Instant) -> Self {
        Self {
            inner: Inner::new(Some(deadline), Some(Arc::clone(&self.inner))),
        }
    }

    /// Requests cancellation: this token and every descendant observe it at
    /// their next check. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Why this token has fired, if it has: walks the ancestor chain
    /// checking flags and deadlines. The nearest tripped node wins, with
    /// explicit cancellation taking precedence over deadline expiry at the
    /// same node.
    #[must_use]
    pub fn reason(&self) -> Option<CancelReason> {
        // One clock read serves every deadline on the chain.
        let mut now = None;
        let mut node = Some(&self.inner);
        while let Some(n) = node {
            if let Some(r) = n.own_reason(&mut now) {
                return Some(r);
            }
            node = n.parent.as_ref();
        }
        None
    }

    /// True once this token or any ancestor has been cancelled or has passed
    /// its deadline.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.reason().is_some()
    }

    /// `Err(reason)` once fired — the form chunk loops use:
    /// `token.check()?`.
    pub fn check(&self) -> Result<(), CancelReason> {
        match self.reason() {
            None => Ok(()),
            Some(r) => Err(r),
        }
    }

    /// The effective deadline: the earliest on the ancestor chain, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        let mut best: Option<Instant> = None;
        let mut node = Some(&self.inner);
        while let Some(n) = node {
            if let Some(d) = n.deadline {
                best = Some(match best {
                    Some(b) => b.min(d),
                    None => d,
                });
            }
            node = n.parent.as_ref();
        }
        best
    }

    /// Time until the effective deadline (`None` when no deadline is set;
    /// `Some(ZERO)` once passed).
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline()
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), Ok(()));
        assert_eq!(t.reason(), None);
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_is_observed_and_idempotent() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::Cancelled));
        assert_eq!(t.check(), Err(CancelReason::Cancelled));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn parent_cancel_reaches_children_not_vice_versa() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        let grandchild = a.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(grandchild.is_cancelled());
        assert!(!root.is_cancelled(), "child cancel must not reach the root");
        assert!(!b.is_cancelled(), "siblings are independent");
        root.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn deadline_expiry_reports_deadline_reason() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExpired));
        // Latched: still expired on re-check.
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExpired));
        // Explicit cancel takes precedence at the same node.
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn future_deadline_is_live_until_it_passes() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn child_inherits_parent_deadline() {
        let parent = CancelToken::with_deadline(Duration::ZERO);
        let child = parent.child();
        assert_eq!(child.reason(), Some(CancelReason::DeadlineExpired));
    }

    #[test]
    fn effective_deadline_is_the_tightest() {
        let far = Instant::now() + Duration::from_secs(1000);
        let near = Instant::now() + Duration::from_secs(1);
        let parent = CancelToken::with_deadline_at(far);
        let child = parent.child_with_deadline_at(near);
        assert_eq!(child.deadline(), Some(near));
        // The parent keeps its own.
        assert_eq!(parent.deadline(), Some(far));
    }

    #[test]
    fn concurrent_checkers_observe_cancel() {
        let t = CancelToken::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    while !t.is_cancelled() {
                        std::hint::spin_loop();
                    }
                });
            }
            t.cancel();
        });
        // All threads exited their loops (scope joined) — no hang.
    }
}
