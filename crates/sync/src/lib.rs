//! # tpm-sync — from-scratch synchronization primitives
//!
//! The substrate layer of the `threadcmp` workspace (a Rust reproduction of
//! *Comparison of Threading Programming Models*, 2017). Every primitive the
//! three threading runtimes need is built here from `std` atomics and thread
//! parking — no external concurrency crates — following the constructions in
//! *Rust Atomics and Locks* (Bos, 2023):
//!
//! | Primitive | Used by | Models |
//! |---|---|---|
//! | [`SpinLock`] | everything | short critical sections |
//! | [`Mutex`] / [`Condvar`] | worker pools | `omp_lock_t`, `std::mutex`, `pthread_mutex` |
//! | [`Barrier`] | `tpm-forkjoin` | `#pragma omp barrier`, `pthread_barrier_t` |
//! | [`SpinLatch`] / [`CountLatch`] | both task runtimes | join counters behind `cilk_sync` / `taskwait` |
//! | [`chase_lev`] deque | `tpm-worksteal` | Cilk Plus's lock-free work-stealing protocol |
//! | [`LockedDeque`] | `tpm-forkjoin` tasking | Intel OpenMP's lock-based task deques |
//! | [`oneshot`] channel | `tpm-rawthreads` | `std::future` |
//! | [`Reducer`] | all three | Cilk reducers / OpenMP `reduction` clause |
//! | [`IdleStrategy`] | both pooled runtimes | worker idle loops (spin → yield → park) |
//! | [`MpscQueue`] | `tpm-actors` | Vyukov MPSC mailboxes (Charm++/ParalleX-style messaging) |
//! | [`PoolConfig`] | all pooled runtimes | shared builder knobs (threads/pin/numa/idle) |
//! | [`CancelToken`] | all three | cooperative cancellation + deadlines (job service) |
//! | [`affinity`] | all three | core pinning (`TPM_PIN`, `OMP_PROC_BIND` analogue) |
//! | [`epoll`] | `tpm-serve` | readiness-driven socket reactor (raw syscall shim) |
//! | [`Backoff`], [`CachePadded`], [`rng`], [`stats`] | all | mechanics |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod affinity;
mod backoff;
mod barrier;
mod cache_padded;
mod cancel;
pub mod chase_lev;
mod condvar;
pub mod epoll;
mod idle;
mod latch;
pub mod layout;
mod locked_deque;
mod mpsc;
mod mutex;
pub mod oneshot;
mod pool;
mod reducer;
mod reentrant;
pub mod rng;
mod rwlock;
mod semaphore;
mod spinlock;
pub mod stats;
pub mod topology;

pub use backoff::Backoff;
pub use barrier::{Barrier, BarrierWaitResult};
pub use cache_padded::CachePadded;
pub use cancel::{CancelReason, CancelToken};
pub use chase_lev::{deque as chase_lev_deque, Steal, Stealer, Worker};
pub use condvar::Condvar;
pub use idle::IdleStrategy;
pub use latch::{CountLatch, SpinLatch};
pub use locked_deque::LockedDeque;
pub use mpsc::MpscQueue;
pub use mutex::{Mutex, MutexGuard};
pub use oneshot::{channel as oneshot_channel, Receiver, RecvError, Sender};
pub use pool::PoolConfig;
pub use reducer::Reducer;
pub use reentrant::{ReentrantGuard, ReentrantLock};
pub use rng::{SplitMix64, XorShift64Star};
pub use rwlock::{ReadGuard, RwLock, WriteGuard};
pub use semaphore::{Permit, Semaphore};
pub use spinlock::{SpinGuard, SpinLock};
pub use stats::{Counter, SchedulerStats, StatsSnapshot, WorkerStats};
