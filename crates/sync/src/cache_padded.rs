//! Cache-line padding to prevent false sharing.
//!
//! Per-worker state (deque ends, reduction views, counters) is written by one
//! thread and read by others; placing two such fields on one cache line makes
//! every write invalidate the peer's line (MESI ping-pong). Padding each field
//! to a full line removes the interference.

/// Pads and aligns `T` to (at least) one cache line.
///
/// 128 bytes covers the common cases: x86-64 prefetches line pairs, and
/// several AArch64 parts use 128-byte lines.
///
/// # Examples
///
/// ```
/// use tpm_sync::CachePadded;
///
/// let counters: Vec<CachePadded<std::sync::atomic::AtomicU64>> =
///     (0..4).map(|_| CachePadded::new(Default::default())).collect();
/// assert!(std::mem::size_of_val(&counters[0]) >= 128);
/// ```
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a padded cell.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the cell, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        Self::new(self.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::align_of::<CachePadded<[u8; 200]>>() >= 128);
    }

    #[test]
    fn size_is_multiple_of_alignment() {
        assert_eq!(std::mem::size_of::<CachePadded<u8>>() % 128, 0);
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 200]>>() % 128, 0);
    }

    #[test]
    fn deref_round_trip() {
        let mut c = CachePadded::new(41u64);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn adjacent_elements_never_share_a_line() {
        let v: Vec<CachePadded<u64>> = (0..8).map(CachePadded::new).collect();
        for w in v.windows(2) {
            let a = &*w[0] as *const u64 as usize;
            let b = &*w[1] as *const u64 as usize;
            assert!(b - a >= 128);
        }
    }
}
