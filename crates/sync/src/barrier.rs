//! A reusable sense-reversing centralized barrier.
//!
//! This is the barrier the paper's Table II compares across models
//! (`#pragma omp barrier`, `pthread_barrier_t`, …). A sense-reversing design
//! needs one atomic counter and one flag, supports unlimited reuse without
//! re-initialization, and — unlike two-counter designs — cannot confuse
//! consecutive phases.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::Backoff;

/// Outcome of a [`Barrier::wait`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWaitResult {
    is_leader: bool,
}

impl BarrierWaitResult {
    /// True for exactly one thread per barrier phase (the last arriver),
    /// mirroring `pthread_barrier_wait`'s `PTHREAD_BARRIER_SERIAL_THREAD`.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }
}

/// A reusable barrier for a fixed-size group of threads.
///
/// Waiting spins with backoff and eventually yields; on the oversubscribed
/// hosts this workspace targets, yielding is essential (a pure spin barrier
/// with more threads than cores livelocks for whole scheduler quanta).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use tpm_sync::Barrier;
///
/// const N: usize = 4;
/// let barrier = Barrier::new(N);
/// let phase1 = AtomicUsize::new(0);
/// std::thread::scope(|s| {
///     for _ in 0..N {
///         s.spawn(|| {
///             phase1.fetch_add(1, Ordering::Relaxed);
///             barrier.wait();
///             // Every thread sees all N phase-1 increments.
///             assert_eq!(phase1.load(Ordering::Relaxed), N);
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct Barrier {
    num_threads: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
}

impl Barrier {
    /// Creates a barrier for `num_threads` participants.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "barrier needs at least one participant");
        Self {
            num_threads,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participating threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Blocks until all `num_threads` threads have called `wait` in this
    /// phase. Fully reusable: the next `wait` starts the next phase.
    pub fn wait(&self) -> BarrierWaitResult {
        // The phase this arrival completes flips the sense to `!current`.
        let target = !self.sense.load(Ordering::Relaxed);
        let prior = self.arrived.fetch_add(1, Ordering::AcqRel);
        if prior + 1 == self.num_threads {
            // Leader: reset the counter *before* releasing the others (they
            // may immediately enter the next phase and increment it).
            self.arrived.store(0, Ordering::Relaxed);
            self.sense.store(target, Ordering::Release);
            BarrierWaitResult { is_leader: true }
        } else {
            let backoff = Backoff::new();
            while self.sense.load(Ordering::Acquire) != target {
                backoff.snooze();
            }
            BarrierWaitResult { is_leader: false }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_threads_panics() {
        let _ = Barrier::new(0);
    }

    #[test]
    fn single_thread_is_always_leader() {
        let b = Barrier::new(1);
        for _ in 0..10 {
            assert!(b.wait().is_leader());
        }
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const N: usize = 4;
        const PHASES: usize = 50;
        let b = Barrier::new(N);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for _ in 0..PHASES {
                        if b.wait().is_leader() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), PHASES);
    }

    #[test]
    fn phases_are_totally_ordered() {
        // Each thread bumps a shared counter before the barrier; after the
        // barrier every thread must observe phase*N increments.
        const N: usize = 3;
        const PHASES: usize = 100;
        let b = Barrier::new(N);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for phase in 1..=PHASES {
                        counter.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        assert!(counter.load(Ordering::Relaxed) >= phase * N);
                        b.wait(); // second barrier so nobody races ahead
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), PHASES * N);
    }
}
