//! A reusable sense-reversing centralized barrier with dynamic membership.
//!
//! This is the barrier the paper's Table II compares across models
//! (`#pragma omp barrier`, `pthread_barrier_t`, …). A sense-reversing design
//! needs one atomic counter and one flag, supports unlimited reuse without
//! re-initialization, and — unlike two-counter designs — cannot confuse
//! consecutive phases.
//!
//! On top of the textbook design this barrier supports [`Barrier::leave`]:
//! a participant that dies (panics out of its region body) can permanently
//! resign so the survivors' phases still complete instead of deadlocking.
//! Membership and the arrival count are packed into one atomic word, so the
//! "did this RMW complete the phase?" decision is race-free: exactly one
//! `wait` or `leave` observes `arrived == members` and finishes the phase.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::Backoff;

/// `state` layout: members in the high half, arrivals in the low half.
const SHIFT: u32 = usize::BITS / 2;
const ARRIVED_MASK: usize = (1 << SHIFT) - 1;
const ONE_MEMBER: usize = 1 << SHIFT;

/// Outcome of a [`Barrier::wait`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWaitResult {
    is_leader: bool,
}

impl BarrierWaitResult {
    /// True for exactly one thread per barrier phase (the last arriver),
    /// mirroring `pthread_barrier_wait`'s `PTHREAD_BARRIER_SERIAL_THREAD`.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }
}

/// A reusable barrier for a group of threads whose membership can shrink.
///
/// Waiting spins with backoff and eventually yields; on the oversubscribed
/// hosts this workspace targets, yielding is essential (a pure spin barrier
/// with more threads than cores livelocks for whole scheduler quanta).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use tpm_sync::Barrier;
///
/// const N: usize = 4;
/// let barrier = Barrier::new(N);
/// let phase1 = AtomicUsize::new(0);
/// std::thread::scope(|s| {
///     for _ in 0..N {
///         s.spawn(|| {
///             phase1.fetch_add(1, Ordering::Relaxed);
///             barrier.wait();
///             // Every thread sees all N phase-1 increments.
///             assert_eq!(phase1.load(Ordering::Relaxed), N);
///         });
///     }
/// });
/// ```
/// Aligned to a cache line so the spun-on words never share a line with
/// unrelated neighbouring data (`state` and `sense` deliberately *do*
/// share: every arrival touches both, so splitting them would double the
/// coherence traffic, not halve it).
#[derive(Debug)]
#[repr(align(64))]
pub struct Barrier {
    /// Packed `(members << SHIFT) | arrived`. A single RMW total order on
    /// this word decides phase completion.
    state: AtomicUsize,
    sense: AtomicBool,
}

crate::assert_line_aligned!(Barrier);

impl Barrier {
    /// Creates a barrier for `num_threads` participants.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0` or `num_threads` does not fit in half a
    /// `usize` (it never does in practice).
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "barrier needs at least one participant");
        assert!(num_threads <= ARRIVED_MASK, "barrier membership too large");
        Self {
            state: AtomicUsize::new(num_threads << SHIFT),
            sense: AtomicBool::new(false),
        }
    }

    /// Current number of participating threads (shrinks on [`Barrier::leave`]).
    pub fn num_threads(&self) -> usize {
        self.state.load(Ordering::Acquire) >> SHIFT
    }

    /// Blocks until all current participants have called `wait` in this
    /// phase (or resigned via [`Barrier::leave`]). Fully reusable: the next
    /// `wait` starts the next phase.
    pub fn wait(&self) -> BarrierWaitResult {
        // The phase this arrival completes flips the sense to `!current`.
        let target = !self.sense.load(Ordering::Relaxed);
        let prior = self.state.fetch_add(1, Ordering::AcqRel);
        let arrived = (prior & ARRIVED_MASK) + 1;
        let members = prior >> SHIFT;
        if arrived == members {
            self.complete_phase(target);
            BarrierWaitResult { is_leader: true }
        } else {
            let backoff = Backoff::new();
            while self.sense.load(Ordering::Acquire) != target {
                backoff.snooze();
            }
            BarrierWaitResult { is_leader: false }
        }
    }

    /// Permanently resigns one participant that will never call `wait`
    /// again (e.g. it panicked out of its region body). If the leaver was
    /// the only straggler of the current phase, it completes the phase on
    /// its way out so the waiters are released; all later phases complete
    /// at the reduced membership.
    ///
    /// Must be called at most once per dead participant, and never from a
    /// thread currently blocked in [`Barrier::wait`].
    pub fn leave(&self) {
        let target = !self.sense.load(Ordering::Relaxed);
        let prior = self.state.fetch_sub(ONE_MEMBER, Ordering::AcqRel);
        let members = (prior >> SHIFT) - 1;
        let arrived = prior & ARRIVED_MASK;
        // `arrived > 0` guards the members==0 case: nobody is waiting, so
        // there is no phase to finish (and no sense flip to misalign).
        if arrived == members && arrived > 0 {
            self.complete_phase(target);
        }
    }

    /// Finishes the current phase: resets the arrival count (preserving the
    /// membership half, which concurrent `leave`s may still change) and then
    /// flips the sense to release the waiters. Exactly one thread per phase
    /// runs this — the one whose RMW made `arrived == members`.
    fn complete_phase(&self, target: bool) {
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            match self.state.compare_exchange_weak(
                cur,
                cur & !ARRIVED_MASK,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.sense.store(target, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_threads_panics() {
        let _ = Barrier::new(0);
    }

    #[test]
    fn single_thread_is_always_leader() {
        let b = Barrier::new(1);
        for _ in 0..10 {
            assert!(b.wait().is_leader());
        }
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const N: usize = 4;
        const PHASES: usize = 50;
        let b = Barrier::new(N);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for _ in 0..PHASES {
                        if b.wait().is_leader() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), PHASES);
    }

    #[test]
    fn phases_are_totally_ordered() {
        // Each thread bumps a shared counter before the barrier; after the
        // barrier every thread must observe phase*N increments.
        const N: usize = 3;
        const PHASES: usize = 100;
        let b = Barrier::new(N);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for phase in 1..=PHASES {
                        counter.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        assert!(counter.load(Ordering::Relaxed) >= phase * N);
                        b.wait(); // second barrier so nobody races ahead
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), PHASES * N);
    }

    #[test]
    fn leave_shrinks_membership() {
        let b = Barrier::new(4);
        assert_eq!(b.num_threads(), 4);
        b.leave();
        b.leave();
        assert_eq!(b.num_threads(), 2);
    }

    #[test]
    fn leave_releases_waiters_mid_phase() {
        // Three members; two wait, the third resigns instead of arriving.
        // Without the leave the two waiters would spin forever.
        const PHASES: usize = 20;
        let b = Barrier::new(3);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..PHASES {
                        b.wait();
                    }
                });
            }
            s.spawn(|| b.leave());
        });
        assert_eq!(b.num_threads(), 2);
    }

    #[test]
    fn leave_before_any_arrival_keeps_future_phases_working() {
        let b = Barrier::new(2);
        b.leave();
        // The surviving solo member completes every phase alone.
        for _ in 0..5 {
            assert!(b.wait().is_leader());
        }
    }

    #[test]
    fn last_member_leaving_is_harmless() {
        let b = Barrier::new(1);
        b.leave();
        assert_eq!(b.num_threads(), 0);
    }

    #[test]
    fn concurrent_leaves_and_waits_never_deadlock() {
        // Stress: half the members repeatedly wait, the other half resign at
        // staggered points. Every phase must still complete.
        const N: usize = 6;
        let b = Barrier::new(N);
        std::thread::scope(|s| {
            for i in 0..N {
                let b = &b;
                s.spawn(move || {
                    if i % 2 == 0 {
                        for _ in 0..50 {
                            b.wait();
                        }
                        b.leave();
                    } else {
                        // Participate in a few phases, then die.
                        for _ in 0..(i * 3) {
                            b.wait();
                        }
                        b.leave();
                    }
                });
            }
        });
        assert_eq!(b.num_threads(), 0);
    }
}
