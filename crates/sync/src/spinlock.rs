//! A test-and-test-and-set spin lock (the Chapter-4 lock of *Rust Atomics and
//! Locks*), used where critical sections are a handful of instructions:
//! the wait queues of [`crate::Mutex`] and [`crate::Condvar`], and the
//! lock-based task deque that models the Intel OpenMP runtime's tasking path.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::Backoff;

/// A spin lock protecting a `T`.
///
/// # Examples
///
/// ```
/// use tpm_sync::SpinLock;
///
/// let lock = SpinLock::new(0u32);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             for _ in 0..1000 {
///                 *lock.lock() += 1;
///             }
///         });
///     }
/// });
/// assert_eq!(lock.into_inner(), 4000);
/// ```
#[derive(Debug, Default)]
pub struct SpinLock<T: ?Sized> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to `T`, so sharing the lock is
// safe whenever sending `T` is.
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}

/// RAII guard: the lock is released on drop.
#[must_use = "dropping the guard immediately unlocks the SpinLock"]
pub struct SpinGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T> SpinLock<T> {
    /// Creates an unlocked spin lock.
    pub const fn new(data: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(data),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquires the lock, spinning (with backoff and eventual yielding) until
    /// it is available.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let backoff = Backoff::new();
        loop {
            // Test-and-test-and-set: spin on a plain load so contended waiting
            // stays in the local cache, attempting the RMW only when the lock
            // looks free.
            if !self.locked.swap(true, Ordering::Acquire) {
                return SpinGuard { lock: self };
            }
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
        }
    }

    /// Attempts to acquire the lock without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`,
    /// which already proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: ?Sized> Deref for SpinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves the lock is held, so access is exclusive.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_increment_under_contention() {
        let lock = SpinLock::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(lock.into_inner(), 80_000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn guard_releases_on_panic() {
        let lock = SpinLock::new(5);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = lock.lock();
            panic!("poisoning is not a thing here");
        }));
        assert!(r.is_err());
        assert_eq!(*lock.lock(), 5); // still acquirable
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut lock = SpinLock::new(1);
        *lock.get_mut() = 2;
        assert_eq!(*lock.lock(), 2);
    }
}
