//! Raw `epoll` and `eventfd` syscall shims for readiness-driven IO.
//!
//! The workspace builds offline with no `libc` (same discipline as
//! [`crate::affinity`]'s `sched_setaffinity`), so the Linux implementation
//! issues the syscalls directly and everywhere else the constructors return
//! [`std::io::ErrorKind::Unsupported`] — callers fall back to a threaded
//! data path. Only the subset the `tpm-serve` reactor needs is bound:
//! `epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd2`, and `read` /
//! `write` / `close` on the eventfd.
//!
//! The API is deliberately level-triggered (the epoll default): the reactor
//! reads and writes until `WouldBlock` on every readiness report, so a
//! partially-drained socket simply reports ready again on the next wait —
//! no edge-tracking state to get wrong.

use std::io;

/// Readiness: the fd has bytes to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept bytes without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Condition: the fd is in an error state (always reported, never armed).
pub const EPOLLERR: u32 = 0x008;
/// Condition: the peer hung up (always reported, never armed).
pub const EPOLLHUP: u32 = 0x010;
/// Readiness: the peer closed its write half (half-close detection).
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness report. Matches the kernel's `struct epoll_event` layout
/// on x86-64 (packed to 12 bytes); accessed through methods because packed
/// fields cannot be borrowed.
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
pub struct Event {
    events: u32,
    data: u64,
}

impl Event {
    /// An empty slot for a [`Epoll::wait`] buffer.
    #[must_use]
    pub fn zeroed() -> Self {
        Self::default()
    }

    /// The readiness bits (`EPOLLIN | …`).
    #[must_use]
    pub fn events(&self) -> u32 {
        self.events
    }

    /// The caller token registered with the fd.
    #[must_use]
    pub fn data(&self) -> u64 {
        self.data
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Event")
            .field("events", &self.events())
            .field("data", &self.data())
            .finish()
    }
}

/// Whether this platform has the epoll shim (Linux x86-64 only).
#[must_use]
pub fn supported() -> bool {
    cfg!(all(target_os = "linux", target_arch = "x86_64"))
}

/// An epoll instance. Closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// Creates an epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Self> {
        let fd = sys::epoll_create1()?;
        Ok(Self { fd })
    }

    /// Registers `fd` for `events`, reporting `token` back on readiness.
    pub fn add(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        sys::epoll_ctl(self.fd, sys::EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the armed event set for an already-registered `fd`.
    pub fn modify(&self, fd: i32, token: u64, events: u32) -> io::Result<()> {
        sys::epoll_ctl(self.fd, sys::EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`. Closing the fd removes it implicitly; an explicit
    /// delete keeps the interest list honest while the fd is still open.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        sys::epoll_ctl(self.fd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (-1 = forever) for readiness; fills
    /// `events` and returns how many entries are valid. Interruption by a
    /// signal returns `ErrorKind::Interrupted` — callers retry.
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        sys::epoll_wait(self.fd, events, timeout_ms)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = sys::close(self.fd);
    }
}

/// A wakeup fd: any thread [`signal`](Self::signal)s it, the reactor's
/// `epoll_wait` reports it readable, and [`drain`](Self::drain) resets it.
/// Created nonblocking so a drain of an unsignalled fd never hangs.
#[derive(Debug)]
pub struct EventFd {
    fd: i32,
}

impl EventFd {
    /// Creates an eventfd (`EFD_CLOEXEC | EFD_NONBLOCK`, counter 0).
    pub fn new() -> io::Result<Self> {
        let fd = sys::eventfd2()?;
        Ok(Self { fd })
    }

    /// The raw fd, for registration with an [`Epoll`].
    #[must_use]
    pub fn raw_fd(&self) -> i32 {
        self.fd
    }

    /// Wakes any waiter: adds 1 to the counter. Safe from any thread; a
    /// full counter (never in practice) is ignored — the fd is already
    /// readable, which is all a wake needs.
    pub fn signal(&self) {
        let one: u64 = 1;
        let _ = sys::write(self.fd, &one.to_ne_bytes());
    }

    /// Resets the counter so the fd stops reporting readable. Returns how
    /// many signals had accumulated (0 when none — nonblocking).
    pub fn drain(&self) -> u64 {
        let mut buf = [0u8; 8];
        match sys::read(self.fd, &mut buf) {
            Ok(8) => u64::from_ne_bytes(buf),
            _ => 0,
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        let _ = sys::close(self.fd);
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Direct x86-64 Linux syscalls. Numbers from `asm/unistd_64.h`;
    //! negative returns are `-errno` per the raw syscall ABI (no libc errno
    //! translation happens here).

    use super::Event;
    use std::io;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const SYS_READ: usize = 0;
    const SYS_WRITE: usize = 1;
    const SYS_CLOSE: usize = 3;
    const SYS_EPOLL_WAIT: usize = 232;
    const SYS_EPOLL_CTL: usize = 233;
    const SYS_EVENTFD2: usize = 290;
    const SYS_EPOLL_CREATE1: usize = 291;

    const EPOLL_CLOEXEC: usize = 0o2000000;
    const EFD_CLOEXEC: usize = 0o2000000;
    const EFD_NONBLOCK: usize = 0o4000;

    /// Issues a 4-argument syscall. SAFETY: the caller guarantees the
    /// argument registers are valid for the specific syscall (pointers live
    /// and sized correctly); rcx/r11 are declared clobbered per the ABI.
    unsafe fn syscall4(nr: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    pub fn epoll_create1() -> io::Result<i32> {
        // SAFETY: no pointer arguments.
        check(unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) }).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let ev = Event {
            events,
            data: token,
        };
        // SAFETY: `ev` lives across the call and matches the kernel layout;
        // the kernel only reads it (and ignores it entirely for DEL).
        check(unsafe {
            syscall4(
                SYS_EPOLL_CTL,
                epfd as usize,
                op as usize,
                fd as usize,
                std::ptr::addr_of!(ev) as usize,
            )
        })
        .map(|_| ())
    }

    pub fn epoll_wait(epfd: i32, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is valid for `len` entries of the kernel layout
        // and the kernel writes at most that many.
        check(unsafe {
            syscall4(
                SYS_EPOLL_WAIT,
                epfd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
            )
        })
    }

    pub fn eventfd2() -> io::Result<i32> {
        // SAFETY: no pointer arguments.
        check(unsafe { syscall4(SYS_EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0) })
            .map(|fd| fd as i32)
    }

    pub fn read(fd: i32, buf: &mut [u8]) -> io::Result<usize> {
        // SAFETY: `buf` is valid for writes of its length.
        check(unsafe {
            syscall4(
                SYS_READ,
                fd as usize,
                buf.as_mut_ptr() as usize,
                buf.len(),
                0,
            )
        })
    }

    pub fn write(fd: i32, buf: &[u8]) -> io::Result<usize> {
        // SAFETY: `buf` is valid for reads of its length.
        check(unsafe { syscall4(SYS_WRITE, fd as usize, buf.as_ptr() as usize, buf.len(), 0) })
    }

    pub fn close(fd: i32) -> io::Result<usize> {
        // SAFETY: no pointer arguments; the caller owns the fd.
        check(unsafe { syscall4(SYS_CLOSE, fd as usize, 0, 0, 0) })
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    //! Stubs for platforms without the shim: constructors fail with
    //! `Unsupported` so callers take the threaded fallback path.

    use super::Event;
    use std::io;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll shim is Linux x86-64 only",
        ))
    }

    pub fn epoll_create1() -> io::Result<i32> {
        unsupported()
    }

    pub fn epoll_ctl(_: i32, _: i32, _: i32, _: u32, _: u64) -> io::Result<()> {
        unsupported()
    }

    pub fn epoll_wait(_: i32, _: &mut [Event], _: i32) -> io::Result<usize> {
        unsupported()
    }

    pub fn eventfd2() -> io::Result<i32> {
        unsupported()
    }

    pub fn read(_: i32, _: &mut [u8]) -> io::Result<usize> {
        unsupported()
    }

    pub fn write(_: i32, _: &[u8]) -> io::Result<usize> {
        unsupported()
    }

    pub fn close(_: i32) -> io::Result<usize> {
        unsupported()
    }
}

#[cfg(all(test, target_os = "linux", target_arch = "x86_64"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn supported_matches_platform() {
        assert!(supported());
    }

    #[test]
    fn eventfd_signal_wakes_epoll_and_drain_resets() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), 7, EPOLLIN).unwrap();

        let mut buf = [Event::zeroed(); 4];
        // Unsignalled: a zero-timeout wait reports nothing.
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0);

        ev.signal();
        ev.signal();
        let n = ep.wait(&mut buf, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(buf[0].data(), 7);
        assert_ne!(buf[0].events() & EPOLLIN, 0);

        assert_eq!(ev.drain(), 2, "two signals accumulated");
        assert_eq!(ev.drain(), 0, "drained fd reads empty, nonblocking");
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0, "no longer readable");
    }

    #[test]
    fn socket_readiness_add_modify_delete() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), 1, EPOLLIN).unwrap();

        let mut buf = [Event::zeroed(); 4];
        assert_eq!(ep.wait(&mut buf, 0).unwrap(), 0, "no pending accept yet");

        let mut client = TcpStream::connect(addr).unwrap();
        let n = ep.wait(&mut buf, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(buf[0].data(), 1, "listener readable: pending accept");

        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        ep.add(server_side.as_raw_fd(), 2, EPOLLIN | EPOLLRDHUP)
            .unwrap();
        client.write_all(b"hi").unwrap();
        let n = ep.wait(&mut buf, 2000).unwrap();
        assert!((1..=2).contains(&n));
        assert!(
            (0..n).any(|i| buf[i].data() == 2 && buf[i].events() & EPOLLIN != 0),
            "connection readable after client write"
        );
        let mut b = [0u8; 8];
        assert_eq!(server_side.read(&mut b).unwrap(), 2);

        // Writable interest via modify: an idle socket is instantly ready.
        ep.modify(server_side.as_raw_fd(), 2, EPOLLOUT).unwrap();
        let n = ep.wait(&mut buf, 2000).unwrap();
        assert!((0..n).any(|i| buf[i].data() == 2 && buf[i].events() & EPOLLOUT != 0));

        ep.delete(server_side.as_raw_fd()).unwrap();
        drop(client);
        // Deleted fd no longer reports, even after peer close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let n = ep.wait(&mut buf, 0).unwrap();
        assert!(
            (0..n).all(|i| buf[i].data() != 2),
            "deleted fd must not report"
        );
    }
}
