//! A condition variable over [`crate::Mutex`], built from a parked-thread
//! queue (the structure of Chapter 9 of *Rust Atomics and Locks*, minus the
//! futex).
//!
//! Used by the runtimes for "worker pool idle" waiting, where spinning would
//! waste the single core the CI host has.

use std::collections::VecDeque;
use std::thread::{self, Thread};

#[cfg(test)]
use crate::Mutex;
use crate::{MutexGuard, SpinLock};

/// A condition variable.
///
/// As with every condition variable, waiters must re-check their predicate in
/// a loop: wakeups may be spurious (both inherently, and because this crate's
/// parking tokens are shared per-thread).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tpm_sync::{Condvar, Mutex};
///
/// let ready = Arc::new((Mutex::new(false), Condvar::new()));
/// let r2 = Arc::clone(&ready);
/// let h = std::thread::spawn(move || {
///     let (m, cv) = &*r2;
///     let mut g = m.lock();
///     while !*g {
///         g = cv.wait(g);
///     }
/// });
/// let (m, cv) = &*ready;
/// *m.lock() = true;
/// cv.notify_all();
/// h.join().unwrap();
/// ```
#[derive(Debug, Default)]
pub struct Condvar {
    waiters: SpinLock<VecDeque<Thread>>,
}

impl Condvar {
    /// Creates a condition variable with no waiters.
    pub const fn new() -> Self {
        Self {
            waiters: SpinLock::new(VecDeque::new()),
        }
    }

    /// Atomically releases `guard` and blocks until notified, then re-acquires
    /// the mutex. May wake spuriously.
    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex();
        // Register before unlocking: a notifier that acquires the mutex after
        // our caller's predicate update will then see us in the queue, so the
        // "check predicate under lock, then wait" idiom cannot lose wakeups.
        self.waiters.lock().push_back(thread::current());
        drop(guard);
        thread::park();
        // Remove ourselves if we woke spuriously and are still queued; a
        // normal notify already removed us. Cheap because queues are short.
        {
            let mut q = self.waiters.lock();
            let me = thread::current().id();
            if let Some(pos) = q.iter().position(|t| t.id() == me) {
                q.remove(pos);
            }
        }
        mutex.lock()
    }

    /// Wakes one waiter, if any.
    pub fn notify_one(&self) {
        let t = self.waiters.lock().pop_front();
        if let Some(t) = t {
            t.unpark();
        }
    }

    /// Wakes all current waiters.
    pub fn notify_all(&self) {
        let drained: Vec<Thread> = self.waiters.lock().drain(..).collect();
        for t in drained {
            t.unpark();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wait_notify_one_round_trip() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while *g == 0 {
                g = cv.wait(g);
            }
            *g
        });
        thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = 42;
        cv.notify_one();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let p = Arc::clone(&pair);
            handles.push(thread::spawn(move || {
                let (m, cv) = &*p;
                let mut g = m.lock();
                while !*g {
                    g = cv.wait(g);
                }
            }));
        }
        thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn predicate_set_before_wait_is_not_lost() {
        // Notify happens while no one waits; waiter must still exit because
        // it checks the predicate before waiting.
        let pair = (Mutex::new(true), Condvar::new());
        let (m, cv) = &pair;
        cv.notify_all();
        let g = m.lock();
        assert!(*g);
        // Would deadlock if we waited here without a predicate check —
        // which is exactly why the predicate loop idiom is mandatory.
        drop(g);
    }
}
