//! A one-shot value channel (Chapter 5 of *Rust Atomics and Locks*):
//! a single producer writes a value once; a single consumer takes it once.
//!
//! This is the future cell backing `tpm-rawthreads`' `std::async` analogue:
//! `async_task` returns the receiving half, the worker thread holds the
//! sending half. The receiver parks while waiting, so a deferred consumer
//! does not burn CPU.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::{self, Thread};

use crate::SpinLock;

const EMPTY: u8 = 0;
const READY: u8 = 1;
const TAKEN: u8 = 2;
/// The sender dropped without sending (e.g. the task panicked).
const CLOSED: u8 = 3;

#[derive(Debug)]
struct Shared<T> {
    state: AtomicU8,
    slot: UnsafeCell<MaybeUninit<T>>,
    /// Receiver thread to unpark when the value (or closure) arrives.
    waiter: SpinLock<Option<Thread>>,
}

// SAFETY: the state machine guarantees exclusive slot access: only the sender
// writes (in EMPTY), only the receiver reads (after observing READY).
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

/// Error returned by [`Receiver::recv`] when the sender dropped without
/// sending a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "one-shot sender dropped without sending")
    }
}

impl std::error::Error for RecvError {}

/// Sending half of a one-shot channel. Consumed by [`send`](Sender::send).
#[derive(Debug)]
pub struct Sender<T> {
    /// `None` only after a successful `send` (so Drop can tell "sent" from
    /// "dropped unsent").
    shared: Option<Arc<Shared<T>>>,
}

/// Receiving half of a one-shot channel.
#[derive(Debug)]
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a connected one-shot channel.
///
/// # Examples
///
/// ```
/// let (tx, rx) = tpm_sync::oneshot::channel();
/// std::thread::spawn(move || tx.send(123));
/// assert_eq!(rx.recv(), Ok(123));
/// ```
pub fn channel<T: Send>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: AtomicU8::new(EMPTY),
        slot: UnsafeCell::new(MaybeUninit::uninit()),
        waiter: SpinLock::new(None),
    });
    (
        Sender {
            shared: Some(Arc::clone(&shared)),
        },
        Receiver { shared },
    )
}

impl<T: Send> Sender<T> {
    /// Delivers `value` and wakes the receiver. Consumes the sender, so a
    /// second send is impossible by construction.
    pub fn send(mut self, value: T) {
        let shared = self.shared.take().expect("sender used twice");
        // SAFETY: state is EMPTY (we are the only sender, and we exist), so
        // the receiver is not reading the slot.
        unsafe { (*shared.slot.get()).write(value) };
        shared.state.store(READY, Ordering::Release);
        let waiter = shared.waiter.lock().take();
        if let Some(t) = waiter {
            t.unpark();
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // Reached only when `send` never ran (send takes the Arc out).
        if let Some(shared) = self.shared.take() {
            shared.state.store(CLOSED, Ordering::Release);
            let waiter = shared.waiter.lock().take();
            if let Some(t) = waiter {
                t.unpark();
            }
        }
    }
}

impl<T: Send> Receiver<T> {
    /// Blocks (parking) until the value arrives; returns `Err(RecvError)` if
    /// the sender dropped without sending.
    pub fn recv(self) -> Result<T, RecvError> {
        loop {
            match self.shared.state.load(Ordering::Acquire) {
                READY => {
                    self.shared.state.store(TAKEN, Ordering::Relaxed);
                    // SAFETY: READY observed with Acquire; sender wrote the
                    // slot before its Release store and will never touch it
                    // again.
                    return Ok(unsafe { (*self.shared.slot.get()).assume_init_read() });
                }
                CLOSED => return Err(RecvError),
                _ => {
                    // Register, then re-check to avoid a missed wake between
                    // the check above and parking.
                    *self.shared.waiter.lock() = Some(thread::current());
                    if self.shared.state.load(Ordering::Acquire) == EMPTY {
                        thread::park();
                    }
                }
            }
        }
    }

    /// Non-blocking poll: `Some(value)` once sent, `None` while pending.
    /// Returns `None` forever after the sender dropped unsent (use
    /// [`recv`](Self::recv) to distinguish).
    pub fn try_recv(&self) -> Option<T> {
        if self.shared.state.load(Ordering::Acquire) == READY {
            self.shared.state.store(TAKEN, Ordering::Relaxed);
            // SAFETY: as in `recv`.
            Some(unsafe { (*self.shared.slot.get()).assume_init_read() })
        } else {
            None
        }
    }

    /// True once a value is ready (or the channel is closed).
    pub fn is_ready(&self) -> bool {
        matches!(
            self.shared.state.load(Ordering::Acquire),
            READY | CLOSED | TAKEN
        )
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // A value that was sent but never received must still be dropped.
        if *self.state.get_mut() == READY {
            // SAFETY: READY means the slot holds an initialized value and no
            // other reference exists (we are in Drop of the only owner).
            unsafe { self.slot.get_mut().assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn send_then_recv() {
        let (tx, rx) = channel();
        tx.send(7u32);
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = channel();
        let h = thread::spawn(move || rx.recv().unwrap());
        thread::sleep(Duration::from_millis(20));
        tx.send("hello");
        assert_eq!(h.join().unwrap(), "hello");
    }

    #[test]
    fn dropped_sender_reports_error() {
        let (tx, rx) = channel::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_polls() {
        let (tx, rx) = channel();
        assert!(rx.try_recv().is_none());
        assert!(!rx.is_ready());
        tx.send(1);
        assert!(rx.is_ready());
        assert_eq!(rx.try_recv(), Some(1));
        assert!(rx.try_recv().is_none()); // already taken
    }

    #[test]
    fn unreceived_value_is_dropped() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (tx, rx) = channel();
        tx.send(D);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn many_channels_in_flight() {
        let handles: Vec<_> = (0..32u64)
            .map(|i| {
                let (tx, rx) = channel();
                let h = thread::spawn(move || tx.send(i * i));
                (h, rx, i)
            })
            .collect();
        for (h, rx, i) in handles {
            assert_eq!(rx.recv(), Ok(i * i));
            h.join().unwrap();
        }
    }
}
