//! One-shot completion latches.
//!
//! Latches are the completion-signalling building block of both runtimes'
//! join points: a `cilk_sync`/`taskwait` is "wait until the latch of every
//! outstanding child is set". Two flavors:
//!
//! * [`SpinLatch`] — a single boolean, set once.
//! * [`CountLatch`] — counts down from `n`; becomes set at zero. Supports
//!   *incrementing* while unset, which is what nested spawns need.
//!
//! Waiting spins with backoff then yields. The runtimes layered above only
//! wait on latches from worker threads that interleave waiting with useful
//! work (steal attempts), so parking lives there, not here.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::Backoff;

/// A boolean latch: starts unset, can be set exactly once, never resets.
///
/// # Examples
///
/// ```
/// use tpm_sync::SpinLatch;
///
/// let latch = SpinLatch::new();
/// std::thread::scope(|s| {
///     s.spawn(|| latch.set());
///     latch.wait();
/// });
/// assert!(latch.probe());
/// ```
/// Aligned to a cache line: one side spins on the word while the other
/// writes it once; a neighbour's writes on the same line would turn the
/// spin into MESI ping-pong (false-sharing audit, ISSUE 8).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct SpinLatch {
    set: AtomicUsize, // usize to share the CountLatch fast path shape
}

crate::assert_line_aligned!(SpinLatch);

impl SpinLatch {
    /// Creates an unset latch.
    pub const fn new() -> Self {
        Self {
            set: AtomicUsize::new(0),
        }
    }

    /// Sets the latch, releasing all current and future waiters.
    ///
    /// All memory writes before `set` happen-before anything after a
    /// successful [`probe`](Self::probe)/[`wait`](Self::wait).
    pub fn set(&self) {
        self.set.store(1, Ordering::Release);
    }

    /// Non-blocking check.
    pub fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire) == 1
    }

    /// Spins (with backoff, then yielding) until set.
    pub fn wait(&self) {
        let backoff = Backoff::new();
        while !self.probe() {
            backoff.snooze();
        }
    }
}

/// A counting latch: set whenever the count is zero.
///
/// Unlike a one-shot latch, the count may be *re-armed* (incremented from
/// zero): task scopes use this — `probe()` then means "no task spawned so
/// far is still outstanding", which is exactly the `taskwait`/`cilk_sync`
/// condition. Waiters must therefore only rely on `probe()` at points where
/// no concurrent increments can occur (e.g. after the spawning phase).
/// Aligned like [`SpinLatch`], and for the same reason: the join counter
/// is decremented by every finishing task while the owner polls it.
#[derive(Debug)]
#[repr(align(64))]
pub struct CountLatch {
    count: AtomicUsize,
}

crate::assert_line_aligned!(CountLatch);

impl CountLatch {
    /// Creates a latch that requires `count` decrements.
    pub const fn new(count: usize) -> Self {
        Self {
            count: AtomicUsize::new(count),
        }
    }

    /// Registers `n` additional required decrements (may re-arm a latch
    /// whose count had reached zero).
    pub fn increment(&self, n: usize) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one completion; the latch becomes set when the count hits zero.
    pub fn decrement(&self) {
        let prev = self.count.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "CountLatch underflow");
    }

    /// Non-blocking check.
    pub fn probe(&self) -> bool {
        if self.count.load(Ordering::Acquire) == 0 {
            return true;
        }
        false
    }

    /// Current outstanding count (approximate under concurrency; exact once
    /// quiescent). Intended for diagnostics and tests.
    pub fn outstanding(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Spins (with backoff, then yielding) until the count reaches zero.
    pub fn wait(&self) {
        let backoff = Backoff::new();
        while !self.probe() {
            backoff.snooze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spin_latch_basic() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
        l.wait(); // returns immediately
    }

    #[test]
    fn spin_latch_publishes_writes() {
        let l = SpinLatch::new();
        let data = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                data.store(99, Ordering::Relaxed);
                l.set();
            });
            l.wait();
            assert_eq!(data.load(Ordering::Relaxed), 99);
        });
    }

    #[test]
    fn count_latch_counts_down() {
        let l = CountLatch::new(3);
        assert!(!l.probe());
        l.decrement();
        l.decrement();
        assert!(!l.probe());
        assert_eq!(l.outstanding(), 1);
        l.decrement();
        assert!(l.probe());
    }

    #[test]
    fn count_latch_concurrent_decrements() {
        const N: usize = 8;
        const PER: usize = 1000;
        let l = CountLatch::new(N * PER);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for _ in 0..PER {
                        l.decrement();
                    }
                });
            }
            l.wait();
        });
        assert!(l.probe());
    }

    #[test]
    fn count_latch_increment_before_zero() {
        let l = CountLatch::new(1);
        l.increment(2);
        l.decrement();
        l.decrement();
        assert!(!l.probe());
        l.decrement();
        assert!(l.probe());
    }

    #[test]
    fn zero_count_latch_starts_set() {
        let l = CountLatch::new(0);
        assert!(l.probe());
        l.wait();
    }
}
