//! Reducer "hyperobjects", modeled on Cilk Plus reducers (Table II's
//! "Reduction" row for Cilk Plus).
//!
//! A reducer gives each worker a private *view* of an accumulator, created
//! lazily from an identity function; views are combined with an associative
//! operation when the parallel phase finishes. Workers therefore update
//! without synchronization, and — because views are merged in worker-index
//! order — the result is deterministic for commutative-associative ops and
//! reproducible for merely associative ones.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::CachePadded;

struct View<T> {
    /// Exclusivity flag: set while a thread is inside `with` for this slot.
    busy: AtomicBool,
    value: UnsafeCell<Option<T>>,
}

/// A per-worker reduction accumulator.
///
/// `slots` is the maximum number of concurrent workers; each worker uses its
/// own slot index. Two simultaneous `with` calls on one slot are a caller
/// bug and panic (rather than racing).
///
/// # Examples
///
/// ```
/// use tpm_sync::Reducer;
///
/// let sum = Reducer::new(4, || 0u64, |a, b| a + b);
/// std::thread::scope(|s| {
///     for w in 0..4 {
///         let sum = &sum;
///         s.spawn(move || {
///             for i in 0..100 {
///                 sum.with(w, |acc| *acc += i);
///             }
///         });
///     }
/// });
/// assert_eq!(sum.finish(), 4 * (0..100).sum::<u64>());
/// ```
pub struct Reducer<T, Id, Op>
where
    Id: Fn() -> T,
    Op: Fn(T, T) -> T,
{
    views: Box<[CachePadded<View<T>>]>,
    identity: Id,
    combine: Op,
}

// SAFETY: each view is confined to one worker at a time (enforced by `busy`);
// `finish` takes `self` by value, so no concurrent access remains.
unsafe impl<T: Send, Id: Fn() -> T + Sync, Op: Fn(T, T) -> T + Sync> Sync for Reducer<T, Id, Op> {}
unsafe impl<T: Send, Id: Fn() -> T + Send, Op: Fn(T, T) -> T + Send> Send for Reducer<T, Id, Op> {}

impl<T, Id, Op> Reducer<T, Id, Op>
where
    Id: Fn() -> T,
    Op: Fn(T, T) -> T,
{
    /// Creates a reducer with `slots` lazily-initialized views.
    pub fn new(slots: usize, identity: Id, combine: Op) -> Self {
        let views = (0..slots.max(1))
            .map(|_| {
                CachePadded::new(View {
                    busy: AtomicBool::new(false),
                    value: UnsafeCell::new(None),
                })
            })
            .collect();
        Self {
            views,
            identity,
            combine,
        }
    }

    /// Number of view slots.
    pub fn slots(&self) -> usize {
        self.views.len()
    }

    /// Runs `f` with exclusive access to worker `slot`'s view, creating the
    /// view from the identity on first use.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or already inside `with` on another
    /// thread (each slot belongs to one worker).
    pub fn with<R>(&self, slot: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let view = &self.views[slot];
        assert!(
            !view.busy.swap(true, Ordering::Acquire),
            "reducer slot {slot} used concurrently"
        );
        // SAFETY: the busy flag grants exclusive access to this slot.
        let result = {
            let value = unsafe { &mut *view.value.get() };
            let acc = value.get_or_insert_with(&self.identity);
            f(acc)
        };
        view.busy.store(false, Ordering::Release);
        result
    }

    /// Combines all views (in slot order, seeded with the identity) and
    /// returns the reduction.
    pub fn finish(self) -> T {
        let mut acc = (self.identity)();
        for view in self.views.into_vec() {
            let view = view.into_inner();
            if let Some(v) = view.value.into_inner() {
                acc = (self.combine)(acc, v);
            }
        }
        acc
    }
}

impl<T, Id, Op> std::fmt::Debug for Reducer<T, Id, Op>
where
    Id: Fn() -> T,
    Op: Fn(T, T) -> T,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reducer")
            .field("slots", &self.views.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_sum() {
        let r = Reducer::new(1, || 0u32, |a, b| a + b);
        for i in 1..=10 {
            r.with(0, |acc| *acc += i);
        }
        assert_eq!(r.finish(), 55);
    }

    #[test]
    fn unused_slots_contribute_identity() {
        let r = Reducer::new(8, || 1u32, |a, b| a * b);
        r.with(3, |acc| *acc *= 7);
        assert_eq!(r.finish(), 7);
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        const W: usize = 8;
        const PER: u64 = 10_000;
        let r = Reducer::new(W, || 0u64, |a, b| a + b);
        std::thread::scope(|s| {
            for w in 0..W {
                let r = &r;
                s.spawn(move || {
                    for i in 0..PER {
                        r.with(w, |acc| *acc += i);
                    }
                });
            }
        });
        assert_eq!(r.finish(), W as u64 * (0..PER).sum::<u64>());
    }

    #[test]
    fn merge_order_is_slot_order() {
        // Use a non-commutative combine (string concat) to observe order.
        let r = Reducer::new(3, String::new, |a, b| a + &b);
        r.with(2, |s| s.push('c'));
        r.with(0, |s| s.push('a'));
        r.with(1, |s| s.push('b'));
        assert_eq!(r.finish(), "abc");
    }

    #[test]
    #[should_panic(expected = "used concurrently")]
    fn reentrant_use_panics() {
        let r = Reducer::new(1, || 0, |a, b| a + b);
        r.with(0, |_| {
            r.with(0, |_| {});
        });
    }

    #[test]
    fn non_copy_values() {
        let r = Reducer::new(2, Vec::new, |mut a, b| {
            a.extend(b);
            a
        });
        r.with(0, |v| v.push(1));
        r.with(1, |v| v.push(2));
        r.with(0, |v| v.push(3));
        assert_eq!(r.finish(), vec![1, 3, 2]);
    }
}
