//! Scheduler statistics: cheap relaxed counters, cache-padded per worker.
//!
//! The paper's analysis is phrased in terms of runtime events — steals,
//! failed steals, tasks created/executed, barrier episodes. Instrumenting the
//! runtimes with these counters lets the benches report *why* one model wins
//! (e.g. Fig. 1: `cilk_for`'s steal count grows with thread count while
//! `omp for`'s chunk dispatch does not).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::CachePadded;

/// A relaxed monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (exact once the system is quiescent).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Per-worker scheduler event counters.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Tasks pushed by this worker.
    pub spawned: Counter,
    /// Tasks this worker executed (own or stolen).
    pub executed: Counter,
    /// Successful steals by this worker.
    pub steals: Counter,
    /// Steal attempts that found nothing (or lost a race).
    pub failed_steals: Counter,
    /// Worksharing loop chunks this worker claimed and ran.
    pub chunks: Counter,
    /// Shared-counter claim transactions (CAS/fetch-add grabs) this worker
    /// made against a dynamic/guided loop counter. With batched grabs one
    /// claim can serve many chunks, so `loop_claims` ≤ `chunks` measures the
    /// contention reduction directly.
    pub loop_claims: Counter,
    /// Barrier episodes this worker waited in.
    pub barrier_waits: Counter,
    /// Total nanoseconds this worker spent waiting at barriers.
    pub barrier_wait_ns: Counter,
    /// Times this worker gave up spinning/yielding and parked (condvar wait
    /// or timed park). A high park rate with steady throughput means the
    /// pool is over-provisioned; a high rate with poor throughput means
    /// work arrives in bursts the idle policy keeps missing.
    pub parks: Counter,
    /// Nanoseconds this worker spent executing work (top-level tasks or
    /// parallel-region bodies — not idle loops). `busy_ns / wall_ns` is the
    /// worker's utilization.
    pub busy_ns: Counter,
}

/// Counters for a whole scheduler instance: one padded [`WorkerStats`] per
/// worker plus totals helpers.
#[derive(Debug)]
pub struct SchedulerStats {
    workers: Box<[CachePadded<WorkerStats>]>,
}

/// Aggregated totals across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Total tasks pushed.
    pub spawned: u64,
    /// Total tasks executed.
    pub executed: u64,
    /// Total successful steals.
    pub steals: u64,
    /// Total failed steal attempts.
    pub failed_steals: u64,
    /// Total worksharing chunks dispatched.
    pub chunks: u64,
    /// Total shared-counter claim transactions for dynamic/guided loops.
    pub loop_claims: u64,
    /// Total barrier episodes waited in (across workers).
    pub barrier_waits: u64,
    /// Total nanoseconds spent waiting at barriers (across workers).
    pub barrier_wait_ns: u64,
    /// Total park episodes (across workers).
    pub parks: u64,
    /// Total nanoseconds spent executing work (across workers).
    pub busy_ns: u64,
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    /// Events between two snapshots of the same scheduler (`later - earlier`).
    /// Saturating, so a racing reset yields zeros instead of wrap-around.
    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            spawned: self.spawned.saturating_sub(rhs.spawned),
            executed: self.executed.saturating_sub(rhs.executed),
            steals: self.steals.saturating_sub(rhs.steals),
            failed_steals: self.failed_steals.saturating_sub(rhs.failed_steals),
            chunks: self.chunks.saturating_sub(rhs.chunks),
            loop_claims: self.loop_claims.saturating_sub(rhs.loop_claims),
            barrier_waits: self.barrier_waits.saturating_sub(rhs.barrier_waits),
            barrier_wait_ns: self.barrier_wait_ns.saturating_sub(rhs.barrier_wait_ns),
            parks: self.parks.saturating_sub(rhs.parks),
            busy_ns: self.busy_ns.saturating_sub(rhs.busy_ns),
        }
    }
}

impl std::ops::Add for StatsSnapshot {
    type Output = StatsSnapshot;

    /// Combines two schedulers' event counts into a cross-runtime total.
    fn add(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            spawned: self.spawned.saturating_add(rhs.spawned),
            executed: self.executed.saturating_add(rhs.executed),
            steals: self.steals.saturating_add(rhs.steals),
            failed_steals: self.failed_steals.saturating_add(rhs.failed_steals),
            chunks: self.chunks.saturating_add(rhs.chunks),
            loop_claims: self.loop_claims.saturating_add(rhs.loop_claims),
            barrier_waits: self.barrier_waits.saturating_add(rhs.barrier_waits),
            barrier_wait_ns: self.barrier_wait_ns.saturating_add(rhs.barrier_wait_ns),
            parks: self.parks.saturating_add(rhs.parks),
            busy_ns: self.busy_ns.saturating_add(rhs.busy_ns),
        }
    }
}

impl SchedulerStats {
    /// Creates stats for `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self {
            workers: (0..num_workers.max(1))
                .map(|_| CachePadded::new(WorkerStats::default()))
                .collect(),
        }
    }

    /// The counters for worker `index`.
    pub fn worker(&self, index: usize) -> &WorkerStats {
        &self.workers[index]
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Sums all workers' counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for w in self.workers.iter() {
            s.spawned += w.spawned.get();
            s.executed += w.executed.get();
            s.steals += w.steals.get();
            s.failed_steals += w.failed_steals.get();
            s.chunks += w.chunks.get();
            s.loop_claims += w.loop_claims.get();
            s.barrier_waits += w.barrier_waits.get();
            s.barrier_wait_ns += w.barrier_wait_ns.get();
            s.parks += w.parks.get();
            s.busy_ns += w.busy_ns.get();
        }
        s
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        for w in self.workers.iter() {
            w.spawned.reset();
            w.executed.reset();
            w.steals.reset();
            w.failed_steals.reset();
            w.chunks.reset();
            w.loop_claims.reset();
            w.barrier_waits.reset();
            w.barrier_wait_ns.reset();
            w.parks.reset();
            w.busy_ns.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ops() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn snapshot_sums_workers() {
        let s = SchedulerStats::new(3);
        s.worker(0).spawned.add(2);
        s.worker(1).spawned.add(3);
        s.worker(2).steals.inc();
        s.worker(0).chunks.add(7);
        s.worker(0).loop_claims.add(2);
        s.worker(1).barrier_waits.inc();
        s.worker(1).barrier_wait_ns.add(1_234);
        let snap = s.snapshot();
        assert_eq!(snap.spawned, 5);
        assert_eq!(snap.steals, 1);
        assert_eq!(snap.chunks, 7);
        assert_eq!(snap.loop_claims, 2);
        assert_eq!(snap.barrier_waits, 1);
        assert_eq!(snap.barrier_wait_ns, 1_234);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn snapshot_subtraction_is_per_field_and_saturating() {
        let s = SchedulerStats::new(2);
        s.worker(0).executed.add(5);
        s.worker(1).parks.add(2);
        let before = s.snapshot();
        s.worker(0).executed.add(3);
        s.worker(0).busy_ns.add(1_000);
        let after = s.snapshot();
        let d = after - before;
        assert_eq!(d.executed, 3);
        assert_eq!(d.parks, 0);
        assert_eq!(d.busy_ns, 1_000);
        // Reversed operands saturate instead of wrapping.
        assert_eq!((before - after).executed, 0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let s = SchedulerStats::new(4);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        s.worker(w).executed.inc();
                    }
                });
            }
        });
        assert_eq!(s.snapshot().executed, 40_000);
    }
}
