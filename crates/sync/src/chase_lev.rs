//! A Chase–Lev work-stealing deque (Chase & Lev, SPAA'05), with the memory
//! orderings of Lê et al., "Correct and Efficient Work-Stealing for Weak
//! Memory Models" (PPoPP'13).
//!
//! This is the data structure behind Cilk Plus (and TBB, and Rayon): each
//! worker owns the *bottom* end of its deque (`push`/`pop`, no atomics RMW on
//! the fast path), while thieves compete for the *top* end with a single CAS.
//! The paper's Fig. 5 explanation — "the workstealing protocol in Cilk Plus
//! [is cheaper] than the lock-based deque in the Intel OpenMP runtime" — is
//! exactly the contrast between this module and [`crate::LockedDeque`].
//!
//! # Design notes
//!
//! * The circular buffer grows geometrically; old buffers are retired to a
//!   list owned by the [`Worker`] and freed only when the worker drops, so a
//!   thief reading through a stale buffer pointer always dereferences live
//!   memory (elements `top..bottom` are copied on growth, and a thief's CAS
//!   on `top` decides ownership regardless of which buffer it read through).
//! * Elements are moved bit-wise; on a lost race nothing is dropped by the
//!   loser. The deque drops leftover elements when the `Worker` drops.

use std::cell::Cell;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Arc;

use crate::CachePadded;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// An element was stolen.
    Success(T),
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

struct Buffer<T> {
    /// Capacity, always a power of two.
    cap: usize,
    storage: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let storage = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::new(Self { cap, storage })
    }

    /// # Safety
    /// `index` slots are accessed under the Chase–Lev protocol's exclusivity
    /// rules; the caller guarantees no conflicting access.
    unsafe fn read(&self, index: isize) -> T {
        let slot = &self.storage[(index as usize) & (self.cap - 1)];
        (*slot.get()).assume_init_read()
    }

    /// # Safety
    /// As [`read`](Self::read): caller guarantees slot exclusivity.
    unsafe fn write(&self, index: isize, value: T) {
        let slot = &self.storage[(index as usize) & (self.cap - 1)];
        (*slot.get()).write(value);
    }
}

struct Inner<T> {
    /// Steal end. Monotonically increasing. Padded: thieves CAS this word
    /// continuously while the owner hammers `bottom` — unpadded, the two
    /// ends share a line and every owner push/pop invalidates every
    /// thief's cached copy (and vice versa), which is pure coherence
    /// traffic with no data dependency behind it.
    top: CachePadded<AtomicIsize>,
    /// Owner end. Owner-private on the fast path; see `top`.
    bottom: CachePadded<AtomicIsize>,
    /// Read by everyone, written only on (rare) growth — padded so a
    /// buffer swap doesn't invalidate the index lines mid-protocol.
    buffer: CachePadded<AtomicPtr<Buffer<T>>>,
}

// Layout pinned by the false-sharing audit: the two deque ends (and the
// buffer pointer) must each own their line pair; a repack fails the build.
crate::assert_cache_isolated!(Inner<()>);
crate::assert_fields_separated!(Inner<()>, top, bottom);
crate::assert_fields_separated!(Inner<()>, bottom, buffer);

// SAFETY: the protocol transfers each element to exactly one consumer.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Any elements still present are dropped here; at this point there is
        // a single owner, so plain accesses are fine.
        let top = *self.top.get_mut();
        let bottom = *self.bottom.get_mut();
        let buf = *self.buffer.get_mut();
        // SAFETY: exclusive access during drop; indices top..bottom hold
        // initialized elements.
        unsafe {
            for i in top..bottom {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
        }
    }
}

/// Owner handle: single-threaded `push`/`pop` at the bottom end.
///
/// Not `Sync`/`Clone` — exactly one thread may own it, which is what makes the
/// fast path possible.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Buffers replaced by growth, kept alive for in-flight thieves. The
    /// boxes are required: thieves hold raw pointers into these buffers, so
    /// their addresses must survive the Vec reallocating.
    #[allow(clippy::vec_box)]
    retired: Cell<Vec<Box<Buffer<T>>>>,
}

// SAFETY: Worker can move between threads (it is the unique owner handle);
// it just cannot be shared.
unsafe impl<T: Send> Send for Worker<T> {}

/// Thief handle: concurrent `steal` from the top end. Cloneable and shareable.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

// SAFETY: steal is safe from any number of threads.
unsafe impl<T: Send> Send for Stealer<T> {}
unsafe impl<T: Send> Sync for Stealer<T> {}

/// Creates a deque, returning the owner and a thief handle.
///
/// # Examples
///
/// ```
/// use tpm_sync::chase_lev;
///
/// let (worker, stealer) = chase_lev::deque::<u32>(8);
/// worker.push(1);
/// worker.push(2);
/// assert_eq!(stealer.steal().success(), Some(1)); // FIFO from the top
/// assert_eq!(worker.pop(), Some(2)); // LIFO at the bottom
/// ```
pub fn deque<T: Send>(initial_capacity: usize) -> (Worker<T>, Stealer<T>) {
    let cap = initial_capacity.next_power_of_two().max(2);
    let inner = Arc::new(Inner {
        top: CachePadded::new(AtomicIsize::new(0)),
        bottom: CachePadded::new(AtomicIsize::new(0)),
        buffer: CachePadded::new(AtomicPtr::new(Box::into_raw(Buffer::alloc(cap)))),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            retired: Cell::new(Vec::new()),
        },
        Stealer { inner },
    )
}

impl<T: Send> Worker<T> {
    /// Pushes onto the bottom (owner) end. Amortized O(1); grows the buffer
    /// when full.
    pub fn push(&self, value: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let buf = inner.buffer.load(Ordering::Relaxed);
        // SAFETY: we are the only pusher; `buf` is the current buffer.
        unsafe {
            let size = b - t;
            let buf = if size as usize >= (*buf).cap {
                self.grow(t, b)
            } else {
                buf
            };
            (*buf).write(b, value);
        }
        // Publish the element before publishing the new bottom.
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Doubles the buffer, copying live elements `t..b`. Returns the new
    /// buffer pointer. The old buffer is retired, not freed.
    ///
    /// # Safety
    /// Must only be called by the owner thread.
    unsafe fn grow(&self, t: isize, b: isize) -> *mut Buffer<T> {
        let inner = &*self.inner;
        let old = inner.buffer.load(Ordering::Relaxed);
        let new = Buffer::alloc((*old).cap * 2);
        let new_ptr = Box::into_raw(new);
        for i in t..b {
            // Bit-copy: ownership of these slots stays with the protocol.
            let v = std::ptr::read((*old).storage[(i as usize) & ((*old).cap - 1)].get());
            (*new_ptr).storage[(i as usize) & ((*new_ptr).cap - 1)]
                .get()
                .write(v);
        }
        inner.buffer.store(new_ptr, Ordering::Release);
        // Retire (not free) the old buffer: in-flight thieves may still read
        // through it. Freed when the Worker drops.
        let mut retired = self.retired.take();
        retired.push(Box::from_raw(old));
        self.retired.set(retired);
        new_ptr
    }

    /// Pops from the bottom (owner) end: LIFO order, the depth-first policy
    /// work-first scheduling relies on.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        // The SeqCst fence orders our bottom-write before our top-read
        // against a thief's top-CAS / bottom-read (the crux of Chase–Lev).
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        let size = b - t;
        if size < 0 {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        // SAFETY: index `b` was published by us and not yet consumed.
        let value = unsafe { (*buf).read(b) };
        if size > 0 {
            return Some(value);
        }
        // Last element: race thieves via CAS on top.
        let won = inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        inner.bottom.store(b + 1, Ordering::Relaxed);
        if won {
            Some(value)
        } else {
            // A thief took it; the bit-copy in `value` must not be dropped.
            std::mem::forget(value);
            None
        }
    }

    /// Number of elements (approximate under concurrent steals).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when no elements are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates another thief handle.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Worker<T> {
    fn drop(&mut self) {
        // Retired buffers die here; remaining elements die in Inner::drop
        // (when the last Stealer also goes away).
        self.retired.take().clear();
    }
}

impl<T: Send> Stealer<T> {
    /// Attempts to steal from the top (FIFO) end.
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        // Order the top-read before the bottom-read (pairs with the owner's
        // fence in `pop`).
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read the element *before* the CAS: after a successful CAS the owner
        // may immediately overwrite the slot.
        let buf = inner.buffer.load(Ordering::Acquire);
        // SAFETY: t < b, so slot t is initialized in `buf` (or in a newer
        // buffer — in which case the copy in `buf` is still intact and
        // identical, because growth copies t..b and `buf` stays alive).
        let value = unsafe { (*buf).read(t) };
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            std::mem::forget(value); // lost the race; not ours to drop
            return Steal::Retry;
        }
        Steal::Success(value)
    }

    /// Steals a *batch* of elements — up to half of what is visible, capped
    /// at `limit` — into `dest`, the thief's own deque. Returns how many
    /// elements were transferred.
    ///
    /// Each element is still claimed by its own CAS on `top`: a single CAS
    /// advancing `top` by `k` would race the owner's CAS-free `pop` fast path
    /// (the owner only CASes on the *last* element, so reserving several
    /// slots at once could double-consume the one the owner takes from the
    /// bottom). What batching buys is fewer steal *episodes* — one victim
    /// probe amortizes over several elements, and the extras are served from
    /// `dest` without touching the victim again.
    ///
    /// Lost races are handled like [`steal`](Self::steal): before anything
    /// was taken a `Retry` is retried here (matching the retry loop callers
    /// wrap around `steal`); once at least one element is in hand the batch
    /// stops instead of contending further.
    pub fn steal_batch_into(&self, dest: &Worker<T>, limit: usize) -> usize {
        let inner = &*self.inner;
        // Snapshot the visible size once to bound the batch at half: taking
        // more would just bounce work back when the victim runs dry.
        let t0 = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b0 = inner.bottom.load(Ordering::Acquire);
        let size = b0 - t0;
        if size <= 0 {
            return 0;
        }
        let want = (((size + 1) / 2) as usize).min(limit);
        let mut stolen = 0;
        while stolen < want {
            match self.steal() {
                Steal::Success(v) => {
                    dest.push(v);
                    stolen += 1;
                }
                Steal::Retry if stolen == 0 => continue,
                Steal::Retry | Steal::Empty => break,
            }
        }
        stolen
    }

    /// Approximate number of elements.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Acquire);
        let t = self.inner.top.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// True when no elements are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("chase_lev::Worker").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("chase_lev::Stealer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let (w, s) = deque(4);
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(s.steal().success(), Some(0));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn growth_preserves_elements() {
        let (w, _s) = deque(2);
        for i in 0..1000 {
            w.push(i);
        }
        let mut got = Vec::new();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        got.reverse();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn no_element_lost_or_duplicated_under_contention() {
        const N: usize = 50_000;
        const THIEVES: usize = 4;
        let (w, s) = deque(8);
        let stolen: Vec<_> = (0..THIEVES)
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        let done = AtomicUsize::new(0);
        let mut popped = Vec::new();
        std::thread::scope(|scope| {
            for tv in &stolen {
                let s = s.clone();
                let done = &done;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => local.push(v),
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) == 1 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    *tv.lock().unwrap() = local;
                });
            }
            // Owner interleaves pushes and pops.
            for i in 0..N {
                w.push(i);
                if i % 3 == 0 {
                    if let Some(v) = w.pop() {
                        popped.push(v);
                    }
                }
            }
            while let Some(v) = w.pop() {
                popped.push(v);
            }
            done.store(1, Ordering::Release);
        });
        let mut all: Vec<usize> = popped;
        for tv in &stolen {
            all.extend(tv.lock().unwrap().iter().copied());
        }
        assert_eq!(all.len(), N, "every pushed element consumed exactly once");
        let set: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(set.len(), N, "no duplicates");
    }

    #[test]
    fn leftover_elements_are_dropped() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (w, s) = deque(4);
            for _ in 0..10 {
                w.push(D);
            }
            drop(s);
            drop(w);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn steal_from_empty() {
        let (w, s) = deque::<u8>(4);
        assert_eq!(s.steal(), Steal::Empty);
        w.push(1);
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn steal_batch_takes_at_most_half() {
        let (victim, s) = deque(16);
        for i in 0..8 {
            victim.push(i);
        }
        let (mine, _ms) = deque(16);
        // Half of 8 is 4; the limit of 64 does not bind.
        assert_eq!(s.steal_batch_into(&mine, 64), 4);
        assert_eq!(mine.len(), 4);
        assert_eq!(victim.len(), 4);
        // Oldest elements were taken, in FIFO order from the top.
        let mut got = Vec::new();
        while let Some(v) = mine.pop() {
            got.push(v);
        }
        got.reverse();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn steal_batch_respects_limit_and_empty() {
        let (victim, s) = deque(16);
        let (mine, _ms) = deque(16);
        assert_eq!(s.steal_batch_into(&mine, 8), 0, "empty victim");
        for i in 0..9 {
            victim.push(i);
        }
        assert_eq!(s.steal_batch_into(&mine, 2), 2, "limit binds");
        assert_eq!(s.steal_batch_into(&mine, 0), 0, "zero limit is a no-op");
        // A single visible element is still stolen ((1 + 1) / 2 == 1).
        let (one, os) = deque::<u32>(4);
        one.push(7);
        assert_eq!(os.steal_batch_into(&mine, 8), 1);
    }

    #[test]
    fn len_tracks_contents() {
        let (w, s) = deque(4);
        assert!(w.is_empty() && s.is_empty());
        w.push(1);
        w.push(2);
        assert_eq!(w.len(), 2);
        assert_eq!(s.len(), 2);
        w.pop();
        assert_eq!(w.len(), 1);
    }
}
