//! Small deterministic PRNGs.
//!
//! Work-stealing victim selection needs a fast thread-local generator with no
//! allocation and no global state; the simulator and workload generators need
//! reproducible streams. Both are served by SplitMix64 (seeding / simulator)
//! and XorShift64* (hot-path victim selection), which are the generators used
//! by most work-stealing runtimes in practice.

/// SplitMix64: a tiny, high-quality 64-bit generator.
///
/// Passes BigCrush when used as a stream; its main role here is seeding
/// [`XorShift64Star`] streams and driving the deterministic simulator.
///
/// # Examples
///
/// ```
/// use tpm_sync::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. All seeds are valid.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Creates a generator positioned as if `n` values had already been
    /// drawn from `new(seed)` — an O(1) jump, possible because the state
    /// advances by a fixed constant per draw.
    ///
    /// This is what lets parallel first-touch initialization reproduce a
    /// sequential stream exactly: each chunk seeks to its start index and
    /// generates only its own elements.
    ///
    /// # Examples
    ///
    /// ```
    /// use tpm_sync::SplitMix64;
    ///
    /// let mut seq = SplitMix64::new(7);
    /// for _ in 0..1000 { seq.next_u64(); }
    /// let mut jumped = SplitMix64::new_at(7, 1000);
    /// assert_eq!(seq.next_u64(), jumped.next_u64());
    /// ```
    pub const fn new_at(seed: u64, n: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(n)),
        }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses the widening-multiply technique (Lemire); bias is negligible for
    /// the bounds used here (worker counts, workload sizes).
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// XorShift64*: three shifts and a multiply — the classic cheap generator for
/// randomized victim selection in work-stealing schedulers.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator; a zero seed is remapped (XorShift requires a
    /// nonzero state).
    pub fn new(seed: u64) -> Self {
        // Run the seed through SplitMix64 so that consecutive small seeds
        // (worker indices) produce uncorrelated streams.
        let mut sm = SplitMix64::new(seed);
        let mut state = sm.next_u64();
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        Self { state }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn next_bounded(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varies() {
        let mut r = SplitMix64::new(1);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
        let mut r2 = SplitMix64::new(1);
        assert_eq!(r2.next_u64(), a);
    }

    #[test]
    fn new_at_matches_sequential_draws() {
        let mut seq = SplitMix64::new(0xDEADBEEF);
        let draws: Vec<u64> = (0..100).map(|_| seq.next_u64()).collect();
        for start in [0usize, 1, 17, 64, 99] {
            let mut jumped = SplitMix64::new_at(0xDEADBEEF, start as u64);
            assert_eq!(jumped.next_u64(), draws[start], "jump to {start}");
        }
    }

    #[test]
    fn bounded_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_bounded(13) < 13);
        }
        let mut x = XorShift64Star::new(7);
        for _ in 0..10_000 {
            assert!(x.next_bounded(5) < 5);
        }
    }

    #[test]
    fn bounded_hits_every_residue() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[r.next_bounded(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_valid_for_xorshift() {
        let mut x = XorShift64Star::new(0);
        assert_ne!(x.next_u64(), 0);
    }

    #[test]
    fn distinct_worker_seeds_give_distinct_streams() {
        let mut a = XorShift64Star::new(0);
        let mut b = XorShift64Star::new(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
