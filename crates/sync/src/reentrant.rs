//! A reentrant (recursive) mutex — OpenMP's `omp_nest_lock_t` from the
//! paper's Table III row on mutual exclusion.
//!
//! The owning thread may re-acquire any number of times; the lock releases
//! when the count returns to zero. Because re-entrancy precludes handing out
//! `&mut` (two live guards on one thread would alias), the guard only derefs
//! to `&T`; use interior mutability inside, exactly like
//! `std::sync::ReentrantLock`.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::Backoff;

/// Owner encoding: 0 = unowned, otherwise a nonzero per-thread id.
fn current_thread_id() -> u64 {
    use std::sync::atomic::AtomicU64 as A;
    static NEXT: A = A::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// A reentrant mutual-exclusion lock (`omp_nest_lock_t`).
///
/// # Examples
///
/// ```
/// use tpm_sync::ReentrantLock;
/// use std::cell::Cell;
///
/// let lock = ReentrantLock::new(Cell::new(0));
/// let g1 = lock.lock();
/// let g2 = lock.lock(); // same thread: re-entry succeeds
/// g2.set(g2.get() + 1);
/// drop(g2);
/// g1.set(g1.get() + 1);
/// drop(g1);
/// assert_eq!(lock.lock().get(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ReentrantLock<T: ?Sized> {
    owner: AtomicU64,
    /// Recursion depth; only touched by the owner.
    count: UnsafeCell<u64>,
    data: UnsafeCell<T>,
}

// SAFETY: exclusion between threads is by `owner`; `count` is owner-only.
// `T: Sync` is NOT needed: all `&T` references live on the single owning
// thread (guards alias only within that thread), so `T: Send` suffices —
// the same bound `std::sync::ReentrantLock` uses.
unsafe impl<T: ?Sized + Send> Sync for ReentrantLock<T> {}
unsafe impl<T: ?Sized + Send> Send for ReentrantLock<T> {}

/// RAII guard; decrements the recursion count on drop.
#[must_use = "dropping the guard releases one level of the lock"]
pub struct ReentrantGuard<'a, T: ?Sized> {
    lock: &'a ReentrantLock<T>,
}

impl<T> ReentrantLock<T> {
    /// Creates an unlocked reentrant lock.
    pub const fn new(data: T) -> Self {
        Self {
            owner: AtomicU64::new(0),
            count: UnsafeCell::new(0),
            data: UnsafeCell::new(data),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> ReentrantLock<T> {
    /// Acquires the lock (re-entering if this thread already owns it).
    pub fn lock(&self) -> ReentrantGuard<'_, T> {
        let me = current_thread_id();
        if self.owner.load(Ordering::Relaxed) == me {
            // Re-entry: we already own it; count is ours to touch.
            // SAFETY: owner-only access.
            unsafe { *self.count.get() += 1 };
            return ReentrantGuard { lock: self };
        }
        let backoff = Backoff::new();
        while self
            .owner
            .compare_exchange_weak(0, me, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff.snooze();
        }
        // SAFETY: just became owner.
        unsafe { *self.count.get() = 1 };
        ReentrantGuard { lock: self }
    }

    /// Attempts the lock without blocking (still succeeds on re-entry).
    pub fn try_lock(&self) -> Option<ReentrantGuard<'_, T>> {
        let me = current_thread_id();
        if self.owner.load(Ordering::Relaxed) == me {
            // SAFETY: owner-only access.
            unsafe { *self.count.get() += 1 };
            return Some(ReentrantGuard { lock: self });
        }
        if self
            .owner
            .compare_exchange(0, me, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: just became owner.
            unsafe { *self.count.get() = 1 };
            Some(ReentrantGuard { lock: self })
        } else {
            None
        }
    }
}

impl<T: ?Sized> std::ops::Deref for ReentrantGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: this thread owns the lock; shared access only (see type
        // docs for why no `&mut`).
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for ReentrantGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: owner-only access.
        unsafe {
            let c = self.lock.count.get();
            *c -= 1;
            if *c == 0 {
                self.lock.owner.store(0, Ordering::Release);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn reentry_on_same_thread() {
        let l = ReentrantLock::new(Cell::new(0));
        let g1 = l.lock();
        let g2 = l.lock();
        let g3 = l.try_lock().expect("reentry via try_lock");
        g3.set(3);
        drop(g3);
        drop(g2);
        assert_eq!(g1.get(), 3);
    }

    #[test]
    fn excludes_other_threads_until_fully_released() {
        let l = std::sync::Arc::new(ReentrantLock::new(()));
        let g1 = l.lock();
        let g2 = l.lock();
        let l2 = std::sync::Arc::clone(&l);
        let h = std::thread::spawn(move || l2.try_lock().is_none());
        assert!(h.join().unwrap(), "other thread must be excluded");
        drop(g2);
        let l3 = std::sync::Arc::clone(&l);
        let h = std::thread::spawn(move || l3.try_lock().is_none());
        assert!(h.join().unwrap(), "still excluded at depth 1");
        drop(g1);
        let l4 = std::sync::Arc::clone(&l);
        let h = std::thread::spawn(move || l4.try_lock().is_some());
        assert!(h.join().unwrap(), "released at depth 0");
    }

    #[test]
    fn contended_counting_via_cell() {
        let l = std::sync::Arc::new(ReentrantLock::new(Cell::new(0u64)));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = std::sync::Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let g = l.lock();
                    let inner = l.lock(); // nested acquire inside the outer
                    inner.set(inner.get() + 1);
                    drop(inner);
                    drop(g);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.lock().get(), 20_000);
    }
}
