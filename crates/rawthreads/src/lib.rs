//! # tpm-rawthreads — the C++11 threading analogue
//!
//! The "no runtime" baseline of the `threadcmp` workspace (after *Comparison
//! of Threading Programming Models*, 2017): what the paper's `std::thread` /
//! `std::async` versions do, this crate does —
//!
//! * [`threads_for`] / [`threads_for_reduce`]: one freshly created OS thread
//!   per chunk, manual static chunking, join at the end. No pool, so every
//!   region pays thread creation (the paper's C++ data-parallel versions).
//! * [`async_task`] with [`Launch::Async`] (thread per task) or
//!   [`Launch::Deferred`] (lazy, on `get`), returning a [`Future`].
//! * [`recursive_for`] / [`recursive_reduce`] / [`fib_with_cutoff`]: the
//!   recursive versions with the paper's `BASE = N / num_threads` cutoff.
//! * [`fib_thread_per_call`] + [`ThreadBudget`]: the *uncut* recursion whose
//!   thread explosion the paper reports as "the system hangs", reproduced as
//!   a deterministic, guarded error.
//!
//! "In thread level parallelism programmers should take care of load
//! balancing" — accordingly, nothing here balances anything.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod future;
mod recursive;
pub mod stats;
mod threads;

pub use future::{async_task, Future, Launch};
pub use recursive::{
    base_cutoff, fib_thread_per_call, fib_with_cutoff, recursive_for, recursive_for_cancel,
    recursive_reduce, recursive_reduce_cancel, ThreadBudget, ThreadExplosion,
};
pub use stats::{stats, RawStats};
pub use threads::{block_chunk, threads_for, threads_for_cancel, threads_for_reduce};
