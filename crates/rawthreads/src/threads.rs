//! `std::thread` analogues: thread-per-region data parallelism with manual
//! chunking.
//!
//! The paper's C++11 data-parallel versions "use a for loop and manual
//! chunking to distribute loop iterations among threads", with the static
//! partition so the three models compare fairly. Crucially there is no pool:
//! every parallel region pays `num_threads` thread creations and joins —
//! the overhead that separates this model from the other two at small work
//! sizes.

use std::ops::Range;

use tpm_sync::{CancelReason, CancelToken};

/// Splits `range` into `num_threads` contiguous blocks (sizes differing by at
/// most one) and runs `body(tid, chunk)` on one freshly spawned OS thread per
/// non-empty block, joining them all before returning.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use tpm_rawthreads::threads_for;
///
/// let sum = AtomicU64::new(0);
/// threads_for(4, 0..1000, |_tid, chunk| {
///     sum.fetch_add(chunk.map(|i| i as u64).sum(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), (0..1000).sum());
/// ```
pub fn threads_for<F>(num_threads: usize, range: Range<usize>, body: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let num_threads = num_threads.max(1);
    // There is no pool (and so no builder) to configure: the env knob is the
    // only way to request pinning for per-region threads.
    let pin = tpm_sync::affinity::pin_from_env();
    let mut spawned = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..num_threads)
            .filter_map(|tid| {
                let chunk = block_chunk(range.clone(), tid, num_threads);
                if chunk.is_empty() {
                    return None;
                }
                tpm_trace::record(tpm_trace::EventKind::ThreadSpawn, tid as u64, 0);
                crate::stats().threads_spawned.inc();
                spawned += 1;
                let body = &body;
                Some(
                    std::thread::Builder::new()
                        .name(format!("tpm-rawthreads-{tid}"))
                        .spawn_scoped(s, move || {
                            if pin {
                                tpm_sync::affinity::pin_current_thread(tid);
                            }
                            // An injected panic unwinds this thread; the
                            // explicit joins below re-raise it with the
                            // original payload on the caller.
                            match tpm_fault::probe(tpm_fault::Site::ChunkClaim) {
                                tpm_fault::Action::Panic => {
                                    tpm_fault::injected_panic(tpm_fault::Site::ChunkClaim)
                                }
                                tpm_fault::Action::TaskDrop => {
                                    tpm_fault::injected_drop(tpm_fault::Site::ChunkClaim)
                                }
                                _ => {}
                            }
                            tpm_trace::record(
                                tpm_trace::EventKind::ChunkDispatch,
                                chunk.len() as u64,
                                0,
                            );
                            crate::stats().chunks.inc();
                            body(tid, chunk)
                        })
                        .expect("failed to spawn region thread"),
                )
            })
            .collect();
        // Join explicitly (rather than letting the scope do it) so the first
        // panicking thread's payload is preserved for the caller — the scope
        // would replace it with its own generic message. Every remaining
        // thread is joined before re-raising.
        let mut first_panic = None;
        for h in handles {
            if let Err(p) = h.join() {
                first_panic.get_or_insert(p);
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
    });
    tpm_trace::record(tpm_trace::EventKind::ThreadJoin, spawned, 0);
    crate::stats().joins.add(spawned);
}

/// [`threads_for`] with cooperative cancellation. Each region thread polls
/// the token once before starting its block and then sub-chunks the block
/// into at most `CANCEL_SUBCHUNKS` pieces, re-polling between pieces — so a
/// cancel or deadline lands within `len/(P·8)` iterations instead of a whole
/// `len/P` block. Spawn/join costs are unchanged: still one thread per block.
///
/// # Examples
///
/// ```
/// use tpm_sync::{CancelReason, CancelToken};
/// use tpm_rawthreads::threads_for_cancel;
///
/// let token = CancelToken::new();
/// token.cancel();
/// let r = threads_for_cancel(4, 0..1_000, &token, |_, _| unreachable!());
/// assert_eq!(r, Err(CancelReason::Cancelled));
/// ```
pub fn threads_for_cancel<F>(
    num_threads: usize,
    range: Range<usize>,
    token: &CancelToken,
    body: F,
) -> Result<(), CancelReason>
where
    F: Fn(usize, Range<usize>) + Sync,
{
    /// How many times each region thread re-polls the token inside its block.
    const CANCEL_SUBCHUNKS: usize = 8;
    threads_for(num_threads, range, |tid, chunk| {
        let piece = chunk.len().div_ceil(CANCEL_SUBCHUNKS).max(1);
        let mut start = chunk.start;
        while start < chunk.end {
            if token.is_cancelled() {
                return;
            }
            let end = (start + piece).min(chunk.end);
            match tpm_fault::probe(tpm_fault::Site::ChunkClaim) {
                tpm_fault::Action::Panic => tpm_fault::injected_panic(tpm_fault::Site::ChunkClaim),
                tpm_fault::Action::TaskDrop => {
                    tpm_fault::injected_drop(tpm_fault::Site::ChunkClaim)
                }
                _ => {}
            }
            body(tid, start..end);
            start = end;
        }
    });
    token.check()
}

/// Like [`threads_for`], but each thread returns a partial value; partials
/// are combined in thread order (manual reduction, as the paper's C++ Sum
/// version does).
pub fn threads_for_reduce<T, F, Op>(
    num_threads: usize,
    range: Range<usize>,
    body: F,
    combine: Op,
    identity: T,
) -> T
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
    Op: Fn(T, T) -> T,
{
    let num_threads = num_threads.max(1);
    let pin = tpm_sync::affinity::pin_from_env();
    let partials = std::thread::scope(|s| {
        let handles: Vec<_> = (0..num_threads)
            .filter_map(|tid| {
                let chunk = block_chunk(range.clone(), tid, num_threads);
                if chunk.is_empty() {
                    return None;
                }
                tpm_trace::record(tpm_trace::EventKind::ThreadSpawn, tid as u64, 0);
                crate::stats().threads_spawned.inc();
                let body = &body;
                Some(
                    std::thread::Builder::new()
                        .name(format!("tpm-rawthreads-{tid}"))
                        .spawn_scoped(s, move || {
                            if pin {
                                tpm_sync::affinity::pin_current_thread(tid);
                            }
                            tpm_trace::record(
                                tpm_trace::EventKind::ChunkDispatch,
                                chunk.len() as u64,
                                0,
                            );
                            crate::stats().chunks.inc();
                            body(tid, chunk)
                        })
                        .expect("failed to spawn region thread"),
                )
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise with the original payload (not a fresh expect
                // message) so callers can classify injected faults.
                let partial = match h.join() {
                    Ok(p) => p,
                    Err(e) => std::panic::resume_unwind(e),
                };
                tpm_trace::record(tpm_trace::EventKind::ThreadJoin, 1, 0);
                crate::stats().joins.inc();
                partial
            })
            .collect::<Vec<T>>()
    });
    partials.into_iter().fold(identity, combine)
}

/// The contiguous block of `range` owned by `tid` of `num_threads`
/// (the manual-chunking formula from the paper's C++ versions).
pub fn block_chunk(range: Range<usize>, tid: usize, num_threads: usize) -> Range<usize> {
    let len = range.len();
    let base = len / num_threads;
    let extra = len % num_threads;
    let (start, size) = if tid < extra {
        (tid * (base + 1), base + 1)
    } else {
        (extra * (base + 1) + (tid - extra) * base, base)
    };
    let s = range.start + start;
    s..s + size
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn block_chunks_tile_the_range() {
        for n in [1, 2, 3, 8] {
            for len in [0, 1, 7, 64, 65] {
                let mut covered = vec![0u32; len];
                for tid in 0..n {
                    for i in block_chunk(0..len, tid, n) {
                        covered[i] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "n={n} len={len}");
            }
        }
    }

    #[test]
    fn threads_for_visits_everything_once() {
        let flags: Vec<AtomicU64> = (0..101).map(|_| AtomicU64::new(0)).collect();
        threads_for(4, 0..101, |_, chunk| {
            for i in chunk {
                flags[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn threads_for_with_more_threads_than_work() {
        let flags: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        threads_for(8, 0..3, |_, chunk| {
            for i in chunk {
                flags[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reduce_combines_partials_in_order() {
        let result = threads_for_reduce(
            3,
            0..9,
            |_tid, chunk| chunk.map(|i| i.to_string()).collect::<String>(),
            |a, b| a + &b,
            String::new(),
        );
        assert_eq!(result, "012345678");
    }

    #[test]
    fn reduce_sums() {
        let total = threads_for_reduce(
            4,
            0..10_000,
            |_, chunk| chunk.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
            0u64,
        );
        assert_eq!(total, (0..10_000u64).sum());
    }

    #[test]
    fn single_thread_degenerates_to_sequential() {
        let sum = AtomicU64::new(0);
        threads_for(1, 0..100, |tid, chunk| {
            assert_eq!(tid, 0);
            assert_eq!(chunk, 0..100);
            sum.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 100);
    }
}
