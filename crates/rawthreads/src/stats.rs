//! Global event counters for the no-runtime model.
//!
//! The other two models own a pool, so their counters live on the scheduler
//! instance. This model has no instance — every region spawns fresh OS
//! threads — so its counters are process-global. The interesting signal is
//! exactly that: *how many threads this model keeps creating* (the overhead
//! the paper charges against the C++11 versions), which a service exporting
//! metrics wants visible next to the pooled runtimes' steal/chunk counts.

use tpm_sync::Counter;

/// Process-global counters for rawthreads activity.
#[derive(Debug, Default)]
pub struct RawStats {
    /// OS threads spawned for parallel regions and async tasks.
    pub threads_spawned: Counter,
    /// Chunks (contiguous blocks) dispatched to region threads.
    pub chunks: Counter,
    /// Threads joined back.
    pub joins: Counter,
}

/// The counters (see [`RawStats`]). Never reset on the live path; consumers
/// that need intervals take deltas.
pub fn stats() -> &'static RawStats {
    static STATS: RawStats = RawStats {
        threads_spawned: Counter::new(),
        chunks: Counter::new(),
        joins: Counter::new(),
    };
    &STATS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_bump_global_counters() {
        let before = stats().threads_spawned.get();
        let chunks_before = stats().chunks.get();
        crate::threads_for(4, 0..100, |_, _| {});
        assert!(stats().threads_spawned.get() >= before + 4);
        assert!(stats().chunks.get() >= chunks_before + 4);
    }
}
