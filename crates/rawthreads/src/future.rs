//! `std::async` / `std::future` analogues.
//!
//! The paper's task-parallel C++11 versions use `std::async`; its two launch
//! policies are reproduced here: [`Launch::Async`] creates a fresh OS thread
//! per task (the cost the paper measures — there is *no* pool and *no*
//! scheduler), and [`Launch::Deferred`] runs the closure lazily on
//! [`Future::get`].

use std::panic::resume_unwind;
use std::thread::JoinHandle;

use tpm_sync::oneshot;

/// Launch policy for [`async_task`] (C++ `std::launch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Launch {
    /// Run on a freshly created OS thread, immediately.
    Async,
    /// Run on the calling thread, at `get()` time.
    Deferred,
}

enum Inner<T> {
    Async {
        rx: oneshot::Receiver<T>,
        handle: JoinHandle<()>,
    },
    Deferred(Box<dyn FnOnce() -> T + Send>),
    /// Transitional state during `get`.
    Taken,
}

/// A one-shot result handle (C++ `std::future`).
///
/// Like `std::future` from `std::async`, dropping an un-gotten `Async`
/// future blocks until the task finishes (the thread is joined).
pub struct Future<T> {
    inner: Inner<T>,
}

impl<T: Send + 'static> Future<T> {
    /// Blocks until the task completes and returns its result.
    /// Re-raises the task's panic on the calling thread.
    pub fn get(mut self) -> T {
        match std::mem::replace(&mut self.inner, Inner::Taken) {
            Inner::Async { rx, handle } => match rx.recv() {
                Ok(v) => {
                    let _ = handle.join();
                    tpm_trace::record(tpm_trace::EventKind::ThreadJoin, 0, 0);
                    v
                }
                Err(_) => {
                    // Task panicked before sending; re-raise its payload.
                    match handle.join() {
                        Err(p) => resume_unwind(p),
                        Ok(()) => unreachable!("sender dropped without panic"),
                    }
                }
            },
            Inner::Deferred(f) => {
                tpm_trace::record(tpm_trace::EventKind::TaskExec, 0, 0);
                f()
            }
            Inner::Taken => unreachable!("future consumed twice"),
        }
    }

    /// True once an `Async` task has produced its value (a `Deferred` task is
    /// never ready before `get`).
    pub fn is_ready(&self) -> bool {
        match &self.inner {
            Inner::Async { rx, .. } => rx.is_ready(),
            Inner::Deferred(_) => false,
            Inner::Taken => true,
        }
    }

    /// Continuation chaining (the data/event-driven pattern the paper's
    /// Table I attributes to `std::future`): produces a future for
    /// `f(self.get())`, launched per `policy`. The dependency is expressed
    /// by the chain, not by shared state.
    ///
    /// # Examples
    ///
    /// ```
    /// use tpm_rawthreads::{async_task, Launch};
    ///
    /// let pipeline = async_task(Launch::Async, || 20)
    ///     .and_then(Launch::Async, |x| x * 2)
    ///     .and_then(Launch::Deferred, |x| x + 2);
    /// assert_eq!(pipeline.get(), 42);
    /// ```
    pub fn and_then<U, F>(self, policy: Launch, f: F) -> Future<U>
    where
        U: Send + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        async_task(policy, move || f(self.get()))
    }
}

impl<T> Drop for Future<T> {
    fn drop(&mut self) {
        if let Inner::Async { handle, .. } = std::mem::replace(&mut self.inner, Inner::Taken) {
            // std::future semantics: the destructor of an async future blocks.
            let _ = handle.join();
        }
    }
}

impl<T> std::fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Future").finish_non_exhaustive()
    }
}

/// Launches `f` per `policy` and returns its future (C++ `std::async`).
///
/// # Examples
///
/// ```
/// use tpm_rawthreads::{async_task, Launch};
///
/// let fut = async_task(Launch::Async, || 6 * 7);
/// assert_eq!(fut.get(), 42);
///
/// let lazy = async_task(Launch::Deferred, || 1 + 1);
/// assert_eq!(lazy.get(), 2); // runs here, on the calling thread
/// ```
pub fn async_task<T, F>(policy: Launch, f: F) -> Future<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    tpm_trace::record(tpm_trace::EventKind::TaskSpawn, 0, 0);
    match policy {
        Launch::Async => {
            let (tx, rx) = oneshot::channel();
            tpm_trace::record(tpm_trace::EventKind::ThreadSpawn, 0, 0);
            crate::stats().threads_spawned.inc();
            let handle = std::thread::Builder::new()
                .name("tpm-async".into())
                .spawn(move || {
                    tpm_trace::record(tpm_trace::EventKind::TaskExec, 0, 0);
                    tx.send(f())
                })
                .expect("failed to spawn async task thread");
            Future {
                inner: Inner::Async { rx, handle },
            }
        }
        Launch::Deferred => Future {
            inner: Inner::Deferred(Box::new(f)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn async_runs_eagerly() {
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let fut = async_task(Launch::Async, move || {
            r2.store(true, Ordering::Release);
            5
        });
        // Eventually ready without get().
        while !fut.is_ready() {
            std::thread::yield_now();
        }
        assert!(ran.load(Ordering::Acquire));
        assert_eq!(fut.get(), 5);
    }

    #[test]
    fn deferred_runs_lazily_on_get() {
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let fut = async_task(Launch::Deferred, move || {
            r2.store(true, Ordering::Release);
            7
        });
        assert!(!fut.is_ready());
        assert!(!ran.load(Ordering::Acquire));
        assert_eq!(fut.get(), 7);
        assert!(ran.load(Ordering::Acquire));
    }

    #[test]
    fn panic_propagates_through_get() {
        let fut = async_task(Launch::Async, || -> u32 { panic!("task panic") });
        let r = catch_unwind(AssertUnwindSafe(|| fut.get()));
        assert!(r.is_err());
    }

    #[test]
    fn drop_joins_the_thread() {
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        {
            let _fut = async_task(Launch::Async, move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                r2.store(true, Ordering::Release);
            });
            // dropped here: must block until the task ran
        }
        assert!(ran.load(Ordering::Acquire));
    }

    #[test]
    fn and_then_chains_and_propagates_panics() {
        let v = async_task(Launch::Async, || 3)
            .and_then(Launch::Async, |x| x + 1)
            .and_then(Launch::Async, |x| x * 10)
            .get();
        assert_eq!(v, 40);
        let fut = async_task(Launch::Async, || 1u32)
            .and_then(Launch::Async, |_| -> u32 { panic!("stage 2") });
        assert!(catch_unwind(AssertUnwindSafe(|| fut.get())).is_err());
    }

    #[test]
    fn deferred_chain_runs_entirely_on_get() {
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ran);
        let fut = async_task(Launch::Deferred, move || {
            r2.store(true, Ordering::Release);
            5
        })
        .and_then(Launch::Deferred, |x| x * 2);
        assert!(!ran.load(Ordering::Acquire));
        assert_eq!(fut.get(), 10);
        assert!(ran.load(Ordering::Acquire));
    }

    #[test]
    fn many_futures() {
        let futs: Vec<_> = (0..32u64)
            .map(|i| async_task(Launch::Async, move || i * i))
            .collect();
        let total: u64 = futs.into_iter().map(Future::get).sum();
        assert_eq!(total, (0..32u64).map(|i| i * i).sum());
    }
}
