//! Recursive task decomposition with raw threads — the paper's "recursive"
//! C++11 versions, including both its findings:
//!
//! * With a cutoff `BASE = N / num_threads`, recursion "helps to control task
//!   creation and to avoid oversubscription of tasks over hardware threads".
//! * Without a cutoff, "when problem size increases to 20 or above, the
//!   system hangs because huge number of threads is created" — reproduced
//!   here as a *guarded* failure via [`ThreadBudget`], which turns the
//!   thread explosion into a deterministic error instead of an OS lockup.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use tpm_sync::{CancelReason, CancelToken};

/// Computes the paper's recursion cutoff: `BASE = ⌈N / num_threads⌉`, at
/// least 1 (ceiling, so chunk count equals thread count).
pub fn base_cutoff(n: usize, num_threads: usize) -> usize {
    n.div_ceil(num_threads.max(1)).max(1)
}

/// Recursive thread-per-split data-parallel loop (the C++ `std::async`
/// recursive pattern): halves the range, runs the left half on a new OS
/// thread and the right half inline, until chunks reach `base`.
pub fn recursive_for<F>(range: Range<usize>, base: usize, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    let base = base.max(1);
    if range.len() <= base {
        body(range);
        return;
    }
    let mid = range.start + range.len() / 2;
    let (left, right) = (range.start..mid, mid..range.end);
    std::thread::scope(|s| {
        let h = s.spawn(move || recursive_for(left, base, body));
        recursive_for(right, base, body);
        h.join().expect("recursive_for worker panicked");
    });
}

/// [`recursive_for`] with cooperative cancellation: the token is polled
/// before every split and every leaf, so once it fires (explicit cancel or
/// deadline) no further leaf starts and each live thread returns within one
/// `base`-sized grain. Already-run leaves are not undone.
///
/// # Examples
///
/// ```
/// use tpm_sync::{CancelReason, CancelToken};
/// use tpm_rawthreads::recursive_for_cancel;
///
/// let token = CancelToken::new();
/// token.cancel();
/// let r = recursive_for_cancel(0..1_000, 10, &token, &|_| unreachable!());
/// assert_eq!(r, Err(CancelReason::Cancelled));
/// ```
pub fn recursive_for_cancel<F>(
    range: Range<usize>,
    base: usize,
    token: &CancelToken,
    body: &F,
) -> Result<(), CancelReason>
where
    F: Fn(Range<usize>) + Sync,
{
    recursive_for_cancel_inner(range, base.max(1), token, body);
    token.check()
}

fn recursive_for_cancel_inner<F>(range: Range<usize>, base: usize, token: &CancelToken, body: &F)
where
    F: Fn(Range<usize>) + Sync,
{
    if token.is_cancelled() {
        return;
    }
    if range.len() <= base {
        // Leaf claim: an injected panic unwinds through the split scopes
        // below (each re-raises the original payload) up to the executor.
        match tpm_fault::probe(tpm_fault::Site::ChunkClaim) {
            tpm_fault::Action::Panic => tpm_fault::injected_panic(tpm_fault::Site::ChunkClaim),
            tpm_fault::Action::TaskDrop => tpm_fault::injected_drop(tpm_fault::Site::ChunkClaim),
            _ => {}
        }
        body(range);
        return;
    }
    let mid = range.start + range.len() / 2;
    let (left, right) = (range.start..mid, mid..range.end);
    std::thread::scope(|s| {
        let h = s.spawn(move || recursive_for_cancel_inner(left, base, token, body));
        recursive_for_cancel_inner(right, base, token, body);
        if let Err(e) = h.join() {
            std::panic::resume_unwind(e);
        }
    });
}

/// Recursive reduction with the same thread-per-split structure.
pub fn recursive_reduce<T, F, Op>(range: Range<usize>, base: usize, body: &F, combine: &Op) -> T
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
    Op: Fn(T, T) -> T + Sync,
{
    let base = base.max(1);
    if range.len() <= base {
        return body(range);
    }
    let mid = range.start + range.len() / 2;
    let (left, right) = (range.start..mid, mid..range.end);
    std::thread::scope(|s| {
        let h = s.spawn(move || recursive_reduce(left, base, body, combine));
        let r = recursive_reduce(right, base, body, combine);
        let l = h.join().expect("recursive_reduce worker panicked");
        combine(l, r)
    })
}

/// [`recursive_reduce`] with cooperative cancellation: subtrees that observe
/// a fired token contribute `identity()` instead of running, so the combine
/// tree (and with it the merge order — bit-reproducible for floats) is
/// unchanged when the token never fires. Callers detect cancellation from
/// the token afterwards; the partial value is then meaningless.
pub fn recursive_reduce_cancel<T, Id, F, Op>(
    range: Range<usize>,
    base: usize,
    token: &CancelToken,
    identity: &Id,
    body: &F,
    combine: &Op,
) -> T
where
    T: Send,
    Id: Fn() -> T + Sync,
    F: Fn(Range<usize>) -> T + Sync,
    Op: Fn(T, T) -> T + Sync,
{
    if token.is_cancelled() {
        return identity();
    }
    let base = base.max(1);
    if range.len() <= base {
        return body(range);
    }
    let mid = range.start + range.len() / 2;
    let (left, right) = (range.start..mid, mid..range.end);
    std::thread::scope(|s| {
        let h =
            s.spawn(move || recursive_reduce_cancel(left, base, token, identity, body, combine));
        let r = recursive_reduce_cancel(right, base, token, identity, body, combine);
        let l = h.join().expect("recursive_reduce worker panicked");
        combine(l, r)
    })
}

/// A live-thread budget used to reproduce the paper's C++ Fibonacci failure
/// mode safely: exceeding the budget reports [`ThreadExplosion`] instead of
/// exhausting the OS.
#[derive(Debug)]
pub struct ThreadBudget {
    live: AtomicUsize,
    peak: AtomicUsize,
    max: usize,
}

/// Error: the computation tried to hold more live threads than budgeted —
/// the condition under which the paper reports "the system hangs".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadExplosion {
    /// The budget that was exceeded.
    pub max: usize,
}

impl std::fmt::Display for ThreadExplosion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread explosion: more than {} simultaneous threads required",
            self.max
        )
    }
}

impl std::error::Error for ThreadExplosion {}

impl ThreadBudget {
    /// Creates a budget of at most `max` simultaneously live threads.
    pub fn new(max: usize) -> Self {
        Self {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            max,
        }
    }

    /// Highest simultaneous live-thread count observed.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    fn acquire(&self) -> Result<(), ThreadExplosion> {
        let n = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(n, Ordering::Relaxed);
        if n > self.max {
            self.live.fetch_sub(1, Ordering::Relaxed);
            Err(ThreadExplosion { max: self.max })
        } else {
            Ok(())
        }
    }

    fn release(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Fibonacci with one new OS thread per left child and *no cutoff* — the
/// paper's naive recursive C++ version. Returns `Err(ThreadExplosion)` when
/// the budget is exceeded (which, for `n ≳ 16` and any realistic budget, it
/// is — this models "the system hangs" finding).
pub fn fib_thread_per_call(n: u64, budget: &ThreadBudget) -> Result<u64, ThreadExplosion> {
    if n < 2 {
        return Ok(n);
    }
    budget.acquire()?;
    let result = std::thread::scope(|s| {
        let h = s.spawn(move || fib_thread_per_call(n - 1, budget));
        let b = fib_thread_per_call(n - 2, budget);
        let a = h.join().expect("fib thread panicked");
        match (a, b) {
            (Ok(a), Ok(b)) => Ok(a + b),
            (Err(e), _) | (_, Err(e)) => Err(e),
        }
    });
    budget.release();
    result
}

/// Fibonacci with a sequential cutoff: threads are only created above
/// `cutoff`, bounding the live-thread count — the paper's workable C++
/// recursive pattern.
pub fn fib_with_cutoff(n: u64, cutoff: u64) -> u64 {
    fn seq(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            seq(n - 1) + seq(n - 2)
        }
    }
    if n < 2 || n <= cutoff {
        return seq(n);
    }
    std::thread::scope(|s| {
        let h = s.spawn(move || fib_with_cutoff(n - 1, cutoff));
        let b = fib_with_cutoff(n - 2, cutoff);
        h.join().expect("fib thread panicked") + b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn base_cutoff_formula() {
        assert_eq!(base_cutoff(100, 4), 25);
        assert_eq!(base_cutoff(3, 8), 1);
        assert_eq!(base_cutoff(0, 4), 1);
        assert_eq!(base_cutoff(100, 0), 100);
    }

    #[test]
    fn recursive_for_covers_range() {
        let flags: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        recursive_for(0..100, 25, &|chunk| {
            for i in chunk {
                flags[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn recursive_reduce_sums() {
        let total = recursive_reduce(
            0..10_000,
            2_500,
            &|chunk| chunk.map(|i| i as u64).sum::<u64>(),
            &|a, b| a + b,
        );
        assert_eq!(total, (0..10_000u64).sum());
    }

    #[test]
    fn fib_with_cutoff_is_correct() {
        assert_eq!(fib_with_cutoff(20, 12), 6765);
        assert_eq!(fib_with_cutoff(10, 0), 55);
        assert_eq!(fib_with_cutoff(1, 5), 1);
    }

    #[test]
    fn naive_fib_explodes_for_moderate_n() {
        // The paper: "when problem size increases to 20 or above, the system
        // hangs". With a budget standing in for the OS limit, the failure is
        // a clean error.
        let budget = ThreadBudget::new(64);
        let r = fib_thread_per_call(18, &budget);
        assert_eq!(r, Err(ThreadExplosion { max: 64 }));
    }

    #[test]
    fn naive_fib_small_n_fits_in_budget() {
        // fib(10)'s call tree has 177 nodes total, so 1000 live threads can
        // never be exceeded regardless of scheduling.
        let budget = ThreadBudget::new(1000);
        assert_eq!(fib_thread_per_call(10, &budget), Ok(55));
        assert!(budget.peak() >= 1);
        assert!(budget.peak() <= 1000);
    }
}
