//! # tpm-alloc — memory subsystem for the threading-model comparison
//!
//! The source paper's taxonomy gives memory abstraction its own axis; this
//! crate supplies the workspace's side of that axis, built from `std` only
//! (the workspace builds offline — no jemalloc, no bumpalo):
//!
//! | Piece | Replaces | Used by |
//! |---|---|---|
//! | [`Arena`] | per-task `Box`/`Vec` churn | per-worker scratch (loadgen encode, job staging) |
//! | [`BufPool`] / [`PooledBuf`] | per-reply `Vec<u8>` allocations | `tpm-serve` reply path (both data paths) |
//! | [`CountingAlloc`] | — | harness binaries, to *measure* allocations/request |
//!
//! Design notes:
//!
//! * [`Arena`] is a chunked bump allocator. Allocation takes `&self` and
//!   hands out `&mut` regions tied to that borrow; [`Arena::reset`] takes
//!   `&mut self`, so the borrow checker statically proves no allocation
//!   outlives its generation — "no stale reads across resets" is a
//!   compile-time fact, re-checked dynamically by the generation counter.
//! * [`BufPool`] is the cross-thread variant: replies are encoded on worker
//!   threads but freed on the reactor/writer thread, so region reuse rides
//!   on a [`PooledBuf`] drop-return instead of a lifetime. Each return is a
//!   bulk reset of that buffer (`clear`, capacity kept), counted in
//!   [`PoolStats::returns`].
//! * [`CountingAlloc`] wraps [`std::alloc::System`] with relaxed atomic
//!   counters so BENCH rows can report measured allocations per request
//!   rather than estimates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arena;
mod counting;
mod pool;

pub use arena::{Arena, ArenaStats};
pub use counting::{snapshot, AllocSnapshot, CountingAlloc};
pub use pool::{BufPool, PoolStats, PooledBuf};
