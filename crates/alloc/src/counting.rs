//! A counting wrapper around the system allocator.
//!
//! Install it in a binary with
//! `#[global_allocator] static A: CountingAlloc = CountingAlloc;` and every
//! heap operation in the process bumps a relaxed atomic — cheap enough to
//! leave on permanently, precise enough to report measured allocations per
//! request in BENCH rows instead of estimates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static REALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// The [`std::alloc::System`] allocator plus relaxed per-operation counters.
pub struct CountingAlloc;

// SAFETY: defers every operation verbatim to `System`; the counter bumps
// are allocation-free (static atomics), so no reentrancy is possible.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time view of the process-wide heap counters.
///
/// Counters are zero unless [`CountingAlloc`] is installed as the global
/// allocator in the running binary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// `alloc` + `alloc_zeroed` calls.
    pub allocations: u64,
    /// `dealloc` calls.
    pub deallocations: u64,
    /// `realloc` calls.
    pub reallocations: u64,
    /// Bytes requested (growth-only for reallocs).
    pub bytes_allocated: u64,
}

impl AllocSnapshot {
    /// The delta from `earlier` to `self` (saturating).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            deallocations: self.deallocations.saturating_sub(earlier.deallocations),
            reallocations: self.reallocations.saturating_sub(earlier.reallocations),
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
        }
    }
}

/// Reads the process-wide heap counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        deallocations: DEALLOCATIONS.load(Ordering::Relaxed),
        reallocations: REALLOCATIONS.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_saturates_and_subtracts() {
        let a = AllocSnapshot {
            allocations: 10,
            deallocations: 4,
            reallocations: 2,
            bytes_allocated: 1000,
        };
        let b = AllocSnapshot {
            allocations: 25,
            deallocations: 9,
            reallocations: 2,
            bytes_allocated: 1600,
        };
        let d = b.since(&a);
        assert_eq!(d.allocations, 15);
        assert_eq!(d.deallocations, 5);
        assert_eq!(d.reallocations, 0);
        assert_eq!(d.bytes_allocated, 600);
        assert_eq!(a.since(&b).allocations, 0, "saturating");
    }
}
