//! A drop-returning `Vec<u8>` pool for the service reply path.
//!
//! Replies are encoded on worker threads and freed on the reactor (or
//! per-connection writer) thread, so the lifetime-based [`Arena`] cannot
//! carry them — region reuse instead rides on [`PooledBuf`]'s `Drop`
//! returning the buffer's capacity to the shared free list. Every return
//! is a bulk reset of that region (`clear()`, capacity kept), which is why
//! the service exposes the return counter as `tpm_arena_resets_total`.
//!
//! [`Arena`]: crate::Arena

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared free list of reply buffers. Cheap by design: one uncontended
/// mutex pop per take, one push per drop — versus a global-allocator
/// round trip (and its lock/arena traffic) per reply without it.
pub struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
    /// Most buffers kept on the free list; extras are dropped on return.
    max_retained: usize,
    /// Buffers whose capacity grew past this are dropped on return rather
    /// than pinning large allocations in the pool forever.
    max_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    discards: AtomicU64,
    recycled_bytes: AtomicU64,
}

/// A point-in-time view of a pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Takes served from the free list.
    pub hits: u64,
    /// Takes that had to allocate a fresh buffer.
    pub misses: u64,
    /// Buffers returned (each return is a bulk reset of that region).
    pub returns: u64,
    /// Returned buffers dropped instead of retained (list full/oversized).
    pub discards: u64,
    /// Total capacity handed back out from the free list, in bytes.
    pub recycled_bytes: u64,
    /// Buffers currently on the free list.
    pub retained: usize,
}

impl BufPool {
    /// A pool retaining at most `max_retained` buffers of at most
    /// `max_capacity` bytes each.
    pub fn new(max_retained: usize, max_capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            free: Mutex::new(Vec::with_capacity(max_retained.min(1024))),
            max_retained,
            max_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            discards: AtomicU64::new(0),
            recycled_bytes: AtomicU64::new(0),
        })
    }

    /// A pool sized for the serve reply path: enough buffers for every
    /// worker plus a window of in-flight completions, capped at 1 MiB each
    /// (a full binary frame; larger replies simply aren't retained).
    pub fn for_serve(workers: usize) -> Arc<Self> {
        Self::new(4 * workers.max(1) + 64, 1 << 20)
    }

    /// An empty buffer, recycled if the free list has one.
    pub fn take(self: &Arc<Self>) -> PooledBuf {
        let recycled = self.free.lock().expect("buffer pool poisoned").pop();
        let buf = match recycled {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.recycled_bytes
                    .fetch_add(buf.capacity() as u64, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        PooledBuf {
            buf,
            pool: Some(Arc::clone(self)),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            discards: self.discards.load(Ordering::Relaxed),
            recycled_bytes: self.recycled_bytes.load(Ordering::Relaxed),
            retained: self.free.lock().expect("buffer pool poisoned").len(),
        }
    }

    fn put(&self, mut buf: Vec<u8>) {
        self.returns.fetch_add(1, Ordering::Relaxed);
        if buf.capacity() == 0 || buf.capacity() > self.max_capacity {
            self.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.clear();
        let mut free = self.free.lock().expect("buffer pool poisoned");
        if free.len() >= self.max_retained {
            drop(free);
            self.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        free.push(buf);
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("stats", &self.stats())
            .finish()
    }
}

/// A `Vec<u8>` that returns its capacity to a [`BufPool`] on drop — or
/// behaves as a plain vector when constructed [`unpooled`](Self::unpooled),
/// so channels can carry one type whether arenas are on or off.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Option<Arc<BufPool>>,
}

impl PooledBuf {
    /// A buffer with no backing pool; drop frees it normally.
    pub fn unpooled() -> Self {
        Self {
            buf: Vec::new(),
            pool: None,
        }
    }

    /// Detaches the bytes from the pool (the pool sees neither a return
    /// nor a discard; the caller owns the vector outright).
    pub fn detach(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.buf)
    }

    /// Whether this buffer returns to a pool on drop.
    pub fn is_pooled(&self) -> bool {
        self.pool.is_some()
    }
}

impl From<Vec<u8>> for PooledBuf {
    fn from(buf: Vec<u8>) -> Self {
        Self { buf, pool: None }
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.buf));
        }
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.buf.len())
            .field("pooled", &self.pool.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_return_take_recycles_capacity() {
        let pool = BufPool::new(8, 1 << 20);
        let mut a = pool.take();
        a.extend_from_slice(&[1; 4096]);
        drop(a);
        let b = pool.take();
        assert!(b.is_empty());
        assert!(b.capacity() >= 4096);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.returns), (1, 1, 1));
        assert!(s.recycled_bytes >= 4096);
    }

    #[test]
    fn retention_caps_are_enforced() {
        let pool = BufPool::new(2, 100);
        let bufs: Vec<_> = (0..4)
            .map(|_| {
                let mut b = pool.take();
                b.extend_from_slice(&[0; 50]);
                b
            })
            .collect();
        drop(bufs);
        let s = pool.stats();
        assert_eq!(s.retained, 2);
        assert_eq!(s.discards, 2);

        let mut big = pool.take(); // pops one retained buffer
        big.extend_from_slice(&[0; 512]); // grows capacity past max_capacity
        drop(big);
        let s = pool.stats();
        assert_eq!(s.retained, 1, "oversized buffer not retained");
        assert_eq!(s.discards, 3);
    }

    #[test]
    fn unpooled_and_detached_buffers_never_touch_the_pool() {
        let pool = BufPool::new(8, 1 << 20);
        let mut u = PooledBuf::unpooled();
        u.extend_from_slice(b"hello");
        assert!(!u.is_pooled());
        drop(u);

        let mut p = pool.take();
        p.extend_from_slice(b"world");
        let v = p.detach();
        assert_eq!(v, b"world");
        let s = pool.stats();
        assert_eq!(s.returns, 0);
        assert_eq!(s.retained, 0);
    }

    #[test]
    fn concurrent_take_return_stress_keeps_counters_consistent() {
        let pool = BufPool::new(32, 1 << 16);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..500usize {
                        let mut b = pool.take();
                        b.extend_from_slice(&[t as u8; 64]);
                        assert_eq!(b.len(), 64);
                        assert!(b.iter().all(|&x| x == t as u8));
                        if i % 7 == 0 {
                            let _ = b.detach();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 8 * 500);
        // Detached buffers never return: 500/7 rounded up, per thread.
        assert_eq!(s.returns, 8 * (500 - 72));
        assert!(s.retained <= 32);
    }
}
