//! A chunked bump ("region") allocator with generation-based bulk reset.
//!
//! One arena belongs to one worker: allocation is `&self` (interior
//! mutability, no atomics), reset is `&mut self`. The asymmetry is the
//! safety argument — every region handed out borrows the arena shared-ly,
//! so the exclusive borrow `reset` needs cannot be taken while any region
//! is still alive. Freeing is O(1) regardless of how many regions were
//! carved: the bump offset rewinds and the chunks are reused in place.

use std::cell::{Cell, UnsafeCell};

/// Default size of each backing chunk (64 KiB: big enough that kernel-job
/// staging rarely chains chunks, small enough to stay resident in L2).
const DEFAULT_CHUNK: usize = 64 << 10;

/// A per-worker bump allocator; see the module docs for the safety model.
///
/// The arena is `Send` but not `Sync` (one owner at a time), matching the
/// per-worker placement the scheduler gives it: chunk memory is first
/// touched by the owning worker, so with `--pin`/`--numa` the backing pages
/// land on that worker's NUMA node.
pub struct Arena {
    chunks: UnsafeCell<Chunks>,
    /// Bytes handed out since construction (monotonic across resets).
    allocated: Cell<u64>,
    /// Bytes handed out in the current generation.
    in_use: Cell<usize>,
    generation: Cell<u64>,
    resets: Cell<u64>,
    chunk_size: usize,
}

struct Chunks {
    /// Zero-initialised backing buffers. Boxes may be *listed* in a
    /// reallocating `Vec`, but the buffers they own never move, so regions
    /// previously handed out stay valid while new chunks are appended.
    list: Vec<Box<[u8]>>,
    /// Index of the chunk currently being bumped; earlier chunks are full.
    current: usize,
    /// Bump offset within `list[current]`.
    offset: usize,
}

/// A point-in-time view of an arena's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bytes handed out since construction, across all generations.
    pub allocated_bytes: u64,
    /// Bytes handed out in the current generation.
    pub in_use_bytes: usize,
    /// Total capacity of all backing chunks.
    pub capacity_bytes: usize,
    /// Number of backing chunks.
    pub chunks: usize,
    /// Bulk resets performed so far.
    pub resets: u64,
    /// Current generation (starts at 0, bumps on every reset).
    pub generation: u64,
}

impl Arena {
    /// An empty arena with the default chunk size.
    pub fn new() -> Self {
        Self::with_chunk_size(DEFAULT_CHUNK)
    }

    /// An empty arena whose backing chunks hold `chunk_size` bytes each
    /// (oversized requests get a dedicated chunk).
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        Self {
            chunks: UnsafeCell::new(Chunks {
                list: Vec::new(),
                current: 0,
                offset: 0,
            }),
            allocated: Cell::new(0),
            in_use: Cell::new(0),
            generation: Cell::new(0),
            resets: Cell::new(0),
            chunk_size: chunk_size.max(64),
        }
    }

    /// Carves a zero-or-stale-initialised byte region out of the current
    /// generation. The region lives until the next [`reset`](Self::reset).
    ///
    /// `&self -> &mut` is the arena contract (same shape as `typed-arena`):
    /// every call bumps past the previous region, so the returned borrows
    /// are pairwise disjoint, and `reset` takes `&mut self` so none of them
    /// can outlive their generation.
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_bytes(&self, len: usize) -> &mut [u8] {
        self.alloc_raw(len, 1)
    }

    /// Copies `src` into the arena and returns the arena-backed copy.
    #[allow(clippy::mut_from_ref)]
    pub fn alloc_slice_copy<T: Copy>(&self, src: &[T]) -> &mut [T] {
        let bytes = std::mem::size_of_val(src);
        let raw = self.alloc_raw(bytes, std::mem::align_of::<T>());
        // SAFETY: `raw` is exclusive, correctly aligned for T (alloc_raw
        // aligns the pointer itself), and exactly size_of_val(src) long.
        // T: Copy means no drop obligations are created by the write.
        unsafe {
            let dst = raw.as_mut_ptr().cast::<T>();
            std::ptr::copy_nonoverlapping(src.as_ptr(), dst, src.len());
            std::slice::from_raw_parts_mut(dst, src.len())
        }
    }

    /// Moves `value` into the arena and returns the arena-backed slot.
    pub fn alloc_copy<T: Copy>(&self, value: T) -> &mut T {
        &mut self.alloc_slice_copy(std::slice::from_ref(&value))[0]
    }

    /// Bulk-frees every region at once by rewinding the bump offset.
    /// Chunks are retained and reused; the generation counter advances so
    /// stats (and debug asserts in callers) can witness the epoch change.
    ///
    /// Taking `&mut self` is the point: this cannot be called while any
    /// region from the current generation is still borrowed.
    pub fn reset(&mut self) {
        let chunks = self.chunks.get_mut();
        chunks.current = 0;
        chunks.offset = 0;
        self.in_use.set(0);
        self.generation.set(self.generation.get() + 1);
        self.resets.set(self.resets.get() + 1);
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.generation.get()
    }

    /// Bytes handed out in the current generation.
    pub fn in_use(&self) -> usize {
        self.in_use.get()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ArenaStats {
        // SAFETY: shared reads of list length/capacity only; no region
        // pointers are derived and no &mut aliases exist concurrently
        // (the arena is !Sync).
        let (capacity, chunks) = unsafe {
            let c = &*self.chunks.get();
            (c.list.iter().map(|b| b.len()).sum(), c.list.len())
        };
        ArenaStats {
            allocated_bytes: self.allocated.get(),
            in_use_bytes: self.in_use.get(),
            capacity_bytes: capacity,
            chunks,
            resets: self.resets.get(),
            generation: self.generation.get(),
        }
    }

    /// The bump: align the *pointer* (chunk bases only guarantee align 1),
    /// advance the offset, fall through to the next chunk — appending a new
    /// one if the list is exhausted.
    #[allow(clippy::mut_from_ref)]
    fn alloc_raw(&self, len: usize, align: usize) -> &mut [u8] {
        debug_assert!(align.is_power_of_two());
        if len == 0 {
            return &mut [];
        }
        // SAFETY: !Sync means this is the only live mutation of the chunk
        // bookkeeping; regions previously handed out are disjoint from both
        // the bookkeeping and the bytes carved here.
        let chunks = unsafe { &mut *self.chunks.get() };
        loop {
            if let Some(chunk) = chunks.list.get_mut(chunks.current) {
                let base = chunk.as_mut_ptr();
                let addr = base as usize + chunks.offset;
                let aligned = addr.wrapping_add(align - 1) & !(align - 1);
                let pad = aligned - addr;
                if chunks.offset + pad + len <= chunk.len() {
                    chunks.offset += pad + len;
                    self.allocated.set(self.allocated.get() + len as u64);
                    self.in_use.set(self.in_use.get() + pad + len);
                    // SAFETY: `aligned..aligned+len` is in-bounds of this
                    // chunk, freshly claimed by the offset bump above, and
                    // never handed out again until `reset` (which requires
                    // the returned borrow to be dead).
                    return unsafe { std::slice::from_raw_parts_mut(aligned as *mut u8, len) };
                }
                // Doesn't fit: seal this chunk and try the next.
                chunks.current += 1;
                chunks.offset = 0;
            } else {
                let size = self.chunk_size.max(len + align);
                chunks.list.push(vec![0u8; size].into_boxed_slice());
                chunks.current = chunks.list.len() - 1;
                chunks.offset = 0;
            }
        }
    }
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Arena")
            .field("generation", &s.generation)
            .field("in_use_bytes", &s.in_use_bytes)
            .field("capacity_bytes", &s.capacity_bytes)
            .field("chunks", &s.chunks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_hold_their_bytes() {
        let arena = Arena::with_chunk_size(256);
        let mut regions = Vec::new();
        for i in 0..64usize {
            let r = arena.alloc_bytes(17 + i % 5);
            r.fill(i as u8);
            regions.push((i as u8, r));
        }
        for (tag, r) in &regions {
            assert!(r.iter().all(|b| b == tag));
        }
    }

    #[test]
    fn reset_reuses_capacity_and_bumps_generation() {
        let mut arena = Arena::with_chunk_size(1024);
        for _ in 0..100 {
            arena.alloc_bytes(100);
        }
        let before = arena.stats();
        assert!(before.chunks >= 1);
        assert_eq!(before.generation, 0);

        arena.reset();
        for _ in 0..100 {
            arena.alloc_bytes(100);
        }
        let after = arena.stats();
        assert_eq!(after.generation, 1);
        assert_eq!(after.resets, 1);
        // Reuse in place: no new chunks appended on the second pass.
        assert_eq!(after.chunks, before.chunks);
        assert_eq!(after.capacity_bytes, before.capacity_bytes);
        assert_eq!(after.allocated_bytes, 2 * before.allocated_bytes);
    }

    #[test]
    fn alignment_is_honoured_for_typed_allocations() {
        let arena = Arena::with_chunk_size(512);
        arena.alloc_bytes(1); // misalign the bump offset
        let xs = arena.alloc_slice_copy(&[1.0f64, 2.0, 3.0]);
        assert_eq!(xs.as_ptr() as usize % std::mem::align_of::<f64>(), 0);
        assert_eq!(xs, &[1.0, 2.0, 3.0]);
        let v = arena.alloc_copy(0xDEAD_BEEFu64);
        assert_eq!((v as *mut u64 as usize) % std::mem::align_of::<u64>(), 0);
        assert_eq!(*v, 0xDEAD_BEEF);
    }

    #[test]
    fn oversized_requests_get_dedicated_chunks() {
        let arena = Arena::with_chunk_size(64);
        let big = arena.alloc_bytes(10_000);
        big.fill(7);
        let small = arena.alloc_bytes(8);
        small.fill(9);
        assert!(big.iter().all(|&b| b == 7));
        assert_eq!(arena.stats().allocated_bytes, 10_008);
    }

    #[test]
    fn zero_length_allocations_cost_nothing() {
        let arena = Arena::new();
        let r = arena.alloc_bytes(0);
        assert!(r.is_empty());
        assert_eq!(arena.stats().capacity_bytes, 0);
        assert_eq!(arena.stats().allocated_bytes, 0);
    }
}
