//! Property tests for the arena: regions within a generation never
//! overlap and never lose their bytes, resets recycle capacity without
//! corrupting newly carved regions, and per-worker arenas are isolated
//! under concurrent use.

use proptest::collection;
use proptest::prelude::*;

use tpm_alloc::Arena;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary allocation sizes against an arbitrary chunk size: every
    /// region keeps a distinct fill pattern until the end of the
    /// generation, i.e. no two live regions alias.
    #[test]
    fn regions_never_alias_within_a_generation(
        chunk in 64usize..2048,
        sizes in collection::vec(0usize..300, 1..80),
    ) {
        let arena = Arena::with_chunk_size(chunk);
        let regions: Vec<(u8, &mut [u8])> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let tag = (i % 251) as u8;
                let r = arena.alloc_bytes(len);
                r.fill(tag);
                (tag, r)
            })
            .collect();
        let expected: u64 = sizes.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(arena.stats().allocated_bytes, expected);
        for (tag, r) in &regions {
            prop_assert!(r.iter().all(|b| b == tag));
        }
    }

    /// Reset-then-reuse: after a bulk reset the arena serves a fresh round
    /// of writes correctly (no bookkeeping corruption from recycled
    /// chunks), an identical allocation pattern replayed after a reset
    /// grows no new capacity, and the generation counter advances every
    /// reset.
    #[test]
    fn reset_recycles_without_corruption(
        chunk in 64usize..1024,
        sizes in collection::vec(1usize..200, 1..40),
        replays in 2usize..6,
    ) {
        let mut arena = Arena::with_chunk_size(chunk);
        let mut first_round_capacity = 0;
        for round in 0..replays {
            prop_assert_eq!(arena.generation(), round as u64);
            let regions: Vec<(u8, &mut [u8])> = sizes
                .iter()
                .enumerate()
                .map(|(i, &len)| {
                    let tag = ((i * 7 + round) % 251) as u8;
                    let r = arena.alloc_bytes(len);
                    r.fill(tag);
                    (tag, r)
                })
                .collect();
            for (tag, r) in &regions {
                prop_assert!(r.iter().all(|b| b == tag));
            }
            let cap = arena.stats().capacity_bytes;
            if round == 0 {
                first_round_capacity = cap;
            } else {
                // The replayed pattern is identical, so recycled chunks
                // must satisfy it in place.
                prop_assert_eq!(cap, first_round_capacity);
            }
            arena.reset();
        }
        prop_assert_eq!(arena.stats().resets, replays as u64);
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(arena.stats().allocated_bytes, total * replays as u64);
    }
}

/// Per-worker isolation: arenas moved onto different threads, each doing
/// interleaved alloc/verify/reset cycles, never observe each other's
/// writes (the type is Send + !Sync, so this is exercising the real
/// deployment shape: one arena per worker).
#[test]
fn per_worker_arenas_are_isolated_under_concurrency() {
    let threads: Vec<_> = (0..8u8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut arena = Arena::with_chunk_size(512);
                for round in 0..200usize {
                    let regions: Vec<&mut [u8]> = (0..16)
                        .map(|i| {
                            let r = arena.alloc_bytes(5 + (round + i) % 90);
                            r.fill(t);
                            r
                        })
                        .collect();
                    for r in &regions {
                        assert!(r.iter().all(|&b| b == t), "cross-worker bleed");
                    }
                    drop(regions);
                    arena.reset();
                }
                assert_eq!(arena.stats().resets, 200);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}
