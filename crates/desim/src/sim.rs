//! The event-driven service simulator.
//!
//! One [`Sim`] is one run: simulated clients fire real wire-encoded
//! requests through the seeded virtual network at a simulated server node
//! that runs the *real* `tpm-serve` machinery — the protocol-sniffing
//! [`Decoder`] via [`engine::pump_session`], [`engine::admit`] for
//! admission, [`ReplyGate`] for the exactly-one-reply claim,
//! [`engine::kill_offset`] for the watchdog's kill point — on a virtual
//! clock. Only the *scheduling* is simulated (virtual queue, virtual
//! workers, virtual durations); every protocol decision and state
//! transition is the production code path, and the registered kernels
//! really execute.
//!
//! Determinism: the run is single-threaded, every event pops in `(time,
//! scheduling order)`, and all randomness (network jitter, job durations,
//! fault decisions) comes from [`SplitMix64`] streams derived from the run
//! seed. The event log is therefore a pure function of
//! `(config, registry)` — byte-identical across runs — which is what makes
//! `--replay` and seed-sweep CI checks possible.

#[allow(unused_imports)]
use crate::clock::Instant; // shadows the std wall-clock type; see clock.rs
use crate::invariants::{self, Ledger};
use crate::net::{Dir, Fate, Net};
use crate::{Bug, DesimConfig, DesimReport, SimStats};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::time::Duration;
use tpm_core::{Executor, JobRegistry, JobSpec, KernelVariant, Model};
use tpm_fault::{FaultKind, FaultPlan, PlanEval, Site, SiteRule};
use tpm_serve::engine::{
    self, ReplyGate, Transport, MSG_DROPPED, MSG_QUEUE_FULL, MSG_WATCHDOG_SHED,
};
use tpm_serve::protocol::{CODE_INJECTED, CODE_OVERLOADED};
use tpm_serve::wire::{self, Decoder, ResponseDecoder, Step};
use tpm_serve::{Protocol, Request, Response};
use tpm_sim::{Clock, EventQueue, VirtualClock};
use tpm_sync::{CancelToken, SplitMix64};

/// One-way base latency per message.
const BASE_DELAY_NS: u64 = 50_000;
/// Uniform jitter added on top of the base latency.
const JITTER_NS: u64 = 30_000;
/// How long a dead worker slot takes to respawn.
const RESPAWN_NS: u64 = 200_000;
/// Detection lag for a deadline crossed mid-execution (the real runtimes
/// poll the cancel token between chunks).
const POLL_LAG_NS: u64 = 100_000;
/// Gap between the last request and the shutdown command.
const SHUTDOWN_LAG_NS: u64 = 2_000_000;
/// Virtual execution time floor for one job.
const JOB_BASE_NS: u64 = 150_000;
/// Uniform spread above the floor.
const JOB_JITTER_NS: u64 = 450_000;

#[derive(Debug)]
enum Ev {
    ClientSend {
        client: usize,
        idx: u64,
    },
    ShutdownSend,
    Deliver {
        conn: usize,
        dir: Dir,
        bytes: Vec<u8>,
        meta: Meta,
    },
    WorkerDone {
        worker: usize,
        seq: u64,
    },
    WorkerRespawn {
        worker: usize,
    },
    WatchdogTick,
}

/// What a network message carries, for ledger attribution.
#[derive(Debug, Clone)]
enum Meta {
    /// Protocol preamble (binary handshake).
    Preamble,
    /// A `run` request.
    Request { client: usize, id: u64 },
    /// A reply tied to a request id (`None` for parse errors).
    Reply { client: usize, id: Option<u64> },
    /// Control traffic (shutdown, pong, preamble echo, …).
    Control,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Worker {
    Idle,
    Busy,
    Dead,
}

struct SimJob {
    seq: u64,
    conn: usize,
    id: u64,
    spec: JobSpec,
    deadline_ns: Option<u64>,
    admitted_ns: u64,
    gate: ReplyGate,
}

enum Outcome {
    Ok { value: f64 },
    Fail { code: &'static str, message: String },
}

struct Inflight {
    conn: usize,
    id: u64,
    gate: ReplyGate,
    /// Watchdog hard-kill point (deadline + [`engine::kill_offset`]); only
    /// set for wedged jobs that ignore their token.
    kill_at: Option<u64>,
    deadline_ns: Option<u64>,
    admitted_ns: u64,
    started_ns: u64,
    elapsed_ns: u64,
    outcome: Outcome,
}

struct ClientState {
    proto: Protocol,
    decoder: ResponseDecoder,
    preamble_seen: bool,
}

/// Collects the engine's outbound bytes so the driver can route them
/// through the virtual network after the pump returns.
#[derive(Default)]
struct TransportBuf(Vec<Vec<u8>>);

impl Transport for TransportBuf {
    fn send_bytes(&mut self, bytes: &[u8]) {
        self.0.push(bytes.to_vec());
    }
}

/// The default fault mix used when the config carries no plan: light but
/// broad pressure on every site the simulator models, network and
/// in-process alike, so an unadorned seed sweep already exercises drops,
/// duplicates, partitions, worker deaths, wedged jobs, and admission
/// faults from one seed.
pub(crate) fn default_plan() -> FaultPlan {
    fn with_delay(mut r: SiteRule, delay_us: u64) -> SiteRule {
        r.delay_us = delay_us;
        r
    }
    FaultPlan {
        seed: 0, // overridden per run via PlanEval::with_seed
        rules: vec![
            SiteRule::prob(Site::NetDeliver, FaultKind::TaskDrop, 0.02),
            with_delay(
                SiteRule::prob(Site::NetDeliver, FaultKind::Delay, 0.04),
                2_000,
            ),
            SiteRule::prob(Site::NetDeliver, FaultKind::Duplicate, 0.02),
            with_delay(
                SiteRule::prob(Site::NetDeliver, FaultKind::Partition, 0.004),
                3_000,
            ),
            SiteRule::prob(Site::WorkerPickup, FaultKind::Panic, 0.02),
            with_delay(
                SiteRule::prob(Site::TaskExec, FaultKind::Delay, 0.02),
                25_000,
            ),
            SiteRule::prob(Site::TaskExec, FaultKind::Panic, 0.01),
            SiteRule::prob(Site::JobAdmission, FaultKind::StealMiss, 0.01),
        ],
    }
}

pub(crate) struct Sim<'a> {
    cfg: &'a DesimConfig,
    registry: &'a JobRegistry,
    clock: VirtualClock,
    events: EventQueue<Ev>,
    eval: PlanEval,
    net: Net,
    rng: SplitMix64,
    log: String,
    violations: Vec<String>,
    stats: SimStats,
    ledger: Ledger,
    clients: Vec<ClientState>,
    sessions: Vec<Decoder>,
    queue: VecDeque<SimJob>,
    inflight: BTreeMap<u64, Inflight>,
    workers: Vec<Worker>,
    execs: HashMap<usize, Executor>,
    plan_summary: String,
    job_seq: u64,
    sends_left: u64,
    kill_offset_ns: u64,
    shutdown_started: bool,
    stopped: bool,
}

impl<'a> Sim<'a> {
    pub(crate) fn new(cfg: &'a DesimConfig, registry: &'a JobRegistry) -> Self {
        let plan = cfg.plan.clone().unwrap_or_else(default_plan);
        let budget_ms = cfg.deadline_ms.unwrap_or(0);
        let kill_offset = engine::kill_offset(Duration::from_millis(budget_ms), cfg.deadline_grace);
        Self {
            cfg,
            registry,
            clock: VirtualClock::new(),
            events: EventQueue::new(),
            eval: PlanEval::with_seed(&plan, cfg.seed),
            net: Net::new(cfg.clients, cfg.seed, BASE_DELAY_NS, JITTER_NS),
            rng: SplitMix64::new(cfg.seed ^ 0x6a6f_625f_6475_7273), // "job_durs"
            log: String::new(),
            violations: Vec::new(),
            stats: SimStats::default(),
            ledger: Ledger::default(),
            clients: (0..cfg.clients)
                .map(|_| ClientState {
                    proto: cfg.protocol,
                    decoder: ResponseDecoder::new(cfg.protocol),
                    preamble_seen: false,
                })
                .collect(),
            sessions: (0..cfg.clients).map(|_| Decoder::new()).collect(),
            queue: VecDeque::new(),
            inflight: BTreeMap::new(),
            workers: vec![Worker::Idle; cfg.workers],
            execs: HashMap::new(),
            plan_summary: plan.describe(),
            job_seq: 0,
            sends_left: (cfg.clients * cfg.requests_per_client) as u64,
            kill_offset_ns: kill_offset.as_nanos() as u64,
            shutdown_started: false,
            stopped: false,
        }
    }

    pub(crate) fn run(mut self) -> DesimReport {
        // Stagger client start times so connection order is part of the
        // seedable interleaving rather than a fixed lockstep.
        for client in 0..self.cfg.clients {
            let start = (client as u64) * 10_000 + self.rng.next_bounded(10_000);
            self.events
                .schedule(start, Ev::ClientSend { client, idx: 0 });
        }
        self.events
            .schedule(self.watchdog_interval_ns(), Ev::WatchdogTick);
        while let Some((t, ev)) = self.events.pop() {
            self.clock.advance_to(t);
            let now = self.clock.now_ns();
            self.dispatch_event(now, ev);
            self.check_drained(now);
        }
        if !self.stopped {
            self.violations
                .push("liveness: run ended without the server draining".to_string());
        }
        invariants::check(
            &self.ledger,
            &self.stats,
            self.stopped,
            self.queue.len(),
            self.inflight.len(),
            &mut self.violations,
        );
        self.stats.faults_fired = self.eval.fired().len() as u64;
        DesimReport {
            seed: self.cfg.seed,
            virtual_ns: self.clock.now_ns(),
            log: self.log,
            violations: self.violations,
            stats: self.stats,
            plan_summary: self.plan_summary,
        }
    }

    fn watchdog_interval_ns(&self) -> u64 {
        self.cfg.watchdog_interval_ms.max(1) * 1_000_000
    }

    fn logln(&mut self, now: u64, args: std::fmt::Arguments<'_>) {
        let _ = writeln!(self.log, "[{now:>12}] {args}");
    }

    fn dispatch_event(&mut self, now: u64, ev: Ev) {
        match ev {
            Ev::ClientSend { client, idx } => self.client_send(now, client, idx),
            Ev::ShutdownSend => self.shutdown_send(now),
            Ev::Deliver {
                conn,
                dir,
                bytes,
                meta,
            } => match dir {
                Dir::ToServer => self.deliver_to_server(now, conn, bytes, meta),
                Dir::ToClient => self.deliver_to_client(now, conn, bytes),
            },
            Ev::WorkerDone { worker, seq } => self.worker_done(now, worker, seq),
            Ev::WorkerRespawn { worker } => self.worker_respawn(now, worker),
            Ev::WatchdogTick => self.watchdog_tick(now),
        }
    }

    // ---- client side -----------------------------------------------------

    fn request_spec(&self, client: usize, idx: u64) -> (JobSpec, Option<u64>) {
        let slot = client + idx as usize;
        let spec = JobSpec {
            kernel: self.cfg.kernel.clone(),
            model: Model::ALL[slot % Model::ALL.len()],
            variant: KernelVariant::Reference,
            size: self.cfg.size,
            threads: self.cfg.threads,
        };
        // Two of three requests carry a deadline; the rest run unbounded so
        // both arms of the watchdog logic see traffic.
        let deadline_ms = if slot % 3 == 2 {
            None
        } else {
            self.cfg.deadline_ms
        };
        (spec, deadline_ms)
    }

    fn client_send(&mut self, now: u64, client: usize, idx: u64) {
        let proto = self.clients[client].proto;
        if idx == 0 && proto == Protocol::Binary {
            self.dispatch_to(
                now,
                client,
                Dir::ToServer,
                wire::client_preamble(1).to_vec(),
                Meta::Preamble,
                true,
            );
        }
        let (spec, deadline_ms) = self.request_spec(client, idx);
        let model = spec.model.name();
        let req = Request::Run {
            id: idx,
            spec,
            deadline_ms,
            client: Some(format!("c{client}")),
        };
        let bytes = wire::encode_request(proto, &req);
        self.ledger.track(client, idx).sent_ns = now;
        self.stats.requests += 1;
        match deadline_ms {
            Some(ms) => self.logln(
                now,
                format_args!("client {client} sends id={idx} model={model} deadline={ms}ms"),
            ),
            None => self.logln(
                now,
                format_args!("client {client} sends id={idx} model={model}"),
            ),
        }
        self.dispatch_to(
            now,
            client,
            Dir::ToServer,
            bytes,
            Meta::Request { client, id: idx },
            false,
        );
        self.sends_left -= 1;
        if idx + 1 < self.cfg.requests_per_client as u64 {
            let gap = self.cfg.gap_us * 1_000;
            let jitter = self.rng.next_bounded(gap / 4 + 1);
            self.events.schedule(
                now + gap + jitter,
                Ev::ClientSend {
                    client,
                    idx: idx + 1,
                },
            );
        }
        if self.sends_left == 0 {
            self.events
                .schedule(now + SHUTDOWN_LAG_NS, Ev::ShutdownSend);
        }
    }

    fn shutdown_send(&mut self, now: u64) {
        let proto = self.clients[0].proto;
        let bytes = wire::encode_request(proto, &Request::Shutdown);
        self.logln(now, format_args!("client 0 sends shutdown"));
        self.dispatch_to(now, 0, Dir::ToServer, bytes, Meta::Control, true);
    }

    fn deliver_to_client(&mut self, now: u64, conn: usize, bytes: Vec<u8>) {
        let mut got: Vec<Result<Response, String>> = Vec::new();
        {
            let c = &mut self.clients[conn];
            if c.proto == Protocol::Binary && !c.preamble_seen {
                // The first server message on a binary connection is the
                // 2-byte preamble echo, sent (critically) on its own.
                c.preamble_seen = true;
                if bytes.len() > 2 {
                    c.decoder.feed(&bytes[2..]);
                }
            } else {
                c.decoder.feed(&bytes);
            }
            loop {
                match c.decoder.next() {
                    Step::NeedMore => break,
                    Step::Message(m) => got.push(m),
                    Step::Preamble(_) => {
                        got.push(Err("unexpected preamble in reply stream".to_string()));
                        break;
                    }
                    Step::Corrupt(e) => {
                        got.push(Err(format!("client decoder corrupt: {e}")));
                        break;
                    }
                }
            }
        }
        for m in got {
            match m {
                Ok(Response::Ok { id, .. }) => {
                    self.ledger.track(conn, id).replies_decoded += 1;
                    self.stats.replies_decoded += 1;
                    self.logln(now, format_args!("client {conn} decoded id={id} ok"));
                }
                Ok(Response::Error {
                    id: Some(id), code, ..
                }) => {
                    self.ledger.track(conn, id).replies_decoded += 1;
                    self.stats.replies_decoded += 1;
                    self.logln(
                        now,
                        format_args!("client {conn} decoded id={id} error={code}"),
                    );
                }
                Ok(Response::Error { id: None, code, .. }) => {
                    self.logln(
                        now,
                        format_args!("client {conn} decoded anonymous error={code}"),
                    );
                }
                Ok(Response::ShuttingDown) => {
                    self.logln(now, format_args!("client {conn} decoded shutting-down"));
                }
                Ok(_) => {
                    self.logln(now, format_args!("client {conn} decoded control reply"));
                }
                Err(e) => self
                    .violations
                    .push(format!("client {conn} reply stream broke: {e}")),
            }
        }
    }

    // ---- virtual network -------------------------------------------------

    fn dispatch_to(
        &mut self,
        now: u64,
        conn: usize,
        dir: Dir,
        bytes: Vec<u8>,
        meta: Meta,
        critical: bool,
    ) {
        match self.net.dispatch(now, conn, dir, critical, &mut self.eval) {
            Fate::Deliver { at, note } => {
                let copies = at.len() as u32;
                match (&meta, note) {
                    (_, None) => {}
                    (Meta::Request { client, id }, Some(n))
                    | (
                        Meta::Reply {
                            client,
                            id: Some(id),
                        },
                        Some(n),
                    ) => {
                        let (client, id) = (*client, *id);
                        self.logln(
                            now,
                            format_args!("net {n} {} client {client} id={id}", dir.label()),
                        );
                    }
                    (_, Some(n)) => {
                        self.logln(now, format_args!("net {n} {} conn {conn}", dir.label()))
                    }
                }
                match note {
                    Some("duplicated") => self.stats.net_duplicated += 1,
                    Some("delayed") => self.stats.net_delayed += 1,
                    _ => {}
                }
                match &meta {
                    Meta::Request { client, id } => {
                        self.ledger.track(*client, *id).copies_sent += copies;
                    }
                    Meta::Reply {
                        client,
                        id: Some(id),
                    } => {
                        self.ledger.track(*client, *id).reply_copies_sent += copies;
                    }
                    _ => {}
                }
                for t in at {
                    self.events.schedule(
                        t,
                        Ev::Deliver {
                            conn,
                            dir,
                            bytes: bytes.clone(),
                            meta: meta.clone(),
                        },
                    );
                }
            }
            Fate::Lost { reason } => {
                if reason == "partition" {
                    self.stats.partitions += 1;
                } else {
                    self.stats.net_dropped += 1;
                }
                match &meta {
                    Meta::Request { client, id } => {
                        let t = self.ledger.track(*client, *id);
                        t.copies_sent += 1;
                        t.copies_lost += 1;
                        let (client, id) = (*client, *id);
                        self.logln(
                            now,
                            format_args!(
                                "net lost ({reason}) {} client {client} id={id}",
                                dir.label()
                            ),
                        );
                    }
                    Meta::Reply { client, id } => {
                        if let Some(id) = *id {
                            let t = self.ledger.track(*client, id);
                            t.reply_copies_sent += 1;
                            t.reply_copies_lost += 1;
                        }
                        let client = *client;
                        self.logln(
                            now,
                            format_args!(
                                "net lost ({reason}) {} client {client} id={id:?}",
                                dir.label()
                            ),
                        );
                    }
                    _ => self.logln(
                        now,
                        format_args!("net lost ({reason}) {} conn {conn}", dir.label()),
                    ),
                }
            }
        }
    }

    // ---- server node -----------------------------------------------------

    fn deliver_to_server(&mut self, now: u64, conn: usize, bytes: Vec<u8>, meta: Meta) {
        if self.stopped {
            if let Meta::Request { client, id } = meta {
                self.ledger.track(client, id).delivered_after_stop += 1;
                self.stats.delivered_after_stop += 1;
                self.logln(
                    now,
                    format_args!("server stopped; dropping late request client {client} id={id}"),
                );
            }
            return;
        }
        if let Meta::Request { client, id } = &meta {
            self.ledger.track(*client, *id).delivered += 1;
        }
        let mut out = TransportBuf::default();
        let mut frames = Vec::new();
        {
            let dec = &mut self.sessions[conn];
            dec.feed(&bytes);
            engine::pump_session(dec, &mut out, |proto, parsed| frames.push((proto, parsed)));
        }
        for reply in out.0 {
            self.dispatch_to(now, conn, Dir::ToClient, reply, Meta::Control, true);
        }
        for (_proto, parsed) in frames {
            self.handle_frame(now, conn, parsed);
        }
    }

    fn handle_frame(&mut self, now: u64, conn: usize, parsed: Result<Request, String>) {
        match parsed {
            Err(message) => {
                self.stats.parse_errors += 1;
                self.send_response(
                    now,
                    conn,
                    &Response::Error {
                        id: None,
                        code: tpm_serve::protocol::CODE_PARSE,
                        message,
                    },
                    Meta::Reply {
                        client: conn,
                        id: None,
                    },
                    false,
                );
            }
            Ok(Request::Run {
                id,
                spec,
                deadline_ms,
                ..
            }) => self.handle_run(now, conn, id, spec, deadline_ms),
            Ok(Request::Ping) => {
                self.send_response(now, conn, &Response::Pong, Meta::Control, false);
            }
            Ok(Request::Health) => {
                let resp = Response::Health {
                    live_workers: self.workers.iter().filter(|w| **w != Worker::Dead).count()
                        as u64,
                    dead_workers: self.stats.worker_deaths,
                    queue_depth: self.queue.len() as u64,
                    inflight: self.inflight.len() as u64,
                    admitted: self.stats.admitted,
                    completed: self.stats.completed,
                    shed: self.stats.shed,
                    distinct_clients: self.cfg.clients as u64,
                };
                self.send_response(now, conn, &resp, Meta::Control, false);
            }
            Ok(Request::Metrics) => {
                let resp = Response::Metrics {
                    exposition: "# simulated node: metrics served live only\n".to_string(),
                };
                self.send_response(now, conn, &resp, Meta::Control, false);
            }
            Ok(Request::Shutdown) => {
                self.shutdown_started = true;
                self.logln(
                    now,
                    format_args!("shutdown received: queue closed, draining"),
                );
                self.send_response(now, conn, &Response::ShuttingDown, Meta::Control, true);
            }
        }
    }

    fn handle_run(
        &mut self,
        now: u64,
        conn: usize,
        id: u64,
        spec: JobSpec,
        deadline_ms: Option<u64>,
    ) {
        // Admission-site faults, decided by the same seeded plan that
        // shapes the network. Panics here are contained by the real
        // server's frame handler; the simulator mirrors the observable
        // result (an `injected` error reply).
        if let Some(d) = self.eval.decide(Site::JobAdmission) {
            match d.kind {
                FaultKind::Panic | FaultKind::TaskDrop => {
                    self.stats.refused += 1;
                    self.logln(
                        now,
                        format_args!("admission fault ({}) client {conn} id={id}", d.kind.name()),
                    );
                    self.send_response(
                        now,
                        conn,
                        &Response::Error {
                            id: Some(id),
                            code: CODE_INJECTED,
                            message: format!("injected {} at job-admission", d.kind.name()),
                        },
                        Meta::Reply {
                            client: conn,
                            id: Some(id),
                        },
                        false,
                    );
                    return;
                }
                FaultKind::StealMiss => {
                    self.stats.shed += 1;
                    self.logln(
                        now,
                        format_args!("admission fault (shed) client {conn} id={id}"),
                    );
                    self.send_response(
                        now,
                        conn,
                        &Response::Error {
                            id: Some(id),
                            code: CODE_OVERLOADED,
                            message: "injected admission shed".to_string(),
                        },
                        Meta::Reply {
                            client: conn,
                            id: Some(id),
                        },
                        false,
                    );
                    return;
                }
                FaultKind::Delay | FaultKind::Duplicate | FaultKind::Partition => {}
            }
        }
        let policy = engine::AdmissionPolicy {
            max_threads: self.cfg.max_threads,
            default_deadline_ms: None,
        };
        match engine::admit(self.registry, &policy, &spec, deadline_ms) {
            engine::Admission::Refuse {
                code,
                message,
                shed,
            } => {
                if shed {
                    self.stats.shed += 1;
                } else {
                    self.stats.refused += 1;
                }
                self.logln(now, format_args!("refused client {conn} id={id}: {code}"));
                self.send_response(
                    now,
                    conn,
                    &Response::Error {
                        id: Some(id),
                        code,
                        message,
                    },
                    Meta::Reply {
                        client: conn,
                        id: Some(id),
                    },
                    false,
                );
            }
            engine::Admission::Accept { deadline_ms } => {
                if self.shutdown_started || self.queue.len() >= self.cfg.queue_capacity {
                    self.stats.shed += 1;
                    self.logln(now, format_args!("shed client {conn} id={id} (queue)"));
                    self.send_response(
                        now,
                        conn,
                        &Response::Error {
                            id: Some(id),
                            code: CODE_OVERLOADED,
                            message: MSG_QUEUE_FULL.to_string(),
                        },
                        Meta::Reply {
                            client: conn,
                            id: Some(id),
                        },
                        false,
                    );
                    return;
                }
                self.stats.admitted += 1;
                let deadline_ns = deadline_ms.map(|ms| now + ms * 1_000_000);
                {
                    let t = self.ledger.track(conn, id);
                    t.admitted = true;
                    t.deadline_ns = deadline_ns;
                }
                let seq = self.job_seq;
                self.job_seq += 1;
                self.queue.push_back(SimJob {
                    seq,
                    conn,
                    id,
                    spec,
                    deadline_ns,
                    admitted_ns: now,
                    gate: ReplyGate::new(),
                });
                self.logln(
                    now,
                    format_args!("admitted client {conn} id={id} queue={}", self.queue.len()),
                );
                if let Some(w) = self.idle_worker() {
                    self.start_jobs(now, w);
                }
            }
        }
    }

    fn idle_worker(&self) -> Option<usize> {
        self.workers.iter().position(|w| *w == Worker::Idle)
    }

    /// Pulls queued jobs onto worker `w` until it is busy, dead, or the
    /// queue is empty — the simulated version of the real `worker_loop`
    /// pop loop, including the pickup fault probe and the
    /// deadline-expired-in-queue check.
    fn start_jobs(&mut self, now: u64, w: usize) {
        loop {
            if self.workers[w] != Worker::Idle {
                return;
            }
            let Some(job) = self.queue.pop_front() else {
                return;
            };
            let mut start_lag = 0u64;
            if let Some(d) = self.eval.decide(Site::WorkerPickup) {
                match d.kind {
                    FaultKind::Panic => {
                        self.worker_death(now, w, job);
                        return;
                    }
                    FaultKind::Delay => start_lag = d.delay_us * 1_000,
                    _ => {}
                }
            }
            if let Some(dl) = job.deadline_ns {
                if now >= dl {
                    if job.gate.claim() {
                        self.stats.failed += 1;
                        self.assert_deadline_monotonic(now, job.conn, job.id, Some(dl));
                        self.logln(
                            now,
                            format_args!(
                                "deadline expired in queue: client {} id={}",
                                job.conn, job.id
                            ),
                        );
                        self.send_response(
                            now,
                            job.conn,
                            &Response::Error {
                                id: Some(job.id),
                                code: "deadline",
                                message: "deadline expired before execution".to_string(),
                            },
                            Meta::Reply {
                                client: job.conn,
                                id: Some(job.id),
                            },
                            false,
                        );
                    }
                    continue;
                }
            }
            self.execute(now, w, job, start_lag);
            return;
        }
    }

    fn worker_death(&mut self, now: u64, w: usize, job: SimJob) {
        self.stats.worker_deaths += 1;
        self.workers[w] = Worker::Dead;
        self.logln(
            now,
            format_args!("worker {w} died (injected panic at worker-pickup)"),
        );
        if self.cfg.bug == Bug::LoseJobOnWorkerDeath {
            // The planted bug: the drop backstop is skipped, so the picked
            // job vanishes without a reply. The exactly-one-reply and
            // conservation invariants must catch this.
            self.logln(
                now,
                format_args!(
                    "job client {} id={} lost with the worker (planted bug)",
                    job.conn, job.id
                ),
            );
        } else if job.gate.claim() {
            // The real WorkItem drop backstop: the dying worker's item
            // answers on the way out.
            self.stats.failed += 1;
            self.send_response(
                now,
                job.conn,
                &Response::Error {
                    id: Some(job.id),
                    code: "panic",
                    message: MSG_DROPPED.to_string(),
                },
                Meta::Reply {
                    client: job.conn,
                    id: Some(job.id),
                },
                false,
            );
        }
        self.events
            .schedule(now + RESPAWN_NS, Ev::WorkerRespawn { worker: w });
    }

    fn execute(&mut self, now: u64, w: usize, job: SimJob, start_lag: u64) {
        // Run the real kernel through the real registry (admission already
        // validated the spec). The wall-clock JobResult::elapsed is
        // discarded: the virtual duration below is drawn from the seeded
        // RNG so the event timeline never depends on machine speed.
        let exec = self
            .execs
            .entry(job.spec.threads)
            .or_insert_with(|| Executor::new(job.spec.threads));
        let token = CancelToken::new();
        let mut outcome = match self.registry.run(exec, &job.spec, &token) {
            Ok(r) => Outcome::Ok { value: r.value },
            Err(e) => Outcome::Fail {
                code: e.code(),
                message: e.to_string(),
            },
        };
        let mut dur = JOB_BASE_NS + self.rng.next_bounded(JOB_JITTER_NS) + start_lag;
        let mut wedged = false;
        if let Some(d) = self.eval.decide(Site::TaskExec) {
            match d.kind {
                FaultKind::Delay => {
                    // A wedged job: ignores its cancel token, runs long.
                    wedged = true;
                    dur += d.delay_us * 1_000;
                }
                FaultKind::Panic | FaultKind::TaskDrop => {
                    outcome = Outcome::Fail {
                        code: CODE_INJECTED,
                        message: format!("injected {} at task-exec", d.kind.name()),
                    };
                }
                _ => {}
            }
        }
        let mut t_end = now + dur;
        let mut kill_at = None;
        if let Some(dl) = job.deadline_ns {
            if wedged {
                // Token polling won't save us; the watchdog's hard-kill
                // point is deadline + kill_offset, same arithmetic as the
                // real server.
                kill_at = Some(dl + self.kill_offset_ns);
            } else if t_end > dl {
                // The runtimes poll the token between chunks: the job
                // stops shortly after its deadline passes.
                t_end = dl + POLL_LAG_NS;
                outcome = Outcome::Fail {
                    code: "deadline",
                    message: "deadline exceeded".to_string(),
                };
            }
        }
        self.logln(
            now,
            format_args!(
                "worker {w} starts client {} id={}{}",
                job.conn,
                job.id,
                if wedged { " (wedged)" } else { "" }
            ),
        );
        self.workers[w] = Worker::Busy;
        self.inflight.insert(
            job.seq,
            Inflight {
                conn: job.conn,
                id: job.id,
                gate: job.gate,
                kill_at,
                deadline_ns: job.deadline_ns,
                admitted_ns: job.admitted_ns,
                started_ns: now,
                elapsed_ns: t_end - now,
                outcome,
            },
        );
        self.events.schedule(
            t_end,
            Ev::WorkerDone {
                worker: w,
                seq: job.seq,
            },
        );
    }

    fn worker_done(&mut self, now: u64, w: usize, seq: u64) {
        let entry = self
            .inflight
            .remove(&seq)
            .expect("WorkerDone for unknown job");
        self.workers[w] = Worker::Idle;
        if entry.gate.claim() {
            match entry.outcome {
                Outcome::Ok { value } => {
                    self.stats.completed += 1;
                    self.logln(
                        now,
                        format_args!("reply client {} id={} ok", entry.conn, entry.id),
                    );
                    self.send_response(
                        now,
                        entry.conn,
                        &Response::Ok {
                            id: entry.id,
                            value,
                            elapsed_ms: entry.elapsed_ns as f64 / 1e6,
                            queue_ms: (entry.started_ns - entry.admitted_ns) as f64 / 1e6,
                        },
                        Meta::Reply {
                            client: entry.conn,
                            id: Some(entry.id),
                        },
                        false,
                    );
                }
                Outcome::Fail { code, message } => {
                    self.stats.failed += 1;
                    if code == "deadline" {
                        self.assert_deadline_monotonic(
                            now,
                            entry.conn,
                            entry.id,
                            entry.deadline_ns,
                        );
                    }
                    self.logln(
                        now,
                        format_args!("reply client {} id={} error={code}", entry.conn, entry.id),
                    );
                    self.send_response(
                        now,
                        entry.conn,
                        &Response::Error {
                            id: Some(entry.id),
                            code,
                            message,
                        },
                        Meta::Reply {
                            client: entry.conn,
                            id: Some(entry.id),
                        },
                        false,
                    );
                }
            }
        } else {
            self.logln(
                now,
                format_args!(
                    "worker {w} finished client {} id={} (reply already claimed)",
                    entry.conn, entry.id
                ),
            );
        }
        self.start_jobs(now, w);
    }

    fn worker_respawn(&mut self, now: u64, w: usize) {
        self.stats.worker_respawns += 1;
        self.workers[w] = Worker::Idle;
        self.logln(now, format_args!("worker {w} respawned"));
        self.start_jobs(now, w);
    }

    fn watchdog_tick(&mut self, now: u64) {
        if self.stopped {
            return; // the drained server stops ticking; no reschedule
        }
        let due: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, e)| e.kill_at.is_some_and(|k| now >= k))
            .map(|(s, _)| *s)
            .collect();
        for seq in due {
            let (conn, id, deadline_ns, gate) = {
                let e = &self.inflight[&seq];
                (e.conn, e.id, e.deadline_ns, e.gate.clone())
            };
            let fire = if self.cfg.bug == Bug::WatchdogIgnoresGate {
                // The planted bug: reply without claiming the gate, so the
                // worker answers again later — a double reply the
                // exactly-one-reply invariant must catch.
                true
            } else {
                gate.claim()
            };
            // One shot per job either way.
            self.inflight.get_mut(&seq).expect("due entry").kill_at = None;
            if fire {
                self.stats.watchdog_shed += 1;
                self.assert_deadline_monotonic(now, conn, id, deadline_ns);
                self.logln(
                    now,
                    format_args!("watchdog kills client {conn} id={id} (past grace)"),
                );
                self.send_response(
                    now,
                    conn,
                    &Response::Error {
                        id: Some(id),
                        code: "deadline",
                        message: MSG_WATCHDOG_SHED.to_string(),
                    },
                    Meta::Reply {
                        client: conn,
                        id: Some(id),
                    },
                    false,
                );
            }
        }
        let at = now + self.watchdog_interval_ns();
        self.events.schedule(at, Ev::WatchdogTick);
    }

    fn send_response(
        &mut self,
        now: u64,
        conn: usize,
        resp: &Response,
        meta: Meta,
        critical: bool,
    ) {
        if let Meta::Reply {
            client,
            id: Some(id),
        } = &meta
        {
            self.ledger.track(*client, *id).replies_sent += 1;
        }
        let mut bytes = Vec::new();
        wire::encode_response_into(self.clients[conn].proto, resp, &mut bytes);
        self.dispatch_to(now, conn, Dir::ToClient, bytes, meta, critical);
    }

    /// Deadline monotonicity: a `deadline`-coded reply may never be sent
    /// before the request's deadline has actually passed.
    fn assert_deadline_monotonic(
        &mut self,
        now: u64,
        conn: usize,
        id: u64,
        deadline_ns: Option<u64>,
    ) {
        match deadline_ns {
            Some(dl) if now >= dl => {}
            Some(dl) => self.violations.push(format!(
                "deadline-monotonicity: client {conn} id {id}: deadline reply at {now} \
                 before deadline {dl}"
            )),
            None => self.violations.push(format!(
                "deadline-monotonicity: client {conn} id {id}: deadline reply for a \
                 request with no deadline"
            )),
        }
    }

    fn check_drained(&mut self, now: u64) {
        if self.shutdown_started
            && !self.stopped
            && self.queue.is_empty()
            && self.inflight.is_empty()
        {
            self.stopped = true;
            let line = format!(
                "drained: admitted={} completed={} failed={} shed={} watchdog_shed={}",
                self.stats.admitted,
                self.stats.completed,
                self.stats.failed,
                self.stats.shed,
                self.stats.watchdog_shed
            );
            self.logln(now, format_args!("{line}"));
        }
    }
}
