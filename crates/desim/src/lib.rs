//! # tpm-desim — deterministic whole-service simulation
//!
//! FoundationDB-style simulation testing for the `tpm-serve` job service:
//! simulated clients, a seeded virtual network (delay, jitter, drop,
//! duplication, partition), and a simulated server node that runs the
//! *real* admission/deadline/watchdog/drain/reply state machines from
//! [`tpm_serve::engine`] — all on the virtual clock from
//! [`tpm_sim`], so a run is a pure function of its seed.
//!
//! What that buys:
//!
//! * **Reproducibility** — `run` with the same [`DesimConfig`] produces a
//!   byte-identical event log every time. A failure seed from a
//!   thousand-seed sweep replays exactly, faults and all.
//! * **Unified faults** — one seeded [`FaultPlan`] drives both in-process
//!   probes (worker panics at pickup, wedged jobs at exec, admission
//!   faults) and network faults (drops, duplicates, partitions, delayed
//!   replies) through [`tpm_fault::PlanEval`]. One seed reproduces the
//!   whole interleaving.
//! * **Invariants, not assertions-by-example** — every run is audited
//!   against a ground-truth message ledger ([`invariants`]):
//!   exactly-one-reply, reply/network conservation, drain completeness,
//!   deadline monotonicity, and metrics conservation
//!   (`admitted == completed + failed + watchdog_shed`).
//! * **Virtual time** — hours of idle traffic simulate in milliseconds;
//!   the wall-clock quarantine in [`clock`] keeps the timeline honest.
//!
//! ```
//! use tpm_core::JobRegistry;
//! use tpm_desim::{run, DesimConfig};
//!
//! let mut reg = JobRegistry::new();
//! reg.register("sum", "echoes the size", 1 << 20, |ctx| Ok(ctx.spec.size as f64));
//! let cfg = DesimConfig { seed: 42, kernel: "sum".into(), ..DesimConfig::default() };
//! let report = run(&cfg, &reg);
//! assert!(report.violations.is_empty(), "{}", report.render_failure());
//! // Same seed → byte-identical log.
//! assert_eq!(report.log, run(&cfg, &reg).log);
//! ```
//!
//! [`FaultPlan`]: tpm_fault::FaultPlan

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod invariants;
pub mod net;
mod sim;

#[allow(unused_imports)]
use crate::clock::Instant; // shadows the std wall-clock type; see clock.rs
use tpm_core::JobRegistry;
use tpm_fault::FaultPlan;
use tpm_serve::Protocol;

/// Deliberately planted service bugs, used to prove the invariant checker
/// has teeth: a clean run must pass, a planted-bug run must fail, and the
/// failing seed is committed as a regression test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Bug {
    /// No planted bug: the production logic, faithfully simulated.
    #[default]
    None,
    /// Skip the drop backstop when a worker dies at pickup: the picked job
    /// vanishes without a reply. Caught by exactly-one-reply,
    /// drain-completeness, and metrics-conservation.
    LoseJobOnWorkerDeath,
    /// The watchdog replies without claiming the [`ReplyGate`], so the
    /// wedged worker answers a second time later. Caught by
    /// exactly-one-reply and metrics-conservation.
    ///
    /// [`ReplyGate`]: tpm_serve::engine::ReplyGate
    WatchdogIgnoresGate,
}

/// One simulation's shape: workload, server sizing, fault plan, seed.
#[derive(Debug, Clone)]
pub struct DesimConfig {
    /// Master seed: drives fault decisions, network jitter, job durations,
    /// and client pacing. Same seed, same run.
    pub seed: u64,
    /// Number of simulated client connections.
    pub clients: usize,
    /// Requests each client sends before the run shuts down.
    pub requests_per_client: usize,
    /// Virtual worker slots on the simulated node.
    pub workers: usize,
    /// Admission queue capacity (beyond it: shed).
    pub queue_capacity: usize,
    /// Server-side cap on `spec.threads`.
    pub max_threads: usize,
    /// Per-request deadline budget; two of three requests carry it.
    pub deadline_ms: Option<u64>,
    /// Watchdog grace multiplier (kill at `deadline + (grace−1)·budget`).
    pub deadline_grace: f64,
    /// Virtual watchdog scan interval.
    pub watchdog_interval_ms: u64,
    /// Wire protocol all simulated clients speak.
    pub protocol: Protocol,
    /// Registered kernel every request runs.
    pub kernel: String,
    /// Problem size per request.
    pub size: usize,
    /// Threads per request (1 keeps kernel outputs bit-deterministic).
    pub threads: usize,
    /// Virtual gap between a client's consecutive requests.
    pub gap_us: u64,
    /// Fault plan; `None` installs a broad default mix. The plan's own
    /// seed is ignored — `seed` above is used, so sweeps reuse one rule
    /// set across thousands of seeds.
    pub plan: Option<FaultPlan>,
    /// Planted bug for invariant-checker validation.
    pub bug: Bug,
}

impl Default for DesimConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            clients: 4,
            requests_per_client: 25,
            workers: 2,
            queue_capacity: 8,
            max_threads: 4,
            deadline_ms: Some(5),
            deadline_grace: 2.0,
            watchdog_interval_ms: 1,
            protocol: Protocol::Json,
            kernel: "sum".to_string(),
            size: 64,
            threads: 1,
            gap_us: 500,
            plan: None,
            bug: Bug::None,
        }
    }
}

/// Counters the simulated node keeps about itself (the "metrics" side of
/// the metrics-conservation invariant) plus network fault tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Requests clients sent (logical sends, not network copies).
    pub requests: u64,
    /// Jobs admitted to the queue.
    pub admitted: u64,
    /// Admitted jobs that completed and replied `ok`.
    pub completed: u64,
    /// Admitted jobs that ended in an error reply (job error, deadline,
    /// injected failure, drop backstop).
    pub failed: u64,
    /// Requests refused before the queue (validation, injected admission
    /// faults).
    pub refused: u64,
    /// Requests shed for load (queue full, queue closed, injected shed).
    pub shed: u64,
    /// Wedged jobs the watchdog killed past their grace.
    pub watchdog_shed: u64,
    /// Frames that failed to parse.
    pub parse_errors: u64,
    /// Worker deaths (injected panics at pickup).
    pub worker_deaths: u64,
    /// Worker slots respawned after a death.
    pub worker_respawns: u64,
    /// Messages the network dropped (drop faults + severed-link losses).
    pub net_dropped: u64,
    /// Messages the network duplicated.
    pub net_duplicated: u64,
    /// Messages the network delayed beyond base latency.
    pub net_delayed: u64,
    /// Partition events (each severs one link for a while).
    pub partitions: u64,
    /// Replies clients successfully decoded.
    pub replies_decoded: u64,
    /// Request copies that arrived after the server finished draining.
    pub delivered_after_stop: u64,
    /// Total fault-plan rule firings across all sites.
    pub faults_fired: u64,
}

/// What one simulation run produced.
#[derive(Debug)]
pub struct DesimReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Virtual time at which the last event fired.
    pub virtual_ns: u64,
    /// The canonical event log — byte-identical for identical configs.
    pub log: String,
    /// Invariant violations; empty means the run passed.
    pub violations: Vec<String>,
    /// The node's own counters plus network tallies.
    pub stats: SimStats,
    /// Human-readable dump of the fault plan that shaped the run
    /// ([`FaultPlan::describe`]), for failure reports.
    pub plan_summary: String,
}

impl DesimReport {
    /// True when at least one invariant was violated.
    #[must_use]
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }

    /// A self-contained failure report: seed, the fault plan that shaped
    /// the run, every violation, and the tail of the event log.
    #[must_use]
    pub fn render_failure(&self) -> String {
        let mut out = format!("desim seed {} failed\n{}", self.seed, self.plan_summary);
        out.push_str("violations:\n");
        for v in &self.violations {
            out.push_str("  - ");
            out.push_str(v);
            out.push('\n');
        }
        let lines: Vec<&str> = self.log.lines().collect();
        let tail = 40.min(lines.len());
        out.push_str(&format!("log tail ({tail} of {} events):\n", lines.len()));
        for line in &lines[lines.len() - tail..] {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Runs one simulation to completion and audits it against the invariant
/// suite. Deterministic: the returned [`DesimReport::log`] is a pure
/// function of `(cfg, registry)`.
pub fn run(cfg: &DesimConfig, registry: &JobRegistry) -> DesimReport {
    sim::Sim::new(cfg, registry).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpm_fault::{FaultKind, FaultPlan, Site, SiteRule};

    fn test_registry() -> JobRegistry {
        let mut r = JobRegistry::new();
        r.register("sum", "echoes the size", 1 << 20, |ctx| {
            Ok(ctx.spec.size as f64)
        });
        r
    }

    fn small(seed: u64) -> DesimConfig {
        DesimConfig {
            seed,
            clients: 3,
            requests_per_client: 8,
            ..DesimConfig::default()
        }
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let reg = test_registry();
        let cfg = small(7);
        let a = run(&cfg, &reg);
        let b = run(&cfg, &reg);
        assert_eq!(a.log, b.log, "same seed must replay byte-identically");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.virtual_ns, b.virtual_ns);
    }

    #[test]
    fn different_seeds_diverge() {
        let reg = test_registry();
        let a = run(&small(1), &reg);
        let b = run(&small(2), &reg);
        assert_ne!(a.log, b.log);
    }

    #[test]
    fn invariants_hold_across_a_seed_sweep() {
        let reg = test_registry();
        for seed in 1..=25 {
            let report = run(&small(seed), &reg);
            assert!(report.violations.is_empty(), "{}", report.render_failure());
            assert!(report.stats.requests > 0);
        }
    }

    #[test]
    fn one_plan_injects_in_process_and_network_faults_in_one_run() {
        let reg = test_registry();
        let plan = FaultPlan {
            seed: 0,
            rules: vec![
                SiteRule::nth(Site::WorkerPickup, FaultKind::Panic, 2),
                SiteRule::nth(Site::NetDeliver, FaultKind::TaskDrop, 3),
            ],
        };
        let cfg = DesimConfig {
            plan: Some(plan),
            ..small(5)
        };
        let report = run(&cfg, &reg);
        assert!(report.violations.is_empty(), "{}", report.render_failure());
        assert_eq!(report.stats.worker_deaths, 1, "in-process fault fired");
        assert_eq!(report.stats.net_dropped, 1, "network fault fired");
        assert_eq!(report.stats.worker_respawns, 1, "death healed by respawn");
    }

    /// Regression: seed 11 with the lost-job bug planted. The worker-death
    /// drop backstop is skipped, and the invariant checker must notice the
    /// job that vanished without a reply. (This is the "deliberately
    /// introduced bug" demonstration: the same seed with `Bug::None`
    /// passes.)
    #[test]
    fn planted_lost_job_bug_is_caught() {
        let reg = test_registry();
        let plan = FaultPlan {
            seed: 0,
            rules: vec![SiteRule::nth(Site::WorkerPickup, FaultKind::Panic, 2)],
        };
        let clean = DesimConfig {
            seed: 11,
            plan: Some(plan.clone()),
            ..small(11)
        };
        assert!(!run(&clean, &reg).failed(), "clean run must pass");
        let buggy = DesimConfig {
            bug: Bug::LoseJobOnWorkerDeath,
            ..clean
        };
        let report = run(&buggy, &reg);
        assert!(report.failed(), "planted bug must be caught");
        let text = report.violations.join("\n");
        assert!(text.contains("exactly-one-reply"), "{text}");
        assert!(text.contains("metrics-conservation"), "{text}");
    }

    /// Regression: a watchdog that replies without claiming the gate
    /// double-answers a wedged job; exactly-one-reply must catch it.
    #[test]
    fn planted_watchdog_gate_bug_is_caught() {
        let reg = test_registry();
        let mut wedge = SiteRule::nth(Site::TaskExec, FaultKind::Delay, 1);
        wedge.delay_us = 25_000;
        let plan = FaultPlan {
            seed: 0,
            rules: vec![wedge],
        };
        let clean = DesimConfig {
            seed: 3,
            plan: Some(plan),
            ..small(3)
        };
        let clean_report = run(&clean, &reg);
        assert!(!clean_report.failed(), "{}", clean_report.render_failure());
        assert_eq!(clean_report.stats.watchdog_shed, 1, "the wedge must wedge");
        let buggy = DesimConfig {
            bug: Bug::WatchdogIgnoresGate,
            ..clean
        };
        let report = run(&buggy, &reg);
        assert!(report.failed(), "planted bug must be caught");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("exactly-one-reply")),
            "{}",
            report.violations.join("\n")
        );
    }

    #[test]
    fn binary_protocol_runs_clean_too() {
        let reg = test_registry();
        let cfg = DesimConfig {
            protocol: Protocol::Binary,
            ..small(9)
        };
        let report = run(&cfg, &reg);
        assert!(report.violations.is_empty(), "{}", report.render_failure());
        assert!(report.stats.replies_decoded > 0);
    }

    #[test]
    fn idle_heavy_run_fast_forwards_virtual_time() {
        let reg = test_registry();
        let cfg = DesimConfig {
            gap_us: 1_000_000, // 1 s between requests: idle-heavy
            requests_per_client: 10,
            clients: 2,
            ..small(4)
        };
        let report = run(&cfg, &reg);
        assert!(report.violations.is_empty(), "{}", report.render_failure());
        // ~9 s of virtual idle time must actually appear on the virtual
        // clock (the wall cost is a few ms — the harness measures that).
        assert!(
            report.virtual_ns > 8_000_000_000,
            "virtual_ns = {}",
            report.virtual_ns
        );
    }

    /// The deflake guard's second half (the first is the `compile_fail`
    /// doctest in `clock`): no simulator source reaches for the wall
    /// clock. Banned tokens are assembled at runtime so this test's own
    /// source doesn't trip itself.
    #[test]
    fn sim_sources_never_touch_the_wall_clock() {
        let sources = [
            ("lib.rs", include_str!("lib.rs")),
            ("sim.rs", include_str!("sim.rs")),
            ("net.rs", include_str!("net.rs")),
            ("invariants.rs", include_str!("invariants.rs")),
        ];
        let banned = [
            format!("std::{}::Instant", "time"),
            format!("{}::now", "Instant"),
            format!("System{}", "Time"),
        ];
        for (name, src) in sources {
            for b in &banned {
                assert!(
                    !src.contains(b.as_str()),
                    "{name} reaches for the wall clock via {b}"
                );
            }
        }
    }
}
