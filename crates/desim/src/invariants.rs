//! The ground-truth ledger and the invariant checker.
//!
//! The simulator keeps double books: the server-side state machines count
//! what they *think* happened (admitted, completed, shed, …) while the
//! ledger records what *actually* happened to every request — copies that
//! entered the network, copies the network lost, copies the server
//! received, replies the server sent, reply copies the network lost, and
//! replies the client decoded. The invariants cross-check the two; any
//! mismatch is a bug in the service logic (or a deliberately planted
//! [`Bug`](crate::Bug)), never a flake, because the whole run is a pure
//! function of the seed.

#[allow(unused_imports)]
use crate::clock::Instant; // shadows the std wall-clock type; see clock.rs
use crate::SimStats;
use std::collections::BTreeMap;

/// Everything that happened to one request, keyed by `(client, id)`.
#[derive(Debug, Default, Clone)]
pub struct ReqTrack {
    /// Virtual time the client first sent it.
    pub sent_ns: u64,
    /// Absolute virtual deadline resolved at admission, if any.
    pub deadline_ns: Option<u64>,
    /// Request copies that entered the network (1 + duplicates).
    pub copies_sent: u32,
    /// Request copies the network lost (drop/partition).
    pub copies_lost: u32,
    /// Request copies delivered while the server was running.
    pub delivered: u32,
    /// Request copies delivered after the server finished draining.
    pub delivered_after_stop: u32,
    /// Logical replies the server sent for this request.
    pub replies_sent: u32,
    /// Reply copies that entered the network (≥ `replies_sent`).
    pub reply_copies_sent: u32,
    /// Reply copies the network lost.
    pub reply_copies_lost: u32,
    /// Reply copies the client decoded.
    pub replies_decoded: u32,
    /// True once the request was admitted to the queue (any copy).
    pub admitted: bool,
}

/// The per-request books for one run.
#[derive(Debug, Default)]
pub struct Ledger {
    /// `(client, id)` → what happened. `BTreeMap` so iteration order — and
    /// therefore violation report order — is deterministic.
    pub reqs: BTreeMap<(usize, u64), ReqTrack>,
}

impl Ledger {
    /// The (possibly fresh) track for `(client, id)`.
    pub fn track(&mut self, client: usize, id: u64) -> &mut ReqTrack {
        self.reqs.entry((client, id)).or_default()
    }
}

/// Cross-checks the ledger against the server's own counters. Each failed
/// invariant pushes one line into `out`.
///
/// The five families:
///
/// 1. **Exactly-one-reply** — every request copy delivered while the server
///    runs earns exactly one reply; no copy is silently swallowed (lost
///    job) and none is answered twice (gate bypass).
/// 2. **Reply conservation** — what the client decodes equals what the
///    server sent minus what the network provably lost; the network
///    neither invents nor hides replies beyond its recorded faults.
/// 3. **Drain completeness** — after shutdown the queue and inflight table
///    are empty and every admitted request reached a terminal reply.
/// 4. **Network conservation** — delivered request copies equal copies
///    sent minus copies lost (a self-check on the simulator's own books).
/// 5. **Metrics conservation** — `admitted == completed + failed +
///    watchdog_shed`: the server's counters partition the admitted set.
///
/// (A sixth family — deadline monotonicity — needs send-time context and
/// is checked inline by the simulator as replies are emitted.)
pub fn check(
    ledger: &Ledger,
    stats: &SimStats,
    drained: bool,
    queue_len: usize,
    inflight_len: usize,
    out: &mut Vec<String>,
) {
    for ((client, id), t) in &ledger.reqs {
        let live = t.delivered;
        if t.replies_sent != live {
            out.push(format!(
                "exactly-one-reply: client {client} id {id}: {} cop{} delivered while \
                 running but {} repl{} sent",
                live,
                if live == 1 { "y" } else { "ies" },
                t.replies_sent,
                if t.replies_sent == 1 { "y" } else { "ies" },
            ));
        }
        let expect_decoded = t.reply_copies_sent - t.reply_copies_lost;
        if t.replies_decoded != expect_decoded {
            out.push(format!(
                "reply-conservation: client {client} id {id}: {} reply copies sent, {} \
                 lost, but client decoded {}",
                t.reply_copies_sent, t.reply_copies_lost, t.replies_decoded
            ));
        }
        let arrived = t.delivered + t.delivered_after_stop;
        if arrived != t.copies_sent - t.copies_lost {
            out.push(format!(
                "net-conservation: client {client} id {id}: {} copies sent, {} lost, \
                 but {} arrived",
                t.copies_sent, t.copies_lost, arrived
            ));
        }
        if drained && t.admitted && t.replies_sent == 0 {
            out.push(format!(
                "drain-completeness: client {client} id {id}: admitted but drained \
                 without any reply"
            ));
        }
    }
    if drained && (queue_len != 0 || inflight_len != 0) {
        out.push(format!(
            "drain-completeness: server reported drained with {queue_len} queued and \
             {inflight_len} inflight job(s)"
        ));
    }
    let accounted = stats.completed + stats.failed + stats.watchdog_shed;
    if drained && stats.admitted != accounted {
        out.push(format!(
            "metrics-conservation: admitted {} != completed {} + failed {} + \
             watchdog_shed {}",
            stats.admitted, stats.completed, stats.failed, stats.watchdog_shed
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_books_pass() {
        let mut ledger = Ledger::default();
        let t = ledger.track(0, 1);
        t.copies_sent = 1;
        t.delivered = 1;
        t.admitted = true;
        t.replies_sent = 1;
        t.reply_copies_sent = 1;
        t.replies_decoded = 1;
        let stats = SimStats {
            admitted: 1,
            completed: 1,
            ..SimStats::default()
        };
        let mut out = Vec::new();
        check(&ledger, &stats, true, 0, 0, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn lost_reply_and_double_reply_are_both_caught() {
        let mut ledger = Ledger::default();
        // id 1: delivered but never answered (lost job).
        let t = ledger.track(0, 1);
        t.copies_sent = 1;
        t.delivered = 1;
        t.admitted = true;
        // id 2: answered twice (reply-gate bypass).
        let t = ledger.track(0, 2);
        t.copies_sent = 1;
        t.delivered = 1;
        t.admitted = true;
        t.replies_sent = 2;
        t.reply_copies_sent = 2;
        t.replies_decoded = 2;
        let stats = SimStats {
            admitted: 2,
            completed: 2,
            ..SimStats::default()
        };
        let mut out = Vec::new();
        check(&ledger, &stats, true, 0, 0, &mut out);
        let text = out.join("\n");
        assert!(text.contains("exactly-one-reply: client 0 id 1"), "{text}");
        assert!(text.contains("exactly-one-reply: client 0 id 2"), "{text}");
        assert!(text.contains("drain-completeness: client 0 id 1"), "{text}");
    }

    #[test]
    fn metrics_conservation_catches_uncounted_jobs() {
        let ledger = Ledger::default();
        let stats = SimStats {
            admitted: 5,
            completed: 3,
            failed: 1,
            ..SimStats::default()
        };
        let mut out = Vec::new();
        check(&ledger, &stats, true, 0, 0, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("metrics-conservation"), "{}", out[0]);
    }
}
