//! The virtual network: seeded per-link delay, jitter, drop, duplication,
//! and partition.
//!
//! The model is message-granular: each `send_bytes` from a client or from
//! the server's [`Transport`](tpm_serve::engine::Transport) becomes one
//! message, and faults act on whole messages. Within a link direction the
//! network is FIFO — a delayed message delays everything behind it — so the
//! byte stream each [`Decoder`](tpm_serve::wire::Decoder) sees is a
//! well-formed reordering-free stream and framing stays intact. (Drops and
//! duplicates therefore model an at-least/at-most-once *messaging* layer on
//! top of an ordered byte transport, not TCP segment loss.)
//!
//! Fault decisions come from the shared [`PlanEval`] at
//! [`Site::NetDeliver`], so the *same seeded plan* that panics workers
//! in-process also drops and partitions traffic — one seed reproduces the
//! whole interleaving. Messages marked *critical* (protocol preambles, the
//! shutdown request and its reply) are exempt from loss-type faults — they
//! still ride the base delay — so every run terminates and the framing
//! handshake cannot be severed.

#[allow(unused_imports)]
use crate::clock::Instant; // shadows the std wall-clock type; see clock.rs
use tpm_fault::{FaultKind, PlanEval, Site};
use tpm_sync::SplitMix64;

/// Direction of travel on a client⇄server link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Client → server (requests).
    ToServer,
    /// Server → client (replies).
    ToClient,
}

impl Dir {
    fn index(self) -> usize {
        match self {
            Dir::ToServer => 0,
            Dir::ToClient => 1,
        }
    }

    /// Short label for the event log.
    pub fn label(self) -> &'static str {
        match self {
            Dir::ToServer => "->server",
            Dir::ToClient => "->client",
        }
    }
}

/// What the network did with one message.
#[derive(Debug)]
pub enum Fate {
    /// Deliver at each listed virtual time (two entries = duplicated).
    Deliver {
        /// Delivery times, ascending, one per copy.
        at: Vec<u64>,
        /// Log note when a fault shaped the delivery (`delayed`,
        /// `duplicated`).
        note: Option<&'static str>,
    },
    /// The message never arrives.
    Lost {
        /// Why: `dropped`, `partition` (this message severed the link), or
        /// `severed` (sent while the link was down).
        reason: &'static str,
    },
}

struct Link {
    severed_until: u64,
    /// Per-direction FIFO floor: the next delivery must land strictly after
    /// the previous one.
    floor: [u64; 2],
}

/// One seeded virtual network over `conns` client⇄server links.
pub struct Net {
    links: Vec<Link>,
    base_delay_ns: u64,
    jitter_ns: u64,
    rng: SplitMix64,
}

impl Net {
    /// A network with `conns` links and its own RNG stream off `seed`.
    pub fn new(conns: usize, seed: u64, base_delay_ns: u64, jitter_ns: u64) -> Self {
        Self {
            links: (0..conns)
                .map(|_| Link {
                    severed_until: 0,
                    floor: [0, 0],
                })
                .collect(),
            base_delay_ns,
            jitter_ns,
            // Distinct stream from the fault plan and the job-duration RNG.
            rng: SplitMix64::new(seed ^ 0x6e65_745f_6465_7369), // "net_desi"
        }
    }

    /// True while `conn`'s link is severed at virtual time `now`.
    pub fn severed(&self, conn: usize, now: u64) -> bool {
        now < self.links[conn].severed_until
    }

    /// Decides the fate of one message sent at `now` on `conn` in `dir`.
    ///
    /// Non-critical messages run the gauntlet: a [`Site::NetDeliver`] fault
    /// decision (drop / delay / duplicate / partition) and the link's
    /// current partition state. Critical messages only pay latency.
    pub fn dispatch(
        &mut self,
        now: u64,
        conn: usize,
        dir: Dir,
        critical: bool,
        eval: &mut PlanEval,
    ) -> Fate {
        let mut extra_ns = 0u64;
        let mut copies = 1usize;
        let mut note = None;
        if !critical {
            if let Some(d) = eval.decide(Site::NetDeliver) {
                match d.kind {
                    FaultKind::TaskDrop => return Fate::Lost { reason: "dropped" },
                    FaultKind::Partition => {
                        // The fault takes the link down for `delay_us`; the
                        // triggering message goes down with it.
                        let dur_ns = d.delay_us.max(1).saturating_mul(1_000);
                        self.links[conn].severed_until = now + dur_ns;
                        return Fate::Lost {
                            reason: "partition",
                        };
                    }
                    FaultKind::Delay => {
                        extra_ns = d.delay_us.saturating_mul(1_000);
                        note = Some("delayed");
                    }
                    FaultKind::Duplicate => {
                        copies = 2;
                        note = Some("duplicated");
                    }
                    // In-process-only kinds never apply to the network.
                    FaultKind::Panic | FaultKind::StealMiss => {}
                }
            }
            if self.severed(conn, now) {
                return Fate::Lost { reason: "severed" };
            }
        }
        let link = &mut self.links[conn];
        let mut at = Vec::with_capacity(copies);
        for _ in 0..copies {
            let jitter = if self.jitter_ns > 0 {
                self.rng.next_bounded(self.jitter_ns)
            } else {
                0
            };
            let t = (now + self.base_delay_ns + extra_ns + jitter)
                .max(link.floor[dir.index()].saturating_add(1));
            link.floor[dir.index()] = t;
            at.push(t);
        }
        Fate::Deliver { at, note }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpm_fault::{FaultPlan, SiteRule};

    fn eval_with(rules: Vec<SiteRule>, seed: u64) -> PlanEval {
        PlanEval::new(&FaultPlan { seed, rules })
    }

    fn nth_rule(kind: FaultKind, delay_us: u64) -> SiteRule {
        let mut r = SiteRule::nth(Site::NetDeliver, kind, 1);
        r.delay_us = delay_us;
        r
    }

    #[test]
    fn fifo_per_direction_even_when_delayed() {
        // 5 ms delay on the first message.
        let mut eval = eval_with(vec![nth_rule(FaultKind::Delay, 5_000)], 9);
        let mut net = Net::new(1, 9, 10_000, 0);
        let first = net.dispatch(0, 0, Dir::ToServer, false, &mut eval);
        let second = net.dispatch(100, 0, Dir::ToServer, false, &mut eval);
        let t1 = match first {
            Fate::Deliver { at, .. } => at[0],
            other => panic!("{other:?}"),
        };
        let t2 = match second {
            Fate::Deliver { at, .. } => at[0],
            other => panic!("{other:?}"),
        };
        assert_eq!(t1, 5_010_000);
        assert!(t2 > t1, "FIFO floor must hold the second message back");
    }

    #[test]
    fn partition_severs_then_heals() {
        // 2 ms outage.
        let mut eval = eval_with(vec![nth_rule(FaultKind::Partition, 2_000)], 4);
        let mut net = Net::new(1, 4, 1_000, 0);
        assert!(matches!(
            net.dispatch(0, 0, Dir::ToServer, false, &mut eval),
            Fate::Lost {
                reason: "partition"
            }
        ));
        assert!(net.severed(0, 1_000_000));
        assert!(matches!(
            net.dispatch(1_000_000, 0, Dir::ToClient, false, &mut eval),
            Fate::Lost { reason: "severed" }
        ));
        // Critical traffic punches through even while severed.
        assert!(matches!(
            net.dispatch(1_000_000, 0, Dir::ToServer, true, &mut eval),
            Fate::Deliver { .. }
        ));
        // After the outage the link heals.
        assert!(matches!(
            net.dispatch(3_000_000, 0, Dir::ToServer, false, &mut eval),
            Fate::Deliver { .. }
        ));
    }

    #[test]
    fn duplicate_yields_two_ordered_copies() {
        let mut eval = eval_with(vec![nth_rule(FaultKind::Duplicate, 0)], 11);
        let mut net = Net::new(1, 11, 1_000, 500);
        match net.dispatch(0, 0, Dir::ToClient, false, &mut eval) {
            Fate::Deliver { at, note } => {
                assert_eq!(at.len(), 2);
                assert!(at[1] > at[0]);
                assert_eq!(note, Some("duplicated"));
            }
            other => panic!("{other:?}"),
        }
    }
}
