//! Wall-clock quarantine for the simulator.
//!
//! Determinism dies the moment simulation logic reads the machine's clock:
//! two runs of the same seed would observe different "now"s and diverge.
//! `tpm-desim` therefore takes time *only* from
//! [`tpm_sim::VirtualClock`] (via the [`tpm_sim::Clock`] trait), and this
//! module makes the accident hard to commit:
//!
//! * Every simulator module imports [`Instant`] from here, shadowing
//!   `std::time::Instant`. The shim has **no** `now()` constructor, so a
//!   direct `Instant::now()` inside the crate is a compile error (proven by
//!   the `compile_fail` doctest below).
//! * A source-scan test in `lib.rs` additionally rejects any textual use of
//!   `std::time` or `SystemTime` in the simulator sources, catching fully
//!   qualified paths that dodge the shadow import.
//!
//! Wall time is still *measured around* a simulation — the harness brackets
//! `tpm_desim::run` with real clock reads to report the virtual-to-wall
//! speedup — but never *inside* one. (The real kernels the simulated
//! workers execute do read the wall clock internally to fill
//! `JobResult::elapsed`; that measurement is discarded — virtual durations
//! are drawn from the seeded RNG, so the event timeline never depends on
//! it.)

/// Inert stand-in for `std::time::Instant`, imported by every simulator
/// module so that reaching for the wall clock fails to compile.
///
/// There is deliberately no `now()` — or any other method:
///
/// ```compile_fail
/// // Inside tpm-desim modules, `Instant` resolves to this shim:
/// use tpm_desim::clock::Instant;
/// let _t = Instant::now(); // ERROR: no function or associated item `now`
/// ```
///
/// Compare with the virtual clock, which is the only time source the
/// simulator may use:
///
/// ```
/// use tpm_sim::{Clock, VirtualClock};
/// let mut clock = VirtualClock::new();
/// clock.advance_to(1_000);
/// assert_eq!(clock.now_ns(), 1_000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Instant;
