//! A single-producer event ring buffer.
//!
//! Each worker thread owns one ring and is its only writer, so recording is
//! wait-free: four relaxed atomic stores plus one release store of the head
//! counter, no compare-and-swap, no sharing. When full, the ring overwrites
//! its oldest events — tracing never blocks or allocates on the hot path.
//!
//! The collector drains rings only at quiescence (after the runtime switch
//! is off and heads have stopped advancing, see `session.rs`). Per-field
//! atomics keep concurrent access well-defined even if a straggler is still
//! mid-record: the worst case is one garbled event at the wrap boundary, not
//! undefined behaviour.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::{Event, EventKind};

/// One event slot, field-atomic (see module docs).
#[derive(Debug)]
struct Slot {
    ts_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            ts_ns: AtomicU64::new(0),
            kind: AtomicU64::new(u64::MAX),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A fixed-capacity single-producer ring of [`Event`]s.
#[derive(Debug)]
pub struct Ring {
    slots: Box<[Slot]>,
    /// Total events ever recorded (not wrapped); slot index is `head % cap`.
    head: AtomicU64,
    /// Events overwritten because the ring wrapped.
    dropped: AtomicU64,
}

impl Ring {
    /// Creates a ring holding up to `capacity` events (rounded up to a power
    /// of two, minimum 16).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(16).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one event. Must only be called by the owning thread.
    #[inline]
    pub fn push(&self, ev: Event) {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        if head >= cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.slots[(head & (cap - 1)) as usize];
        slot.ts_ns.store(ev.ts_ns, Ordering::Relaxed);
        slot.kind.store(ev.kind as u64, Ordering::Relaxed);
        slot.a.store(ev.a, Ordering::Relaxed);
        slot.b.store(ev.b, Ordering::Relaxed);
        // Publish: a drainer that observes head=n (Acquire) sees slot n-1.
        self.head.store(head + 1, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out the retained events, oldest first. Call at quiescence.
    pub fn drain(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i & (cap - 1)) as usize];
            let kind = slot.kind.load(Ordering::Relaxed);
            let Some(kind) = u8::try_from(kind).ok().and_then(EventKind::from_u8) else {
                continue; // unwritten or garbled slot
            };
            out.push(Event {
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                kind,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            });
        }
        out
    }

    /// Forgets all retained events (the next drain sees only newer ones).
    /// Call at quiescence.
    pub fn clear(&self) {
        // Mark every slot unwritten so a cleared ring drains empty even
        // though `head` keeps counting monotonically.
        for slot in self.slots.iter() {
            slot.kind.store(u64::MAX, Ordering::Relaxed);
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: EventKind, a: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            a,
            b: 0,
        }
    }

    #[test]
    fn push_and_drain_in_order() {
        let r = Ring::new(16);
        for i in 0..10 {
            r.push(ev(i, EventKind::Steal, i));
        }
        let out = r.drain();
        assert_eq!(out.len(), 10);
        assert!(out.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let r = Ring::new(16); // rounded to 16
        for i in 0..40u64 {
            r.push(ev(i, EventKind::TaskExec, i));
        }
        let out = r.drain();
        assert_eq!(out.len(), 16);
        assert_eq!(out.first().unwrap().ts_ns, 24);
        assert_eq!(out.last().unwrap().ts_ns, 39);
        assert_eq!(r.dropped(), 24);
        assert_eq!(r.recorded(), 40);
    }

    #[test]
    fn clear_empties_retained_events() {
        let r = Ring::new(16);
        for i in 0..5 {
            r.push(ev(i, EventKind::Steal, 0));
        }
        r.clear();
        assert!(r.drain().is_empty());
        r.push(ev(99, EventKind::Steal, 0));
        let out = r.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts_ns, 99);
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(Ring::new(0).capacity(), 16);
        assert_eq!(Ring::new(17).capacity(), 32);
        assert_eq!(Ring::new(1024).capacity(), 1024);
    }
}
