//! The trace event model: compact fixed-size records of scheduler activity.

/// What happened. Kinds mirror the runtime events the paper's analysis is
/// phrased in (steals, chunk dispatches, barrier episodes, task creation,
/// thread spawn cost) plus lock activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A named span opened on this worker (`a` = region name id).
    RegionBegin = 0,
    /// The most recent open span on this worker closed (`a` = name id).
    RegionEnd = 1,
    /// A worksharing/splitting loop chunk started executing (`a` = chunk
    /// length in iterations).
    ChunkDispatch = 2,
    /// A task was created and queued (`a` = queue depth hint, optional).
    TaskSpawn = 3,
    /// A task was dequeued and executed.
    TaskExec = 4,
    /// A steal attempt succeeded (`a` = victim worker index).
    Steal = 5,
    /// A steal attempt found nothing or lost the race (`a` = victim index).
    FailedSteal = 6,
    /// This worker arrived at a barrier.
    BarrierArrive = 7,
    /// This worker was released from a barrier (`a` = wait nanoseconds).
    BarrierRelease = 8,
    /// A lock was acquired (uncontended fast path included).
    LockAcquire = 9,
    /// A lock acquisition had to wait for another holder.
    LockContended = 10,
    /// An OS thread was created on behalf of this worker (`a` = ordinal).
    ThreadSpawn = 11,
    /// An OS thread was joined (`a` = ordinal or count).
    ThreadJoin = 12,
    /// A worker died from an escaped panic (`a` = worker index).
    WorkerDeath = 13,
    /// A replacement worker took over a dead worker's slot (`a` = index).
    WorkerRespawn = 14,
    /// A team continued at reduced parallelism after a worker death
    /// (`a` = surviving width).
    DegradedWidth = 15,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 16] = [
        EventKind::RegionBegin,
        EventKind::RegionEnd,
        EventKind::ChunkDispatch,
        EventKind::TaskSpawn,
        EventKind::TaskExec,
        EventKind::Steal,
        EventKind::FailedSteal,
        EventKind::BarrierArrive,
        EventKind::BarrierRelease,
        EventKind::LockAcquire,
        EventKind::LockContended,
        EventKind::ThreadSpawn,
        EventKind::ThreadJoin,
        EventKind::WorkerDeath,
        EventKind::WorkerRespawn,
        EventKind::DegradedWidth,
    ];

    /// Stable lowercase name (used in Chrome-trace output and summaries).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RegionBegin => "region_begin",
            EventKind::RegionEnd => "region_end",
            EventKind::ChunkDispatch => "chunk_dispatch",
            EventKind::TaskSpawn => "task_spawn",
            EventKind::TaskExec => "task_exec",
            EventKind::Steal => "steal",
            EventKind::FailedSteal => "failed_steal",
            EventKind::BarrierArrive => "barrier_arrive",
            EventKind::BarrierRelease => "barrier_release",
            EventKind::LockAcquire => "lock_acquire",
            EventKind::LockContended => "lock_contended",
            EventKind::ThreadSpawn => "thread_spawn",
            EventKind::ThreadJoin => "thread_join",
            EventKind::WorkerDeath => "worker_death",
            EventKind::WorkerRespawn => "worker_respawn",
            EventKind::DegradedWidth => "degraded_width",
        }
    }

    /// Decodes a discriminant produced by `as u8`; `None` if out of range.
    pub fn from_u8(v: u8) -> Option<Self> {
        EventKind::ALL.get(v as usize).copied()
    }
}

/// One recorded event. `a` and `b` are kind-specific payload words (see the
/// [`EventKind`] variant docs); unused payloads are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_u8() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }
}
